//! A local, API-compatible subset of the `bytes` crate, used because
//! the build environment has no access to crates.io. Provides [`Buf`]
//! over `&[u8]`, [`BufMut`] over [`BytesMut`] / `Vec<u8>`, and the
//! [`Bytes`] / [`BytesMut`] owned buffers. Multi-byte accessors are
//! big-endian, matching upstream defaults.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes. Panics when out of range (as upstream does).
    fn advance(&mut self, cnt: usize);

    /// Copies out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Next big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Next big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Next big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Next big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Next big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }

    /// The contents as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.to_vec())
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_i64(-5);
        buf.put_f64(2.5);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.remaining(), 3);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(&out, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_moves_the_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
