//! A local `serde` facade: the derive names resolve and expand to
//! nothing. Nothing in this workspace performs serde serialization (the
//! WAL has its own binary encoding); the derives on storage types exist
//! for downstream API compatibility only.

pub use serde_derive::{Deserialize, Serialize};
