//! No-op `Serialize` / `Deserialize` derive macros. The workspace's
//! types carry serde derives for downstream compatibility, but nothing
//! in-tree performs serde serialization (the WAL uses its own binary
//! encoding), so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
