//! A local, API-compatible subset of `crossbeam`, used because the
//! build environment has no access to crates.io. Only
//! [`channel::unbounded`] is provided, implemented over
//! `std::sync::mpsc` (the coordinator uses exactly one producer per
//! notification, so mpsc semantics suffice).

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }
    }
}
