//! A local, API-compatible subset of `proptest`, used because the
//! build environment has no access to crates.io.
//!
//! Supported surface: the [`Strategy`] trait with `prop_map`,
//! `prop_filter` and `prop_recursive`; [`prop_oneof!`]; `Just`;
//! `any::<T>()`; range strategies; regex-string strategies (a small
//! generator covering the character-class subset the workspace uses);
//! [`collection::vec`]; [`option::of`]; tuple strategies; and the
//! [`proptest!`] / `prop_assert*` macros with `ProptestConfig`.
//!
//! Differences from upstream: generation only — failing cases are
//! reported with their deterministic case seed but are **not shrunk**.
//! Case generation is deterministic per (test name, case index), so a
//! failure always reproduces by rerunning the same test binary.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below_inclusive(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runs the property: generates `config.cases` inputs and executes the
/// body on each, panicking with the case seed on the first failure.
/// Used by the [`proptest!`] macro expansion; not public API upstream,
/// but harmless to expose.
pub fn run_property(
    config: ProptestConfig,
    test_name: &str,
    body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = test_runner::fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest: property '{test_name}' failed at case {case}/{cases} \
                 (case seed {seed:#018x}, no shrinking in the vendored runner): {e}",
                cases = config.cases,
            );
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`, both: `{:?}`",
            left
        );
    }};
}

/// Declares property tests. Each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running [`run_property`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident( $($binding:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $config;
                $crate::run_property(__config, stringify!($name), |__rng| {
                    let ( $($binding,)* ) = (
                        $( $crate::strategy::Strategy::generate(&$strat, __rng), )*
                    );
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body };
                            ::core::result::Result::Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
}
