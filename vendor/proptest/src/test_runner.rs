//! Runner plumbing: configuration, failure type, deterministic RNG.

use std::fmt;

/// Per-property configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream default; can be lowered per-test with `with_cases`
        ProptestConfig { cases: 256 }
    }
}

/// Why one generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion / explicit failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compat alias: a rejected case is treated as a failure
    /// (the vendored runner does not resample rejects at this level).
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over bytes; seeds the per-test RNG stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The deterministic generator handed to strategies (xoshiro256**
/// seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn below_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
