//! The [`Strategy`] trait and the combinators the workspace uses.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking:
/// `generate` draws one value directly from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded resampling).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds recursive structures: `expand` receives a strategy for
    /// strictly smaller instances. `depth` bounds nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // each level: half leaves, half one-deeper branches, which
            // keeps expected size finite and depth ≤ `depth`
            let deeper = expand(strat).boxed();
            strat = Union::new(vec![base.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive candidates: {}",
            self.reason
        );
    }
}

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (the engine of
/// [`crate::prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below_inclusive(0, self.arms.len() - 1);
        self.arms[arm].generate(rng)
    }
}

/// Uniform choice among strategies, by source order.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

// ------------------------------------------------------------------ //
// Range strategies
// ------------------------------------------------------------------ //

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let draw = rng.next_u64() % span;
                (self.start as u64).wrapping_add(draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                let draw = rng.next_u64() % span;
                (start as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------------------ //
// Tuple strategies
// ------------------------------------------------------------------ //

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------------------ //
// Regex-string strategies (&str patterns)
// ------------------------------------------------------------------ //

#[derive(Debug, Clone)]
enum RegexAtom {
    /// `[...]`: inclusive char ranges (single chars are 1-length ranges).
    Class(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    Printable,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct RegexPiece {
    atom: RegexAtom,
    min: usize,
    max: usize,
}

/// Parses the tiny regex subset the workspace uses: literal chars,
/// character classes with ranges, `\PC`, and `{n}` / `{n,m}`
/// quantifiers. Anything else panics with the unsupported pattern.
fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated class in regex strategy '{pattern}'"
                );
                i += 1; // consume ']'
                RegexAtom::Class(ranges)
            }
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy '{pattern}'"));
                match esc {
                    'P' | 'p' => {
                        // \PC / \pC — the only category the workspace
                        // uses: printable (non-control) characters
                        i += 3;
                        RegexAtom::Printable
                    }
                    'd' => {
                        i += 2;
                        RegexAtom::Class(vec![('0', '9')])
                    }
                    other => {
                        i += 2;
                        RegexAtom::Literal(other)
                    }
                }
            }
            c => {
                i += 1;
                RegexAtom::Literal(c)
            }
        };
        // optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in '{pattern}'"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

/// Pool for `\PC`: mostly ASCII printables, with a few multibyte
/// characters so lexer robustness tests see real unicode.
const PRINTABLE_EXTRA: &[char] = &['é', 'Ω', '→', '中', '𝄞', '¤', '"', '\''];

fn generate_atom(atom: &RegexAtom, rng: &mut TestRng) -> char {
    match atom {
        RegexAtom::Literal(c) => *c,
        RegexAtom::Printable => {
            if rng.next_u64().is_multiple_of(8) {
                PRINTABLE_EXTRA[rng.below_inclusive(0, PRINTABLE_EXTRA.len() - 1)]
            } else {
                char::from_u32(rng.below_inclusive(0x20, 0x7E) as u32).expect("ascii printable")
            }
        }
        RegexAtom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.below_inclusive(0, total as usize - 1) as u32;
            for (lo, hi) in ranges {
                let width = *hi as u32 - *lo as u32 + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick).expect("class char");
                }
                pick -= width;
            }
            unreachable!("pick was bounded by the total class width")
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.below_inclusive(piece.min, piece.max);
            for _ in 0..count {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }
}

// ------------------------------------------------------------------ //
// any::<T>()
// ------------------------------------------------------------------ //

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // mix raw bit patterns (hits NaNs, infinities, subnormals)
        // with special values and tame magnitudes
        match rng.next_u64() % 8 {
            0 => {
                const SPECIALS: &[f64] = &[
                    f64::NAN,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    0.0,
                    -0.0,
                    f64::MIN,
                    f64::MAX,
                    f64::EPSILON,
                ];
                SPECIALS[(rng.next_u64() % SPECIALS.len() as u64) as usize]
            }
            1 | 2 => f64::from_bits(rng.next_u64()),
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}
