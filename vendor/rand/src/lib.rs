//! A local, API-compatible subset of the `rand` crate (0.9 naming),
//! used because the build environment has no access to crates.io.
//!
//! Provides exactly what this workspace needs: [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256**,
//! seeded via splitmix64) and [`seq::SliceRandom::shuffle`]. The
//! generator is deterministic for a given seed, which is all the
//! coordinator's `CHOOSE` reproducibility contract requires.

/// Uniform-range sampling support for [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with splitmix64 seeding.
    /// Statistically strong and fast; not cryptographic (neither is the
    /// upstream `StdRng` contract this code relies on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // all-zero state would be degenerate; splitmix64 never
            // yields four zeros from any seed, but guard anyway
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = (rng.next_u64() as $wide) % span;
                ((self.start as $wide).wrapping_add(draw)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // full domain
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as $wide) % span;
                ((start as $wide).wrapping_add(draw)) as $t
            }
        }
    )*};
}

impl_int_ranges! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(1..=30);
            assert!((1..=30).contains(&v));
            let w: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }
}
