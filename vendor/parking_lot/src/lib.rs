//! A local, API-compatible subset of `parking_lot`, used because the
//! build environment has no access to crates.io.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! a panicking thread's lock is simply released (std poisoning is
//! unwrapped away — if a thread panicked while holding one of these
//! locks the process is already failing its test/invariant).
//!
//! [`RwLock::read_arc`] / [`RwLock::write_arc`] return owned guards
//! that keep the `Arc` alive, matching `parking_lot`'s `arc_lock`
//! feature. The guard stores a `'static`-transmuted std guard next to
//! the `Arc` that owns the lock; the `Arc` is dropped strictly after
//! the guard, and the `RwLock` never moves (it lives on the heap inside
//! the `Arc`), so the reference never dangles.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Marker type standing in for `parking_lot::RawRwLock` in the arc
/// guard type parameters.
pub struct RawRwLock(());

/// A non-poisoning mutex.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking; `None` when it is
    /// already held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A non-poisoning reader–writer lock.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a reader–writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T> RwLock<T> {
    /// Acquires a shared read lock through an `Arc`, returning an owned
    /// guard that keeps the lock (and the `Arc`) alive.
    pub fn read_arc(this: &Arc<RwLock<T>>) -> ArcRwLockReadGuard<RawRwLock, T> {
        let guard = this.0.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the guard borrows the RwLock inside `this`; the Arc
        // clone stored alongside keeps that heap allocation alive (and
        // immovable) for the guard's whole lifetime, and Drop releases
        // the guard before the Arc.
        let guard: std::sync::RwLockReadGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockReadGuard {
            guard: ManuallyDrop::new(guard),
            _lock: this.clone(),
            _raw: std::marker::PhantomData,
        }
    }

    /// Acquires the exclusive write lock through an `Arc`, returning an
    /// owned guard that keeps the lock (and the `Arc`) alive.
    pub fn write_arc(this: &Arc<RwLock<T>>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        let guard = this.0.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: as in `read_arc`.
        let guard: std::sync::RwLockWriteGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard {
            guard: ManuallyDrop::new(guard),
            _lock: this.clone(),
            _raw: std::marker::PhantomData,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Owned read guard from [`RwLock::read_arc`]. The `R` parameter
/// mirrors `parking_lot`'s raw-lock parameter and is always
/// [`RawRwLock`] here.
pub struct ArcRwLockReadGuard<R, T: 'static> {
    // field order is irrelevant: Drop releases `guard` explicitly first
    guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
    _lock: Arc<RwLock<T>>,
    // no marker needed: R is fixed by the only constructor
    #[allow(dead_code)]
    _raw: std::marker::PhantomData<R>,
}

/// Owned write guard from [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<R, T: 'static> {
    guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
    _lock: Arc<RwLock<T>>,
    #[allow(dead_code)]
    _raw: std::marker::PhantomData<R>,
}

impl<R, T: 'static> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: 'static> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        // release the lock before the Arc can be dropped
        unsafe { ManuallyDrop::drop(&mut self.guard) }
    }
}

impl<R, T: 'static> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R, T: 'static> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.guard) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn arc_guards_keep_lock_alive() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let read = RwLock::read_arc(&lock);
        let read2 = RwLock::read_arc(&lock);
        assert_eq!(read.len(), 3);
        assert_eq!(read2[0], 1);
        drop(lock); // guards alone keep the allocation alive
        assert_eq!(read[2], 3);
        drop(read);
        drop(read2);
    }

    #[test]
    fn write_arc_excludes_readers() {
        let lock = Arc::new(RwLock::new(0u32));
        {
            let mut w = RwLock::write_arc(&lock);
            *w = 7;
        }
        assert_eq!(*RwLock::read_arc(&lock), 7);
    }
}
