//! Local API-compatible subset of the `libc` crate for the offline
//! build environment (see `vendor/README.md`).
//!
//! Only the raw syscall surface this workspace exercises is declared:
//! the epoll family, `eventfd`, fd `read`/`write`/`close`,
//! `setsockopt` (buffer sizing), and the `RLIMIT_NOFILE` pair. The
//! symbols are resolved against the system C library that `std`
//! already links on Linux, so no new link-time dependency is
//! introduced — this crate is declarations and constants only.
//!
//! Everything here is `unsafe` raw FFI by nature; the safe wrapper
//! lives in `youtopia-net`'s `poller` module.

#![allow(non_camel_case_types)]

/// Signed 32-bit C `int`.
pub type c_int = i32;
/// Unsigned 32-bit C `unsigned int`.
pub type c_uint = u32;
/// Opaque C `void` (pointer target only).
pub type c_void = std::ffi::c_void;
/// C `size_t` on 64-bit Linux.
pub type size_t = usize;
/// C `ssize_t` on 64-bit Linux.
pub type ssize_t = isize;
/// Socket option length type.
pub type socklen_t = u32;
/// Resource-limit magnitude (`rlim_t`) on 64-bit Linux.
pub type rlim_t = u64;

// ---- epoll ------------------------------------------------------- //

/// One epoll readiness record. On x86-64 the kernel ABI packs the
/// struct (no padding between `events` and the 64-bit payload), which
/// is why the upstream crate — and this subset — carry `repr(packed)`
/// there.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned payload (the registration token).
    pub u64: u64,
}

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

/// `epoll_ctl` op: add an fd to the interest set.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: remove an fd from the interest set.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's registered interest.
pub const EPOLL_CTL_MOD: c_int = 3;

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

// ---- eventfd ----------------------------------------------------- //

/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: c_int = 0o2000000;
/// `eventfd` flag: nonblocking reads/writes.
pub const EFD_NONBLOCK: c_int = 0o4000;

// ---- sockets ----------------------------------------------------- //

/// `setsockopt` level for socket-layer options.
pub const SOL_SOCKET: c_int = 1;
/// Send-buffer size option.
pub const SO_SNDBUF: c_int = 7;
/// Receive-buffer size option.
pub const SO_RCVBUF: c_int = 8;

// ---- resource limits --------------------------------------------- //

/// The open-file-descriptor resource (`getrlimit`/`setrlimit`).
pub const RLIMIT_NOFILE: c_int = 7;

/// A soft/hard resource-limit pair.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct rlimit {
    /// The soft (effective) limit.
    pub rlim_cur: rlim_t,
    /// The hard ceiling the soft limit may be raised to.
    pub rlim_max: rlim_t,
}

extern "C" {
    /// Creates an epoll instance; returns its fd or -1.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Adds/modifies/removes `fd` in the epoll interest set.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Blocks up to `timeout` ms for readiness; returns the event count.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Creates an eventfd counter; returns its fd or -1.
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    /// Raw fd read.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Raw fd write.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// Closes an fd.
    pub fn close(fd: c_int) -> c_int;
    /// Sets a socket option.
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    /// Reads a resource limit.
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    /// Writes a resource limit.
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close() {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        assert!(fd >= 0, "epoll_create1 failed");
        assert_eq!(unsafe { close(fd) }, 0);
    }

    #[test]
    fn eventfd_roundtrip() {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        assert!(fd >= 0, "eventfd failed");
        let one: u64 = 1;
        let wrote = unsafe { write(fd, (&one as *const u64).cast(), 8) };
        assert_eq!(wrote, 8);
        let mut got: u64 = 0;
        let read_n = unsafe { read(fd, (&mut got as *mut u64).cast(), 8) };
        assert_eq!(read_n, 8);
        assert_eq!(got, 1);
        assert_eq!(unsafe { close(fd) }, 0);
    }

    #[test]
    fn nofile_limit_is_readable() {
        let mut lim = rlimit::default();
        assert_eq!(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) }, 0);
        assert!(lim.rlim_cur > 0 && lim.rlim_cur <= lim.rlim_max);
    }
}
