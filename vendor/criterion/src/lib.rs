//! A local, API-compatible subset of `criterion`, used because the
//! build environment has no access to crates.io.
//!
//! It is a plain wall-clock harness: each benchmark warms up briefly,
//! then runs `sample_size` samples of adaptively sized iteration
//! batches and reports min / mean / max nanoseconds per iteration (and
//! elements/sec when a throughput is declared). No statistical
//! analysis, no HTML reports — the numbers are honest medians of real
//! runs, which is what the committed BENCH_*.json artifacts record.
//!
//! Set `YOUTOPIA_BENCH_FAST=1` to cut sample counts for smoke runs.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped (only `PerIteration` is used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per measured iteration.
    PerIteration,
    /// Criterion-compat variant (treated as `PerIteration`).
    SmallInput,
    /// Criterion-compat variant (treated as `PerIteration`).
    LargeInput,
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement summary for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Mean over samples, ns/iter.
    pub mean_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    last: Option<Summary>,
}

fn fast_mode() -> bool {
    std::env::var_os("YOUTOPIA_BENCH_FAST").is_some()
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            last: None,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup + calibration: find an iteration count that takes
        // roughly 10ms or at least one iteration
        let started = Instant::now();
        let mut calibration_iters = 0u64;
        routine();
        calibration_iters += 1;
        let per_iter = started.elapsed().max(Duration::from_nanos(1)) / calibration_iters as u32;
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 100_000) as u64;

        let samples = if fast_mode() { 3 } else { self.sample_size };
        let mut per_sample_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_sample_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.record(per_sample_ns);
    }

    /// Measures `routine` with a fresh `setup` product per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = if fast_mode() { 3 } else { self.sample_size };
        let mut per_sample_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            per_sample_ns.push(t.elapsed().as_nanos() as f64);
        }
        self.record(per_sample_ns);
    }

    fn record(&mut self, per_sample_ns: Vec<f64>) {
        let samples = per_sample_ns.len().max(1);
        let sum: f64 = per_sample_ns.iter().sum();
        let min = per_sample_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_sample_ns.iter().cloned().fold(0.0, f64::max);
        self.last = Some(Summary {
            min_ns: if min.is_finite() { min } else { 0.0 },
            mean_ns: sum / samples as f64,
            max_ns: max,
            samples,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, throughput: Option<Throughput>, s: &Summary) {
    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        human(s.min_ns),
        human(s.mean_ns),
        human(s.max_ns)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / (s.mean_ns / 1e9);
        line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let bps = n as f64 / (s.mean_ns / 1e9);
        line.push_str(&format!("  thrpt: {bps:.0} B/s"));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        if let Some(s) = &b.last {
            report(name, None, s);
        }
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for elem/s reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        if let Some(s) = &b.last {
            report(&format!("{}/{}", self.name, id), self.throughput, s);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        if let Some(s) = &b.last {
            report(&format!("{}/{}", self.name, id), self.throughput, s);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Defines a `fn $name()` running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_summary() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(1 + 1));
        let s = b.last.expect("summary recorded");
        assert!(s.mean_ns > 0.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::PerIteration)
        });
        g.finish();
    }
}
