//! # Youtopia
//!
//! A from-scratch Rust reproduction of *Coordination through Querying
//! in the Youtopia System* (SIGMOD 2011 demonstration): a relational
//! DBMS whose coordination component jointly answers **entangled
//! queries** — `SELECT` statements with postconditions over a shared
//! answer relation that typically refer to *other* users' queries.
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | [`storage`] | `youtopia-storage` | values, schemas, tables, indexes, transactions, WAL |
//! | [`sql`] | `youtopia-sql` | lexer, parser, AST, printer (entangled dialect) |
//! | [`exec`] | `youtopia-exec` | expression evaluation + SELECT/DML execution |
//! | [`core`] | `youtopia-core` | entangled IR, safety, registry, matcher, coordinator |
//! | [`net`] | `youtopia-net` | the multi-tenant TCP front-end: framed protocol, server, client |
//! | [`travel`] | `youtopia-travel` | the demo travel application, admin console, workloads |
//!
//! See the runnable examples:
//!
//! * `cargo run --example quickstart` — the paper's Jerry & Kramer
//!   walkthrough (Figure 1);
//! * `cargo run --example travel_site` — every §3.1 demo scenario;
//! * `cargo run --example loaded_system` — the §3 scalability
//!   demonstration;
//! * `cargo run --example admin_cli` — the §3.2 SQL command line
//!   (scripted session or `--interactive`).

pub use youtopia_core as core;
pub use youtopia_exec as exec;
pub use youtopia_net as net;
pub use youtopia_sql as sql;
pub use youtopia_storage as storage;
pub use youtopia_travel as travel;

pub use youtopia_core::{
    compile_sql, latency_histogram, tenant_audit, AuditConfig, AuditRecord, CheckpointPolicy,
    Clock, CoordEvent, CoordinationFuture, CoordinationLog, CoordinationOutcome, Coordinator,
    CoordinatorConfig, DeadlineHost, DeadlineSweeper, GroupMatch, LatencyBucket, MatchNotification,
    MatcherKind, MockClock, QueryId, RecoveryReport, RegStamp, SafetyMode, ShardedConfig,
    ShardedCoordinator, Submission, SubmitOptions, SystemClock, TenantQuotas, TenantRegistry,
    WaiterSet, AUDIT_TABLE, LATENCY_TABLE,
};
pub use youtopia_exec::{run_sql, StatementOutcome};
pub use youtopia_net::{NetClient, NetServer, ServerConfig, ServerStats};
pub use youtopia_storage::Database;
pub use youtopia_travel::{AdminConsole, BookingOutcome, FlightPrefs, TravelService, WorkloadGen};
