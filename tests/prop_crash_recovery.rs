//! Crash-equivalence property (acceptance criterion of the durable-
//! coordination PR): for a fixed seed with randomization disabled,
//! running a random workload prefix, killing the coordinator at an
//! arbitrary point, recovering from the WAL, and finishing the
//! workload yields **exactly** the state of an uncrashed run — the
//! same pending set (id, owner, SQL, seq), the same answer-relation
//! contents, and intact routing invariants.
//!
//! Why this should hold: every registration/cancellation is logged
//! before it is acknowledged and every match commit rides the storage
//! transaction of its answer writes, so the log determines the pending
//! set exactly; with `randomize` off the matcher is a deterministic
//! function of (registry, database), so re-running matching over the
//! recovered state reproduces precisely the matches the crash
//! swallowed; and id/seq allocation restarts from the logged
//! watermark, so the post-crash suffix of the workload sees the same
//! ids it would have seen without the crash.

use proptest::prelude::*;

use youtopia::core::{latency_bucket, MatchConfig, SubmitOptions};
use youtopia::storage::{Wal, WalRecord};
use youtopia::{
    latency_histogram, run_sql, tenant_audit, AuditConfig, AuditRecord, CoordEvent,
    CoordinatorConfig, Database, MockClock, ShardedConfig, ShardedCoordinator, Submission,
};

/// One generated workload step: a pair request, optionally cancelled
/// right after submission (exercising `QueryCancelled` frames).
#[derive(Debug, Clone)]
struct Step {
    me: String,
    friend: String,
    relation: String,
    dest: String,
    cancel_if_pending: bool,
}

#[derive(Debug, Clone)]
struct Scenario {
    steps: Vec<Step>,
    /// Kill after this many steps (clamped to the workload length).
    crash_after: usize,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let relation = prop_oneof![Just("Res0"), Just("Res1"), Just("Res2"), Just("Res3")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    let step = (name.clone(), name, relation, dest, any::<bool>()).prop_map(
        |(me, friend, relation, dest, cancel_if_pending)| Step {
            me: me.to_string(),
            friend: friend.to_string(),
            relation: relation.to_string(),
            dest: dest.to_string(),
            cancel_if_pending,
        },
    );
    (
        proptest::collection::vec(step, 1..16),
        0usize..18,
        0u64..1000,
    )
        .prop_map(|(steps, crash_after, seed)| Scenario {
            crash_after,
            steps,
            seed,
        })
}

/// A step of the deadline-equivalence property: a pair request that
/// may carry a deadline `slack` sweeps in the future (and may be
/// cancelled right after submission, like the plain scenario's steps).
#[derive(Debug, Clone)]
struct TimedStep {
    step: Step,
    /// `Some(s)` ⇒ deadline = `sweep_time(k + s)` for the step index
    /// `k` it is submitted at: due exactly at the s-th sweep after its
    /// own (s = 0 ⇒ the very next sweep).
    deadline_slack: Option<u8>,
}

#[derive(Debug, Clone)]
struct TimedScenario {
    steps: Vec<TimedStep>,
    /// The crash lands between step `crash_after`'s submission and its
    /// sweep (clamped; past the end ⇒ crash after everything).
    crash_after: usize,
    seed: u64,
}

/// The mock-clock instant of the sweep that follows step `k`.
fn sweep_time(k: usize) -> u64 {
    (k as u64 + 1) * 10
}

fn arb_timed_scenario() -> impl Strategy<Value = TimedScenario> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let relation = prop_oneof![Just("Res0"), Just("Res1"), Just("Res2"), Just("Res3")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    let slack = (any::<bool>(), 0u8..5).prop_map(|(some, s)| some.then_some(s));
    let step = (name.clone(), name, relation, dest, any::<bool>(), slack).prop_map(
        |(me, friend, relation, dest, cancel_if_pending, deadline_slack)| TimedStep {
            step: Step {
                me: me.to_string(),
                friend: friend.to_string(),
                relation: relation.to_string(),
                dest: dest.to_string(),
                cancel_if_pending,
            },
            deadline_slack,
        },
    );
    (
        proptest::collection::vec(step, 1..16),
        0usize..18,
        0u64..1000,
    )
        .prop_map(|(steps, crash_after, seed)| TimedScenario {
            crash_after,
            steps,
            seed,
        })
}

/// Runs one timed step at index `k`: submit with the step's deadline,
/// then cancel when asked and still pending.
fn run_timed_step(co: &ShardedCoordinator, k: usize, timed: &TimedStep) {
    let opts = SubmitOptions {
        deadline: timed.deadline_slack.map(|s| sweep_time(k + s as usize)),
    };
    let outcome = co
        .submit_sql_with(&timed.step.me, &pair_sql(&timed.step), opts)
        .expect("generated queries are safe");
    if timed.step.cancel_if_pending {
        if let Submission::Pending(ticket) = outcome {
            let _ = co.cancel(ticket.id);
        }
    }
}

fn scenario_db() -> Database {
    let db = Database::with_wal(Wal::in_memory());
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Rome')",
    )
    .unwrap();
    db
}

fn pair_sql(step: &Step) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER {rel} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
         AND ('{friend}', fno) IN ANSWER {rel} CHOOSE 1",
        me = step.me,
        friend = step.friend,
        rel = step.relation,
        dest = step.dest
    )
}

fn config(seed: u64) -> ShardedConfig {
    ShardedConfig {
        shards: 4,
        workers: 2,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base: CoordinatorConfig {
            match_config: MatchConfig {
                randomize: false,
                ..MatchConfig::default()
            },
            seed,
            ..CoordinatorConfig::default()
        },
    }
}

/// Runs one step: submit, then cancel when asked and still pending.
fn run_step(co: &ShardedCoordinator, step: &Step) {
    let outcome = co
        .submit_sql(&step.me, &pair_sql(step))
        .expect("generated queries are safe");
    if step.cancel_if_pending {
        if let Submission::Pending(ticket) = outcome {
            // the partner may have raced in through a cascade; cancel
            // only what is genuinely still pending
            let _ = co.cancel(ticket.id);
        }
    }
}

/// Canonical end state: pending set + per-relation sorted answers.
type EndState = (Vec<(u64, String, String, u64)>, Vec<Vec<Vec<u8>>>);

fn end_state(co: &ShardedCoordinator) -> EndState {
    let pending = co
        .pending_snapshot()
        .into_iter()
        .map(|p| (p.id.0, p.owner, p.sql, p.seq))
        .collect();
    let answers = (0..4)
        .map(|k| {
            let mut rows: Vec<Vec<u8>> = co
                .answers(&format!("Res{k}"))
                .iter()
                .map(|t| t.encode().to_vec())
                .collect();
            rows.sort();
            rows
        })
        .collect();
    (pending, answers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kill-at-arbitrary-point + `recover()` == never crashed.
    #[test]
    fn crashed_and_recovered_equals_uncrashed(scenario in arb_scenario()) {
        let cfg = config(scenario.seed);
        let cut = scenario.crash_after.min(scenario.steps.len());

        // ---- control: the whole workload, no crash ----------------- //
        let control = ShardedCoordinator::with_config(scenario_db(), cfg);
        for step in &scenario.steps {
            run_step(&control, step);
        }
        control.check_routing_invariants().expect("control invariants");

        // ---- crashed run ------------------------------------------- //
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for step in &scenario.steps[..cut] {
            run_step(&co, step);
        }
        let wal_bytes = db.wal_bytes().expect("WAL-backed scenario db");
        drop(co);
        drop(db);

        let (recovered, report) =
            ShardedCoordinator::recover(Wal::from_bytes(wal_bytes), cfg)
                .expect("recovery succeeds");
        prop_assert_eq!(recovered.pending_count(), report.restored_pending);
        recovered
            .check_routing_invariants()
            .expect("invariants hold right after recovery");
        for step in &scenario.steps[cut..] {
            run_step(&recovered, step);
        }
        recovered
            .check_routing_invariants()
            .expect("invariants hold at the end of the recovered run");

        // ---- equivalence ------------------------------------------- //
        prop_assert_eq!(end_state(&recovered), end_state(&control));
    }

    /// Async flavor of the crash property (async-submission PR): the
    /// workload prefix is submitted through `submit_sql_async`, every
    /// future held by a `WaiterSet` that is **dropped at the kill
    /// point** (the front-end dies with its wakers). After `recover`,
    /// `reattach_async` hands back live futures for the still-pending
    /// queries; finishing the workload resolves them with exactly the
    /// answers of the uncrashed sync control run, and the end states
    /// coincide.
    #[test]
    fn dropped_async_waiters_resume_after_crash(scenario in arb_scenario()) {
        use std::collections::HashMap;
        use youtopia::{CoordinationOutcome, WaiterSet};

        let cfg = config(scenario.seed);
        let cut = scenario.crash_after.min(scenario.steps.len());

        // ---- control: sync, no crash, notifications collected ------ //
        let control = ShardedCoordinator::with_config(scenario_db(), cfg);
        let mut control_answers: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
        let mut record = |n: &youtopia::MatchNotification| {
            let answers: Vec<Vec<u8>> =
                n.answers.iter().map(|(_, t)| t.encode().to_vec()).collect();
            control_answers.insert(n.id.0, answers);
        };
        let mut control_tickets = Vec::new();
        for step in &scenario.steps {
            match control
                .submit_sql(&step.me, &pair_sql(step))
                .expect("generated queries are safe")
            {
                Submission::Answered(n) => record(&n),
                Submission::Pending(ticket) => {
                    if step.cancel_if_pending {
                        let _ = control.cancel(ticket.id);
                    } else {
                        control_tickets.push(ticket);
                    }
                }
            }
        }
        for ticket in control_tickets {
            if let Ok(n) = ticket.receiver.try_recv() {
                record(&n);
            }
        }

        // ---- crashed run: async prefix, waiters die at the kill ---- //
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        let mut waiters = WaiterSet::new();
        for step in &scenario.steps[..cut] {
            let future = co
                .submit_sql_async(&step.me, &pair_sql(step))
                .expect("generated queries are safe");
            if step.cancel_if_pending && !future.is_complete() {
                let _ = co.cancel(future.id());
            }
            waiters.insert(future);
        }
        let wal_bytes = db.wal_bytes().expect("WAL-backed scenario db");
        drop(waiters); // the front-end dies with its futures
        drop(co);
        drop(db);

        let (recovered, _) = ShardedCoordinator::recover(Wal::from_bytes(wal_bytes), cfg)
            .expect("recovery succeeds");
        // every owner reconnects and resumes its coordinations as
        // futures; the suffix of the workload runs async as well
        let owners: std::collections::BTreeSet<String> = recovered
            .pending_snapshot()
            .into_iter()
            .map(|p| p.owner)
            .collect();
        let mut waiters = WaiterSet::new();
        for owner in owners {
            for future in recovered.reattach_async(&owner) {
                waiters.insert(future);
            }
        }
        prop_assert_eq!(waiters.len(), recovered.pending_count());
        for step in &scenario.steps[cut..] {
            let future = recovered
                .submit_sql_async(&step.me, &pair_sql(step))
                .expect("generated queries are safe");
            if step.cancel_if_pending && !future.is_complete() {
                let _ = recovered.cancel(future.id());
            }
            waiters.insert(future);
        }

        // harvest: wakers fire synchronously inside the submit calls,
        // so one non-blocking poll sees every resolution
        for (qid, outcome) in waiters.poll_ready() {
            match outcome {
                CoordinationOutcome::Answered(n) => {
                    prop_assert_eq!(n.id.0, qid.0);
                    let answers: Vec<Vec<u8>> =
                        n.answers.iter().map(|(_, t)| t.encode().to_vec()).collect();
                    let control = control_answers.get(&qid.0).unwrap_or_else(|| {
                        panic!("query {qid} answered after recovery but not in control")
                    });
                    prop_assert_eq!(
                        &answers, control,
                        "post-recovery future resolved with different answers"
                    );
                }
                CoordinationOutcome::Cancelled => {
                    prop_assert!(
                        !control_answers.contains_key(&qid.0),
                        "cancelled in the recovered run but answered in control"
                    );
                }
                other => prop_assert!(false, "unexpected terminal outcome {:?}", other),
            }
        }
        // the futures still in flight are exactly the pending set
        let still_pending: Vec<u64> = waiters.ids().into_iter().map(|q| q.0).collect();
        let mut pending_ids: Vec<u64> = recovered
            .pending_snapshot()
            .into_iter()
            .map(|p| p.id.0)
            .collect();
        pending_ids.sort_unstable();
        prop_assert_eq!(still_pending, pending_ids);

        // ---- equivalence ------------------------------------------- //
        prop_assert_eq!(end_state(&recovered), end_state(&control));
    }

    /// Deadline-lifecycle PR: queries with **logged deadlines**, after
    /// kill + recover, expire at the same mock-clock times as the
    /// uncrashed control run. The workload runs on a step clock
    /// (`sweep_time(k) = (k+1)*10`): every step is a submission
    /// (optionally deadline-carrying, optionally cancelled) followed
    /// by an `expire_due` sweep at that step's time. The crash lands
    /// *between* step `cut`'s submission and its sweep — recovery at
    /// `MockClock::new(sweep_time(cut))` must perform exactly the
    /// sweep the crash swallowed, so the runs converge to identical
    /// end states.
    #[test]
    fn logged_deadlines_expire_at_control_times_after_crash(scenario in arb_timed_scenario()) {
        let cfg = config(scenario.seed);
        let steps = &scenario.steps;
        let cut = scenario.crash_after.min(steps.len());

        // ---- control: submissions + sweeps, never killed ----------- //
        let control = ShardedCoordinator::with_config(scenario_db(), cfg);
        for (k, step) in steps.iter().enumerate() {
            run_timed_step(&control, k, step);
            control.expire_due(sweep_time(k));
        }
        control.check_routing_invariants().expect("control invariants");

        // ---- crashed run ------------------------------------------- //
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for (k, step) in steps.iter().enumerate().take(cut) {
            run_timed_step(&co, k, step);
            co.expire_due(sweep_time(k));
        }
        if cut < steps.len() {
            // the step whose sweep the crash swallows
            run_timed_step(&co, cut, &steps[cut]);
        }
        let wal_bytes = db.wal_bytes().expect("WAL-backed scenario db");
        drop(co);
        drop(db);

        // recover "at" the time of the swallowed sweep (or the last
        // completed one when the crash fell after the final step)
        let recover_at = sweep_time(cut.min(steps.len() - 1));
        let (recovered, _) = ShardedCoordinator::recover_with(
            Wal::from_bytes(wal_bytes),
            cfg,
            None,
            std::sync::Arc::new(MockClock::new(recover_at)),
        )
        .expect("recovery succeeds");
        recovered
            .check_routing_invariants()
            .expect("invariants hold right after recovery");
        for (k, step) in steps.iter().enumerate().skip(cut + 1) {
            run_timed_step(&recovered, k, step);
            recovered.expire_due(sweep_time(k));
        }

        // ---- equivalence: same pending set, same answers ----------- //
        prop_assert_eq!(end_state(&recovered), end_state(&control));
        // and the pending deadlines themselves coincide
        let deadlines = |co: &ShardedCoordinator| -> Vec<(u64, Option<u64>)> {
            co.pending_snapshot().into_iter().map(|p| (p.id.0, p.deadline)).collect()
        };
        prop_assert_eq!(deadlines(&recovered), deadlines(&control));
    }

    /// Group-commit PR: the crash lands **mid-group-commit** — the
    /// writer's in-flight group reached the log torn and out of order
    /// (one frame damaged while a later frame, even the group's
    /// commit marker, landed intact). The group was never
    /// acknowledged, so recovery must roll it back automatically:
    /// recovering the damaged log equals recovering the clean log (no
    /// `WalCorrupt`, no manual truncation), and finishing the
    /// workload converges to the uncrashed control run.
    #[test]
    fn killed_mid_group_commit_recovers_to_last_complete_commit(scenario in arb_scenario()) {
        let cfg = config(scenario.seed);
        let cut = scenario.crash_after.min(scenario.steps.len());

        // ---- control: the whole workload, no crash ----------------- //
        let control = ShardedCoordinator::with_config(scenario_db(), cfg);
        for step in &scenario.steps {
            run_step(&control, step);
        }

        // ---- crashed run: kill inside the writer's append window --- //
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for step in &scenario.steps[..cut] {
            run_step(&co, step);
        }
        let clean = db.wal_bytes().expect("WAL-backed scenario db");
        drop(co);
        drop(db);

        // the unsynced suffix the file may hold after such a crash: a
        // two-frame commit group plus its marker, persisted with one
        // frame torn — tear each frame in turn (frame k torn with
        // frame k+1 intact models the out-of-order persistence)
        let mut side = Wal::in_memory();
        side.append_coordination(&[0u8; 24]).unwrap();
        let frame_starts = [0usize, side.raw_len().unwrap()];
        side.append_coordination(&[1u8; 16]).unwrap();
        side.append_commit_boundary().unwrap();
        let group = side.raw_bytes().unwrap().to_vec();

        for tear_at in frame_starts {
            let mut torn = clean.clone();
            let splice_base = torn.len();
            torn.extend_from_slice(&group);
            torn[splice_base + tear_at + 8] ^= 0xff; // first payload byte

            let (from_torn, report) =
                ShardedCoordinator::recover(Wal::from_bytes(torn), cfg)
                    .expect("mid-group-commit crash recovers automatically");
            let (from_clean, _) =
                ShardedCoordinator::recover(Wal::from_bytes(clean.clone()), cfg)
                    .expect("clean recovery");
            prop_assert_eq!(from_torn.pending_count(), report.restored_pending);
            // the un-acked group never happened
            prop_assert_eq!(end_state(&from_torn), end_state(&from_clean));

            // and the recovered run still converges to the control
            for step in &scenario.steps[cut..] {
                run_step(&from_torn, step);
            }
            from_torn
                .check_routing_invariants()
                .expect("invariants hold at the end of the recovered run");
            prop_assert_eq!(end_state(&from_torn), end_state(&control));
        }
    }

    /// Recovering a log twice (double crash, no work in between) is
    /// idempotent: same pending set, same answers.
    #[test]
    fn double_recovery_is_idempotent(scenario in arb_scenario()) {
        let cfg = config(scenario.seed);
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for step in &scenario.steps {
            run_step(&co, step);
        }
        let bytes = db.wal_bytes().unwrap();
        drop(co);
        drop(db);

        let (first, _) = ShardedCoordinator::recover(Wal::from_bytes(bytes), cfg)
            .expect("first recovery");
        let bytes2 = first.db().wal_bytes().unwrap();
        let state1 = end_state(&first);
        drop(first);
        let (second, _) = ShardedCoordinator::recover(Wal::from_bytes(bytes2), cfg)
            .expect("second recovery");
        prop_assert_eq!(end_state(&second), state1);
    }
}

// --------------------------------------------------------------------
// Observability PR: the audit ledger is an exact, durable projection
// of the coordination log.
// --------------------------------------------------------------------

/// `config(seed)` with the audit sink switched on (default retention:
/// far larger than any generated workload, so rotation never fires).
fn audited_config(seed: u64) -> ShardedConfig {
    let mut cfg = config(seed);
    cfg.base.audit = AuditConfig::enabled();
    cfg
}

/// The whole `sys_audit` relation (all four generated tenants),
/// canonically ordered by `(qid, kind)` for comparison.
fn audit_ledger(co: &ShardedCoordinator) -> Vec<AuditRecord> {
    let mut rows: Vec<AuditRecord> = ["A", "B", "C", "D"]
        .iter()
        .flat_map(|t| tenant_audit(co.db(), t, usize::MAX))
        .collect();
    rows.sort_by(|a, b| (a.qid, &a.kind).cmp(&(b.qid, &b.kind)));
    rows
}

/// The whole `sys_tenant_latency` relation as sorted `(tenant,
/// outcome, bucket, count)` tuples.
fn histogram_state(co: &ShardedCoordinator) -> Vec<(String, String, u32, u64)> {
    let mut rows: Vec<(String, String, u32, u64)> = latency_histogram(co.db(), None)
        .into_iter()
        .map(|b| (b.tenant, b.outcome, b.bucket, b.count))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ledger-closure property: after a random submit/cancel/expire/
    /// match workload with auditing on, the `sys_audit` rows reconcile
    /// exactly with (a) the coordinator's `stats()` counters, (b) the
    /// live pending set, (c) the `sys_tenant_latency` roll-up, and
    /// (d) the coordination frames actually in the WAL.
    #[test]
    fn audit_ledger_reconciles_with_stats_and_wal(scenario in arb_timed_scenario()) {
        use std::collections::{BTreeMap, BTreeSet};

        let cfg = audited_config(scenario.seed);
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for (k, step) in scenario.steps.iter().enumerate() {
            run_timed_step(&co, k, step);
            co.expire_due(sweep_time(k));
        }

        let rows = audit_ledger(&co);
        let stats = co.stats();
        let tally = |pred: &dyn Fn(&AuditRecord) -> bool| -> u64 {
            rows.iter().filter(|r| pred(r)).count() as u64
        };
        let submits = tally(&|r| r.kind == "submit");
        let answered = tally(&|r| r.outcome == "answered");
        let cancelled = tally(&|r| r.outcome == "cancelled");
        let expired = tally(&|r| r.outcome == "expired");

        // (a) counters
        prop_assert_eq!(submits, stats.submitted);
        prop_assert_eq!(answered, stats.answered);
        prop_assert_eq!(expired, stats.expired);

        // per-row shape: submit rows are open, terminal rows carry a
        // resolution time and the latency derived from it
        for r in &rows {
            if r.kind == "submit" {
                prop_assert_eq!(r.outcome.as_str(), "pending");
                prop_assert!(r.resolved_at.is_none() && r.latency_micros.is_none());
            } else {
                let resolved = r.resolved_at.expect("terminal rows carry resolved_at");
                prop_assert!(resolved >= r.submitted_at);
                prop_assert_eq!(
                    r.latency_micros,
                    Some(resolved.saturating_sub(r.submitted_at).saturating_mul(1000))
                );
            }
        }

        // (b) closure: every submitted qid is terminal xor still pending
        let submitted_ids: BTreeSet<u64> =
            rows.iter().filter(|r| r.kind == "submit").map(|r| r.qid).collect();
        let terminal_ids: BTreeSet<u64> =
            rows.iter().filter(|r| r.kind != "submit").map(|r| r.qid).collect();
        let pending_ids: BTreeSet<u64> =
            co.pending_snapshot().into_iter().map(|p| p.id.0).collect();
        prop_assert!(terminal_ids.is_subset(&submitted_ids));
        prop_assert!(pending_ids.is_disjoint(&terminal_ids));
        let closed: BTreeSet<u64> = terminal_ids.union(&pending_ids).copied().collect();
        prop_assert_eq!(submitted_ids, closed);

        // (c) the histogram roll-up is exactly the terminal rows,
        // grouped by (tenant, outcome, log2 bucket)
        let mut grouped: BTreeMap<(String, String, u32), u64> = BTreeMap::new();
        for r in rows.iter().filter(|r| r.kind != "submit") {
            let bucket = latency_bucket(r.latency_micros.unwrap());
            *grouped.entry((r.tenant.clone(), r.outcome.clone(), bucket)).or_default() += 1;
        }
        let expected: Vec<(String, String, u32, u64)> = grouped
            .into_iter()
            .map(|((t, o, b), n)| (t, o, b, n))
            .collect();
        prop_assert_eq!(histogram_state(&co), expected);

        // (d) the WAL's coordination frames tell the same story
        let mut wal = Wal::from_bytes(db.wal_bytes().expect("WAL-backed scenario db"));
        let (mut reg, mut cancels, mut expires, mut members) = (0u64, 0u64, 0u64, 0u64);
        for record in wal.replay_records().expect("log replays clean") {
            if let WalRecord::Coordination(payload) = record {
                match CoordEvent::decode(&payload).expect("frames decode") {
                    CoordEvent::QueryRegistered { .. } => reg += 1,
                    CoordEvent::QueryCancelled { .. } => cancels += 1,
                    CoordEvent::QueryExpired { .. } => expires += 1,
                    CoordEvent::MatchCommitted { qids, .. } => members += qids.len() as u64,
                    CoordEvent::Watermark { .. } => {}
                }
            }
        }
        prop_assert_eq!(reg, submits);
        prop_assert_eq!(cancels, cancelled);
        prop_assert_eq!(expires, expired);
        prop_assert_eq!(members, answered);
    }

    /// Crash-equivalence for the ledger itself: `sys_audit` and
    /// `sys_tenant_latency` are transient relations (never in the
    /// storage log), so recovery must rebuild them purely from the
    /// coordination frames — and the rebuilt relations must equal the
    /// pre-crash ones row for row, timestamps and shards included.
    #[test]
    fn crash_and_recover_reproduce_the_audit_ledger(scenario in arb_timed_scenario()) {
        let cfg = audited_config(scenario.seed);
        let db = scenario_db();
        let co = ShardedCoordinator::with_config(db.clone(), cfg);
        for (k, step) in scenario.steps.iter().enumerate() {
            run_timed_step(&co, k, step);
            co.expire_due(sweep_time(k));
        }
        let live_rows = audit_ledger(&co);
        let live_hist = histogram_state(&co);
        let bytes = db.wal_bytes().expect("WAL-backed scenario db");
        drop(co);
        drop(db);

        // recover "at" the final sweep already performed: the recovery
        // sweep re-expires nothing new, so the ledgers must coincide
        let recover_at = sweep_time(scenario.steps.len() - 1);
        let (recovered, _) = ShardedCoordinator::recover_with(
            Wal::from_bytes(bytes),
            cfg,
            None,
            std::sync::Arc::new(MockClock::new(recover_at)),
        )
        .expect("recovery succeeds");
        prop_assert_eq!(audit_ledger(&recovered), live_rows);
        prop_assert_eq!(histogram_state(&recovered), live_hist);
    }
}
