//! Equivalence property: with `randomize` off and a fixed seed, the
//! sharded coordinator (4 shards, batch draining) produces the
//! **identical** set of coordination outcomes — group members *and*
//! answer tuples — as the serial single-mutex coordinator, on
//! randomized travel workloads.
//!
//! Why this should hold exactly: ids are allocated in submission order
//! in both modes; a batch drain processes each shard's bucket
//! arrival-by-arrival, which is precisely the serial algorithm
//! restricted to that shard; and queries on different shards can never
//! interact (disjoint answer relations, so neither pending heads nor
//! committed answers cross over). With randomization disabled the
//! matcher is deterministic, so the per-shard runs reproduce the serial
//! ones verbatim.

use proptest::prelude::*;

use youtopia::core::MatchConfig;
use youtopia::{
    run_sql, Coordinator, CoordinatorConfig, Database, MatchNotification, ShardedConfig,
    ShardedCoordinator, Submission,
};

/// One generated workload: pair requests `(me, friend, relation, dest)`
/// over small pools, so coordinations actually fire and relations form
/// several independent components.
#[derive(Debug, Clone)]
struct Workload {
    requests: Vec<(String, String, String, String)>,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let relation = prop_oneof![Just("Res0"), Just("Res1"), Just("Res2"), Just("Res3")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    proptest::collection::vec((name.clone(), name, relation, dest), 1..14).prop_map(|reqs| {
        Workload {
            requests: reqs
                .into_iter()
                .map(|(a, b, r, d)| (a.to_string(), b.to_string(), r.to_string(), d.to_string()))
                .collect(),
        }
    })
}

fn scenario_db() -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Rome')",
    )
    .unwrap();
    db
}

fn pair_sql(me: &str, friend: &str, relation: &str, dest: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER {relation} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
         AND ('{friend}', fno) IN ANSWER {relation} CHOOSE 1"
    )
}

fn config(seed: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        match_config: MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        },
        seed,
        ..CoordinatorConfig::default()
    }
}

/// Canonical, comparable form of one query's coordination outcome:
/// `(qid, sorted group ids, answers)`.
type Outcome = (u64, Vec<u64>, Vec<(String, Vec<String>)>);

fn canonical(n: &MatchNotification) -> Outcome {
    let mut group: Vec<u64> = n.group.iter().map(|q| q.0).collect();
    group.sort_unstable();
    let answers = n
        .answers
        .iter()
        .map(|(rel, tuple)| {
            (
                rel.clone(),
                tuple.values().iter().map(|v| format!("{v:?}")).collect(),
            )
        })
        .collect();
    (n.id.0, group, answers)
}

/// Runs the workload through the serial coordinator, collecting every
/// notification (immediate or delivered through a ticket) plus the
/// still-pending ids.
fn run_serial(w: &Workload, seed: u64) -> (Vec<Outcome>, Vec<u64>) {
    let co = Coordinator::with_config(scenario_db(), config(seed));
    let mut tickets = Vec::new();
    let mut outcomes = Vec::new();
    for (me, friend, rel, dest) in &w.requests {
        match co.submit_sql(me, &pair_sql(me, friend, rel, dest)).unwrap() {
            Submission::Answered(n) => outcomes.push(canonical(&n)),
            Submission::Pending(t) => tickets.push(t),
        }
    }
    let mut pending = Vec::new();
    for t in tickets {
        match t.receiver.try_recv() {
            Ok(n) => outcomes.push(canonical(&n)),
            Err(_) => pending.push(t.id.0),
        }
    }
    outcomes.sort();
    pending.sort_unstable();
    (outcomes, pending)
}

/// Runs the workload through the sharded coordinator as one batch.
fn run_sharded(w: &Workload, seed: u64, shards: usize) -> (Vec<Outcome>, Vec<u64>) {
    let co = ShardedCoordinator::with_config(
        scenario_db(),
        ShardedConfig {
            shards,
            workers: 4,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: Default::default(),
            base: config(seed),
        },
    );
    let batch: Vec<(String, String)> = w
        .requests
        .iter()
        .map(|(me, friend, rel, dest)| (me.clone(), pair_sql(me, friend, rel, dest)))
        .collect();
    let mut tickets = Vec::new();
    let mut outcomes = Vec::new();
    for outcome in co.submit_batch_sql(&batch) {
        match outcome.expect("generated queries are safe") {
            Submission::Answered(n) => outcomes.push(canonical(&n)),
            Submission::Pending(t) => tickets.push(t),
        }
    }
    let mut pending = Vec::new();
    for t in tickets {
        match t.receiver.try_recv() {
            Ok(n) => outcomes.push(canonical(&n)),
            Err(_) => pending.push(t.id.0),
        }
    }
    co.check_routing_invariants()
        .expect("routing invariants hold");
    outcomes.sort();
    pending.sort_unstable();
    (outcomes, pending)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance property of the sharding PR: sharded (N=4) and
    /// serial coordinators yield identical matches — same answered
    /// queries, same groups, same answer tuples — and identical
    /// pending sets, under a fixed seed with randomization disabled.
    #[test]
    fn sharded_equals_serial(workload in arb_workload(), seed in 0u64..1000) {
        let (serial_outcomes, serial_pending) = run_serial(&workload, seed);
        let (sharded_outcomes, sharded_pending) = run_sharded(&workload, seed, 4);
        prop_assert_eq!(
            &serial_outcomes,
            &sharded_outcomes,
            "matches diverged on {:?}",
            &workload
        );
        prop_assert_eq!(
            &serial_pending,
            &sharded_pending,
            "pending sets diverged on {:?}",
            &workload
        );
    }

    /// The same equivalence with a degenerate single shard — the
    /// sharded machinery with N=1 *is* the serial algorithm.
    #[test]
    fn single_shard_equals_serial(workload in arb_workload(), seed in 0u64..200) {
        let (serial_outcomes, serial_pending) = run_serial(&workload, seed);
        let (sharded_outcomes, sharded_pending) = run_sharded(&workload, seed, 1);
        prop_assert_eq!(&serial_outcomes, &sharded_outcomes);
        prop_assert_eq!(&serial_pending, &sharded_pending);
    }
}
