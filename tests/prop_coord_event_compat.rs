//! Property tests for the versioned `CoordEvent` wire encoding
//! (deadline-lifecycle PR, satellite 3): round-trip over randomized
//! events — deadlines included — plus backward compatibility: a WAL
//! written with **v1** (pre-deadline, tag 0) registration frames
//! replays cleanly and recovers with `deadline = None`, and a
//! deadline-less event still encodes to exactly the v1 bytes (so old
//! and new deadline-free logs are indistinguishable). The byte-level
//! truncation corpus lives in `crates/storage/tests/`.

use proptest::prelude::*;

use std::sync::Arc;

use youtopia::storage::{Tuple, Value, Wal};
use youtopia::{CoordEvent, MockClock, QueryId, RegStamp, ShardedConfig, ShardedCoordinator};

fn pair_sql(me: &str, friend: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER Res \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
         AND ('{friend}', fno) IN ANSWER Res CHOOSE 1"
    )
}

/// Hand-encodes a **v1** `QueryRegistered` frame: tag 0, then
/// u32-length-prefixed owner and SQL, then qid and seq as big-endian
/// u64 — the exact layout every pre-deadline log contains.
fn v1_registered_bytes(owner: &str, sql: &str, qid: u64, seq: u64) -> Vec<u8> {
    let mut buf = vec![0u8];
    for s in [owner, sql] {
        buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    buf.extend_from_slice(&qid.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf
}

fn arb_stamp() -> impl Strategy<Value = Option<RegStamp>> {
    (any::<bool>(), any::<u64>(), any::<u32>())
        .prop_map(|(some, at, shard)| some.then_some(RegStamp { at, shard }))
}

fn arb_at() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_event() -> impl Strategy<Value = CoordEvent> {
    let name = "[a-z]{1,12}";
    let deadline = (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v));
    let registered = (
        name,
        "[ -~]{0,40}",
        any::<u64>(),
        any::<u64>(),
        deadline,
        arb_stamp(),
    )
        .prop_map(
            |(owner, sql, qid, seq, deadline, stamp)| CoordEvent::QueryRegistered {
                owner,
                sql,
                qid: QueryId(qid),
                seq,
                deadline,
                stamp,
            },
        );
    let cancelled = (any::<u64>(), arb_at()).prop_map(|(qid, at)| CoordEvent::QueryCancelled {
        qid: QueryId(qid),
        at,
    });
    let expired = (any::<u64>(), arb_at()).prop_map(|(qid, at)| CoordEvent::QueryExpired {
        qid: QueryId(qid),
        at,
    });
    let matched = (
        proptest::collection::vec(any::<u64>(), 0..5),
        proptest::collection::vec(("[A-Za-z]{1,8}", any::<i64>(), "[ -~]{0,12}"), 0..4),
        arb_at(),
    )
        .prop_map(|(qids, writes, at)| CoordEvent::MatchCommitted {
            qids: qids.into_iter().map(QueryId).collect(),
            answer_writes: writes
                .into_iter()
                .map(|(rel, n, s)| {
                    (
                        rel,
                        Tuple::new(vec![Value::Int(n), Value::from(s.as_str())]),
                    )
                })
                .collect(),
            at,
        });
    let watermark = (any::<u64>(), any::<u64>()).prop_map(|(qid, seq)| CoordEvent::Watermark {
        qid: QueryId(qid),
        seq,
    });
    prop_oneof![registered, cancelled, expired, matched, watermark]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every event — v1- or v2-encoded registrations included —
    /// round-trips through encode/decode unchanged.
    #[test]
    fn coord_event_roundtrip(event in arb_event()) {
        let bytes = event.encode();
        let decoded = CoordEvent::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, event);
    }

    /// Truncating an encoded event at any byte fails cleanly (never
    /// panics, never mis-decodes), and trailing garbage is rejected.
    #[test]
    fn coord_event_truncations_fail_cleanly(event in arb_event()) {
        let bytes = event.encode();
        for cut in 0..bytes.len() {
            prop_assert!(CoordEvent::decode(&bytes[..cut]).is_err());
        }
        let mut extended = bytes;
        extended.push(0);
        prop_assert!(CoordEvent::decode(&extended).is_err());
    }

    /// A deadline-less registration encodes to the exact v1 byte
    /// layout, and hand-built v1 bytes decode to `deadline: None` —
    /// the two directions of backward compatibility.
    #[test]
    fn v1_layout_compat(owner in "[a-z]{1,10}", sql in "[ -~]{0,30}",
                        qid in any::<u64>(), seq in any::<u64>()) {
        let event = CoordEvent::QueryRegistered {
            owner: owner.clone(),
            sql: sql.clone(),
            qid: QueryId(qid),
            seq,
            deadline: None,
            stamp: None,
        };
        let v1 = v1_registered_bytes(&owner, &sql, qid, seq);
        prop_assert_eq!(event.encode(), v1.clone());
        prop_assert_eq!(CoordEvent::decode(&v1).expect("v1 decodes"), event);
    }

    /// A stamped (v3) registration and a stamp-less one differ only by
    /// the audit stamp after a round trip: stripping the stamp from the
    /// decoded v3 event yields exactly the v1/v2 event — the versions
    /// describe one registration, not two.
    #[test]
    fn stamped_and_unstamped_registrations_agree(owner in "[a-z]{1,10}",
                                                 sql in "[ -~]{0,30}",
                                                 qid in any::<u64>(), seq in any::<u64>(),
                                                 deadline in proptest::option::of(any::<u64>()),
                                                 at in any::<u64>(), shard in any::<u32>()) {
        let stamped = CoordEvent::QueryRegistered {
            owner: owner.clone(),
            sql: sql.clone(),
            qid: QueryId(qid),
            seq,
            deadline,
            stamp: Some(RegStamp { at, shard }),
        };
        let decoded = CoordEvent::decode(&stamped.encode()).expect("v3 decodes");
        let CoordEvent::QueryRegistered { stamp, .. } = &decoded else {
            panic!("registration decodes as a registration");
        };
        prop_assert_eq!(*stamp, Some(RegStamp { at, shard }));
        let stripped = match decoded {
            CoordEvent::QueryRegistered { owner, sql, qid, seq, deadline, .. } => {
                CoordEvent::QueryRegistered { owner, sql, qid, seq, deadline, stamp: None }
            }
            other => other,
        };
        let plain = CoordEvent::QueryRegistered {
            owner, sql, qid: QueryId(qid), seq, deadline, stamp: None,
        };
        prop_assert_eq!(stripped, plain);
    }
}

/// A whole WAL written with v1 registration frames (the pre-deadline
/// on-disk format) recovers into a coordinator whose restored pending
/// queries carry `deadline = None` — and are therefore immortal, as
/// they were when written.
#[test]
fn v1_wal_recovers_with_no_deadlines() {
    let mut wal = Wal::in_memory();
    for (qid, me, friend, seq) in [(1u64, "A", "GhostA", 1u64), (2, "B", "GhostB", 2)] {
        wal.append_coordination(&v1_registered_bytes(
            &me.to_lowercase(),
            &pair_sql(me, friend),
            qid,
            seq,
        ))
        .unwrap();
    }
    let bytes = wal.raw_bytes().unwrap().to_vec();

    let (co, report) =
        ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
    assert_eq!(report.restored_pending, 2);
    assert_eq!(report.expired_at_recovery, 0, "v1 queries never expire");
    let snap = co.pending_snapshot();
    assert_eq!(snap.len(), 2);
    for p in &snap {
        assert_eq!(p.deadline, None, "v1 frame implies no deadline");
    }
    // a past-everything deadline sweep still touches nothing
    assert!(co.expire_due(u64::MAX).is_empty());
    assert_eq!(co.pending_count(), 2);
}

/// Mixed log: v1 frames interleaved with v2 (deadline-carrying)
/// frames — recovery restores exactly the logged deadline per query.
#[test]
fn mixed_v1_v2_wal_restores_per_query_deadlines() {
    let mut wal = Wal::in_memory();
    wal.append_coordination(&v1_registered_bytes("a", &pair_sql("A", "GhostA"), 1, 1))
        .unwrap();
    wal.append_coordination(
        &CoordEvent::QueryRegistered {
            owner: "b".into(),
            sql: pair_sql("B", "GhostB"),
            qid: QueryId(2),
            seq: 2,
            deadline: Some(77_000),
            stamp: None,
        }
        .encode(),
    )
    .unwrap();
    let bytes = wal.raw_bytes().unwrap().to_vec();

    // recover "at" t=0 (mock clock), so the 77s deadline has not lapsed
    let (co, _) = ShardedCoordinator::recover_with(
        Wal::from_bytes(bytes),
        ShardedConfig::default(),
        None,
        Arc::new(MockClock::new(0)),
    )
    .unwrap();
    let snap = co.pending_snapshot();
    assert_eq!(snap.len(), 2);
    assert_eq!(snap[0].deadline, None);
    assert_eq!(snap[1].deadline, Some(77_000));
    // the v2 deadline is live: sweeping past it expires exactly query 2
    let expired = co.expire_due(77_000);
    assert_eq!(expired, vec![QueryId(2)]);
    assert_eq!(co.pending_count(), 1);
}
