//! Equivalence property (acceptance criterion of the async-submission
//! PR): under a fixed seed with randomization disabled, driving a
//! workload through `submit_async` + a [`WaiterSet`] yields the
//! **identical** set of coordination outcomes — group members *and*
//! answer tuples — and the identical pending set as the sync `submit`
//! path, on both the serial and the sharded (batch-draining)
//! coordinator. Same discipline as `prop_shard_equivalence.rs`.
//!
//! Why this should hold exactly: the async path shares every stage of
//! the sync path — id allocation, logging, routing, arrival-driven
//! matching — and differs only in *how a pending query's completion is
//! delivered* (a parked waker instead of a blocking channel). With
//! randomization off the matcher is deterministic, so the only way the
//! property can fail is a bug in the waiter lifecycle itself: a waker
//! lost by a migration, a completion delivered twice, or a future left
//! pending past its terminal event.

use proptest::prelude::*;

use youtopia::core::{MatchConfig, SubmitOptions};
use youtopia::{
    compile_sql, run_sql, CoordinationOutcome, Coordinator, CoordinatorConfig, Database,
    MatchNotification, ShardedConfig, ShardedCoordinator, Submission, WaiterSet,
};

/// One generated workload: pair requests `(me, friend, relation,
/// dest, deadline)` over small pools — so coordinations actually fire
/// and relations form several independent components — plus the
/// mock-clock instant `sweep_at` of the `expire_due` sweep every run
/// performs after its submissions (deadline-lifecycle PR: random
/// deadlines are mixed into the equivalence workload).
#[derive(Debug, Clone)]
struct Workload {
    requests: Vec<(String, String, String, String, Option<u64>)>,
    sweep_at: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let relation = prop_oneof![Just("Res0"), Just("Res1"), Just("Res2"), Just("Res3")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    let deadline = (any::<bool>(), 1u64..100).prop_map(|(some, d)| some.then_some(d));
    (
        proptest::collection::vec((name.clone(), name, relation, dest, deadline), 1..14),
        0u64..150,
    )
        .prop_map(|(reqs, sweep_at)| Workload {
            requests: reqs
                .into_iter()
                .map(|(a, b, r, d, dl)| {
                    (
                        a.to_string(),
                        b.to_string(),
                        r.to_string(),
                        d.to_string(),
                        dl,
                    )
                })
                .collect(),
            sweep_at,
        })
}

fn scenario_db() -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Rome')",
    )
    .unwrap();
    db
}

fn pair_sql(me: &str, friend: &str, relation: &str, dest: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER {relation} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
         AND ('{friend}', fno) IN ANSWER {relation} CHOOSE 1"
    )
}

fn config(seed: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        match_config: MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        },
        seed,
        ..CoordinatorConfig::default()
    }
}

/// Canonical, comparable form of one query's coordination outcome:
/// `(qid, sorted group ids, answers)`.
type Outcome = (u64, Vec<u64>, Vec<(String, Vec<String>)>);

fn canonical(n: &MatchNotification) -> Outcome {
    let mut group: Vec<u64> = n.group.iter().map(|q| q.0).collect();
    group.sort_unstable();
    let answers = n
        .answers
        .iter()
        .map(|(rel, tuple)| {
            (
                rel.clone(),
                tuple.values().iter().map(|v| format!("{v:?}")).collect(),
            )
        })
        .collect();
    (n.id.0, group, answers)
}

/// Canonical result of one run: sorted answered outcomes, sorted
/// expired ids, sorted still-pending ids.
type RunResult = (Vec<Outcome>, Vec<u64>, Vec<u64>);

fn opts_of(deadline: &Option<u64>) -> SubmitOptions {
    SubmitOptions {
        deadline: *deadline,
    }
}

/// The still-pending ids straight from the registry (tickets cannot
/// distinguish "pending" from "expired" — both leave the channel
/// empty, but an expired ticket's sender is gone).
fn pending_ids(snapshot: Vec<youtopia::core::PendingInfo>) -> Vec<u64> {
    let mut ids: Vec<u64> = snapshot.into_iter().map(|p| p.id.0).collect();
    ids.sort_unstable();
    ids
}

/// Runs the workload through the serial coordinator's sync path:
/// submissions (deadlines attached), then the `expire_due` sweep,
/// then notification collection.
fn run_serial_sync(w: &Workload, seed: u64) -> RunResult {
    let co = Coordinator::with_config(scenario_db(), config(seed));
    let mut tickets = Vec::new();
    let mut outcomes = Vec::new();
    for (me, friend, rel, dest, deadline) in &w.requests {
        match co
            .submit_sql_with(me, &pair_sql(me, friend, rel, dest), opts_of(deadline))
            .unwrap()
        {
            Submission::Answered(n) => outcomes.push(canonical(&n)),
            Submission::Pending(t) => tickets.push(t),
        }
    }
    let mut expired: Vec<u64> = co.expire_due(w.sweep_at).iter().map(|q| q.0).collect();
    for t in tickets {
        if let Ok(n) = t.receiver.try_recv() {
            outcomes.push(canonical(&n));
        }
    }
    outcomes.sort();
    expired.sort_unstable();
    (outcomes, expired, pending_ids(co.pending_snapshot()))
}

/// Harvests a [`WaiterSet`] to quiescence and splits the result into
/// canonical answered outcomes, the expired ids, and the still-pending
/// id set. Every future whose query terminated must resolve here — a
/// future still in the set *is* the async pending set.
fn harvest(mut set: WaiterSet) -> (Vec<Outcome>, Vec<u64>, Vec<u64>) {
    // completions fire synchronously inside the submit/sweep calls
    // (wakers run under the shard lock), so one non-blocking poll
    // harvests everything that will ever resolve
    let mut outcomes = Vec::new();
    let mut expired = Vec::new();
    for (qid, outcome) in set.poll_ready() {
        match outcome {
            CoordinationOutcome::Answered(n) => {
                assert_eq!(n.id, qid, "notification delivered to its own future");
                outcomes.push(canonical(&n));
            }
            CoordinationOutcome::Expired => expired.push(qid.0),
            other => panic!("workload never cancels, got {other:?} for {qid}"),
        }
    }
    expired.sort_unstable();
    let pending = set.ids().into_iter().map(|q| q.0).collect();
    (outcomes, expired, pending)
}

/// Runs the workload through the serial coordinator's async path: every
/// submission becomes a future held in one [`WaiterSet`]; the sweep
/// resolves due futures with `Expired`.
fn run_serial_async(w: &Workload, seed: u64) -> RunResult {
    let co = Coordinator::with_config(scenario_db(), config(seed));
    let mut set = WaiterSet::new();
    for (me, friend, rel, dest, deadline) in &w.requests {
        let future = co
            .submit_sql_async_with(me, &pair_sql(me, friend, rel, dest), opts_of(deadline))
            .unwrap();
        set.insert(future);
    }
    co.expire_due(w.sweep_at);
    let (mut outcomes, expired, pending) = harvest(set);
    outcomes.sort();
    assert_eq!(pending, pending_ids(co.pending_snapshot()));
    (outcomes, expired, pending)
}

/// The workload as the sharded coordinator's options-carrying batch.
fn sharded_batch(
    w: &Workload,
) -> Vec<(
    String,
    youtopia::core::CoreResult<youtopia::core::EntangledQuery>,
    SubmitOptions,
)> {
    w.requests
        .iter()
        .map(|(me, friend, rel, dest, deadline)| {
            (
                me.clone(),
                compile_sql(&pair_sql(me, friend, rel, dest)),
                opts_of(deadline),
            )
        })
        .collect()
}

/// Runs the workload through the sharded coordinator's sync batch path.
fn run_sharded_sync(w: &Workload, seed: u64, shards: usize) -> RunResult {
    let co = ShardedCoordinator::with_config(
        scenario_db(),
        ShardedConfig {
            shards,
            workers: 4,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: Default::default(),
            base: config(seed),
        },
    );
    let mut tickets = Vec::new();
    let mut outcomes = Vec::new();
    for outcome in co.submit_batch_with(sharded_batch(w)) {
        match outcome.expect("generated queries are safe") {
            Submission::Answered(n) => outcomes.push(canonical(&n)),
            Submission::Pending(t) => tickets.push(t),
        }
    }
    let mut expired: Vec<u64> = co.expire_due(w.sweep_at).iter().map(|q| q.0).collect();
    for t in tickets {
        if let Ok(n) = t.receiver.try_recv() {
            outcomes.push(canonical(&n));
        }
    }
    outcomes.sort();
    expired.sort_unstable();
    (outcomes, expired, pending_ids(co.pending_snapshot()))
}

/// Runs the workload through the sharded coordinator's async batch
/// path, all futures driven by one [`WaiterSet`].
fn run_sharded_async(w: &Workload, seed: u64, shards: usize) -> RunResult {
    let co = ShardedCoordinator::with_config(
        scenario_db(),
        ShardedConfig {
            shards,
            workers: 4,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: Default::default(),
            base: config(seed),
        },
    );
    let mut set = WaiterSet::new();
    for outcome in co.submit_batch_async_with(sharded_batch(w)) {
        set.insert(outcome.expect("generated queries are safe"));
    }
    co.expire_due(w.sweep_at);
    co.check_routing_invariants()
        .expect("routing invariants hold");
    let (mut outcomes, expired, pending) = harvest(set);
    outcomes.sort();
    assert_eq!(pending, pending_ids(co.pending_snapshot()));
    (outcomes, expired, pending)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance property of the async-submission PR, now with
    /// random deadlines mixed into the workload: the async path
    /// (`submit_async` + `WaiterSet`) yields identical matches — same
    /// answered queries, same groups, same answer tuples — the same
    /// expired set after the `expire_due` sweep, and an identical
    /// pending set as the sync `submit` path, on the serial
    /// coordinator.
    #[test]
    fn serial_async_equals_sync(workload in arb_workload(), seed in 0u64..1000) {
        let (sync_outcomes, sync_expired, sync_pending) = run_serial_sync(&workload, seed);
        let (async_outcomes, async_expired, async_pending) = run_serial_async(&workload, seed);
        prop_assert_eq!(
            &sync_outcomes,
            &async_outcomes,
            "matches diverged on {:?}",
            &workload
        );
        prop_assert_eq!(
            &sync_expired,
            &async_expired,
            "expired sets diverged on {:?}",
            &workload
        );
        prop_assert_eq!(
            &sync_pending,
            &async_pending,
            "pending sets diverged on {:?}",
            &workload
        );
    }

    /// The same equivalence through the sharded coordinator's batch
    /// drain (4 shards): async batch submission == sync batch
    /// submission == (by `prop_shard_equivalence`) the serial path —
    /// deadlines and the expiry sweep included.
    #[test]
    fn sharded_async_equals_sync(workload in arb_workload(), seed in 0u64..1000) {
        let (sync_outcomes, sync_expired, sync_pending) = run_sharded_sync(&workload, seed, 4);
        let (async_outcomes, async_expired, async_pending) =
            run_sharded_async(&workload, seed, 4);
        prop_assert_eq!(
            &sync_outcomes,
            &async_outcomes,
            "matches diverged on {:?}",
            &workload
        );
        prop_assert_eq!(
            &sync_expired,
            &async_expired,
            "expired sets diverged on {:?}",
            &workload
        );
        prop_assert_eq!(
            &sync_pending,
            &async_pending,
            "pending sets diverged on {:?}",
            &workload
        );
    }
}
