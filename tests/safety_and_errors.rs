//! Failure-path sweep through the public API: every rejection and
//! error the system can produce should be precise, non-destructive
//! (no partial state) and recoverable.

use youtopia::core::{CoreError, SafetyMode};
use youtopia::travel::{TravelError, TravelService};
use youtopia::{run_sql, Coordinator, CoordinatorConfig, Database};

fn db() -> Database {
    let d = Database::new();
    run_sql(
        &d,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(&d, "INSERT INTO Flights VALUES (1, 'Paris')").unwrap();
    d
}

#[test]
fn every_safety_rejection_names_the_variable() {
    let co = Coordinator::new(db());
    let cases = [
        // head-only variable
        ("SELECT 'X', ghost INTO ANSWER R CHOOSE 1", "?ghost"),
        // filter-only variable
        (
            "SELECT 'X', a INTO ANSWER R WHERE a IN (SELECT fno FROM Flights) AND b < 1 CHOOSE 1",
            "?b",
        ),
        // negated membership does not restrict
        (
            "SELECT 'X', a INTO ANSWER R WHERE a NOT IN (SELECT fno FROM Flights) CHOOSE 1",
            "?a",
        ),
        // negated constraint does not restrict
        (
            "SELECT 'X', a INTO ANSWER R WHERE ('Y', a) NOT IN ANSWER R CHOOSE 1",
            "?a",
        ),
    ];
    for (sql, var) in cases {
        match co.submit_sql("u", sql) {
            Err(CoreError::Unsafe(msg)) => {
                assert!(msg.contains(var), "'{sql}' error should name {var}: {msg}")
            }
            other => panic!("'{sql}' should be unsafe, got {other:?}"),
        }
    }
    assert_eq!(co.pending_count(), 0, "rejected queries leave no state");
    assert_eq!(co.stats().rejected_unsafe, cases.len() as u64);
}

#[test]
fn strict_mode_is_stricter_than_relaxed() {
    let relaxed_only = "SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R CHOOSE 1";
    let relaxed = Coordinator::new(db());
    assert!(relaxed.submit_sql("k", relaxed_only).is_ok());

    let strict = Coordinator::with_config(
        db(),
        CoordinatorConfig {
            safety: SafetyMode::Strict,
            ..Default::default()
        },
    );
    assert!(matches!(
        strict.submit_sql("k", relaxed_only),
        Err(CoreError::Unsafe(_))
    ));
}

#[test]
fn compile_rejections_are_precise() {
    let co = Coordinator::new(db());
    let cases = [
        ("SELECT 1", "not an entangled query"),
        ("SELECT 'X', a INTO ANSWER R CHOOSE 2", "CHOOSE 2"),
        ("SELECT t.a INTO ANSWER R CHOOSE 1", "t.a"),
        ("SELECT a + 1 INTO ANSWER R CHOOSE 1", "constants and"),
        (
            "SELECT 'X', a INTO ANSWER R WHERE a = 1 OR ('Y', a) IN ANSWER R CHOOSE 1",
            "top-level",
        ),
    ];
    for (sql, needle) in cases {
        let err = co.submit_sql("u", sql).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "'{sql}': expected '{needle}' in '{msg}'"
        );
    }
}

#[test]
fn parse_errors_carry_positions_through_the_coordinator() {
    let co = Coordinator::new(db());
    let err = co
        .submit_sql("u", "SELECT 'X',\n  INTO ANSWER")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
}

#[test]
fn travel_service_gates_are_enforced_in_order() {
    let s = TravelService::bootstrap_demo().unwrap();
    s.social().register("alone").unwrap();
    // unknown user first
    assert!(matches!(
        s.coordinate_flight("ghost", "alone", "Paris", Default::default()),
        Err(TravelError::UnknownUser(_))
    ));
    // then unknown friend
    assert!(matches!(
        s.coordinate_flight("alone", "ghost", "Paris", Default::default()),
        Err(TravelError::UnknownUser(_))
    ));
    // then non-friendship
    s.social().register("stranger").unwrap();
    assert!(matches!(
        s.coordinate_flight("alone", "stranger", "Paris", Default::default()),
        Err(TravelError::NotFriends { .. })
    ));
}

#[test]
fn inventory_conflicts_roll_back_the_whole_match() {
    // Force a seat conflict: the match grounds against a snapshot, then
    // the hook finds no seats left. Everything must roll back; the pair
    // stays pending; retrying later succeeds once inventory returns.
    let s = TravelService::bootstrap_demo().unwrap();
    s.social().import_friends("a", &["b"]).unwrap();
    // drain flight capacity below the pair's membership threshold
    // *after* checking what the pair would need: set every Paris flight
    // to exactly 2 seats, then have the hook race by booking directly
    run_sql(s.db(), "UPDATE Flights SET seats = 2 WHERE dest = 'Paris'").unwrap();
    s.coordinate_flight("a", "b", "Paris", Default::default())
        .unwrap();
    // a direct booking eats one seat from every flight's worth? No —
    // direct booking takes one specific flight; the pair may pick
    // another. Instead drop all seats to 1: membership (seats >= 2)
    // now excludes everything, so the closing query stays pending.
    run_sql(s.db(), "UPDATE Flights SET seats = 1 WHERE dest = 'Paris'").unwrap();
    let out = s
        .coordinate_flight("b", "a", "Paris", Default::default())
        .unwrap();
    assert!(!out.is_confirmed(), "no flight can host both");
    assert!(s.coordinator().pending_count() >= 2);
    // inventory returns: a retry sweep answers the pair
    run_sql(s.db(), "UPDATE Flights SET seats = 5 WHERE dest = 'Paris'").unwrap();
    assert_eq!(s.retry_pending().unwrap(), 2);
}

#[test]
fn cascade_does_not_mask_apply_failures_forever() {
    // A match whose hook always fails keeps the group pending without
    // poisoning later submissions.
    let d = db();
    let co = Coordinator::new(d.clone());
    co.set_apply_hook(Box::new(|_, _| {
        Err(youtopia::storage::StorageError::Internal(
            "always fails".into(),
        ))
    }));
    let err = co
        .submit_sql(
            "solo",
            "SELECT 'S', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Storage(_)));
    assert_eq!(co.pending_count(), 1);
    assert!(co.answers("R").is_empty());
    // healing the hook and retrying succeeds
    co.set_apply_hook(Box::new(|_, _| Ok(())));
    assert_eq!(co.retry_all().unwrap().len(), 1);
    assert_eq!(co.pending_count(), 0);
}

#[test]
fn unknown_query_operations_fail_cleanly() {
    let co = Coordinator::new(db());
    assert!(matches!(
        co.cancel(youtopia::QueryId(42)),
        Err(CoreError::UnknownQuery(42))
    ));
    assert_eq!(co.cancel_owner("nobody"), 0);
    assert!(co.expire_before(u64::MAX).is_empty());
}

#[test]
fn answer_relation_arity_conflicts_surface_as_storage_errors() {
    // the app pre-created R with arity 3; a 2-ary entangled head cannot
    // be applied — the match must roll back and the queries stay pending
    let d = db();
    run_sql(&d, "CREATE TABLE R (a STRING, b INT, c INT)").unwrap();
    let co = Coordinator::new(d);
    let err = co
        .submit_sql(
            "solo",
            "SELECT 'S', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Storage(_)), "{err:?}");
    assert_eq!(
        co.pending_count(),
        1,
        "the query survives to retry after a fix"
    );
}
