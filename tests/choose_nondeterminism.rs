//! E9 — the `CHOOSE 1` nondeterminism experiment: the distribution of
//! the coordinated choice over repeated runs must be non-degenerate
//! (several eligible flights actually get chosen), every choice must be
//! eligible, and each query receives exactly one answer.

use std::collections::HashMap;

use youtopia::{run_sql, Coordinator, CoordinatorConfig, Database};

fn db_with_paris_flights(n: i64) -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    let rows: Vec<String> = (0..n).map(|i| format!("({i}, 'Paris')")).collect();
    run_sql(
        &db,
        &format!("INSERT INTO Flights VALUES {}", rows.join(", ")),
    )
    .unwrap();
    run_sql(&db, "INSERT INTO Flights VALUES (900, 'Rome')").unwrap();
    db
}

fn coordinated_choice(seed: u64, n: i64) -> i64 {
    let co = Coordinator::with_config(
        db_with_paris_flights(n),
        CoordinatorConfig {
            seed,
            ..Default::default()
        },
    );
    co.submit_sql(
        "a",
        "SELECT 'A', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('B', fno) IN ANSWER R CHOOSE 1",
    )
    .unwrap();
    let n = co
        .submit_sql(
            "b",
            "SELECT 'B', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('A', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap()
        .answered()
        .expect("pair matches");
    assert_eq!(n.answers.len(), 1, "exactly one answer tuple per query");
    n.answers[0].1.values()[1].as_int().unwrap()
}

#[test]
fn choices_are_spread_over_the_eligible_domain() {
    let domain = 8i64;
    let runs = 200u64;
    let mut histogram: HashMap<i64, usize> = HashMap::new();
    for seed in 0..runs {
        let fno = coordinated_choice(seed, domain);
        assert!(
            (0..domain).contains(&fno),
            "only Paris flights are eligible"
        );
        *histogram.entry(fno).or_default() += 1;
    }
    // Non-degeneracy: with 200 runs over 8 flights, a uniform-ish choice
    // touches well more than half the domain; require at least 4.
    assert!(
        histogram.len() >= 4,
        "expected a spread-out choice distribution, got {histogram:?}"
    );
    // No single flight should absorb (almost) everything.
    let max = histogram.values().max().copied().unwrap_or(0);
    assert!(
        max < runs as usize * 3 / 4,
        "choice distribution is degenerate: {histogram:?}"
    );
}

#[test]
fn same_seed_is_reproducible() {
    let a = coordinated_choice(12345, 8);
    let b = coordinated_choice(12345, 8);
    assert_eq!(a, b, "a seeded coordinator makes deterministic choices");
}

#[test]
fn singleton_choice_is_also_nondeterministic() {
    let mut seen = std::collections::HashSet::new();
    for seed in 0..64 {
        let co = Coordinator::with_config(
            db_with_paris_flights(6),
            CoordinatorConfig {
                seed,
                ..Default::default()
            },
        );
        let n = co
            .submit_sql(
                "solo",
                "SELECT 'solo', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') CHOOSE 1",
            )
            .unwrap()
            .answered()
            .unwrap();
        seen.insert(n.answers[0].1.values()[1].as_int().unwrap());
    }
    assert!(
        seen.len() >= 3,
        "singleton grounding also randomizes: {seen:?}"
    );
}

#[test]
fn randomize_off_is_deterministic_across_seeds() {
    use youtopia::core::MatchConfig;
    let mut seen = std::collections::HashSet::new();
    for seed in 0..16 {
        let config = CoordinatorConfig {
            seed,
            match_config: MatchConfig {
                randomize: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let co = Coordinator::with_config(db_with_paris_flights(6), config);
        let n = co
            .submit_sql(
                "solo",
                "SELECT 'solo', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') CHOOSE 1",
            )
            .unwrap()
            .answered()
            .unwrap();
        seen.insert(n.answers[0].1.values()[1].as_int().unwrap());
    }
    assert_eq!(
        seen.len(),
        1,
        "with randomize=false the choice is fixed: {seen:?}"
    );
}
