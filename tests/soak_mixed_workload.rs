//! Soak test: a randomized mixed workload (pair coordinations, group
//! bookings, direct bookings, cancellations, retries) driven through
//! the travel middle tier, with global invariants checked at the end:
//!
//! * seat inventory never goes negative and exactly accounts for the
//!   reservations that exist;
//! * every coordination that confirmed produced reservations for all
//!   members on one shared flight;
//! * the coordinator's accounting (submitted = answered + pending +
//!   cancelled) balances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use youtopia::travel::{FlightPrefs, TravelService};
use youtopia::{run_sql, StatementOutcome};

fn seats_by_flight(s: &TravelService) -> std::collections::HashMap<i64, i64> {
    let StatementOutcome::Rows(rs) = run_sql(s.db(), "SELECT fno, seats FROM Flights").unwrap()
    else {
        panic!()
    };
    rs.rows
        .iter()
        .map(|r| {
            (
                r.values()[0].as_int().unwrap(),
                r.values()[1].as_int().unwrap(),
            )
        })
        .collect()
}

fn reservation_count(s: &TravelService) -> usize {
    let read = s.db().read();
    read.table("Reservation").unwrap().len()
}

#[test]
fn randomized_mixed_workload_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let s = TravelService::bootstrap_demo().unwrap();
    // plenty of inventory so the workload is about coordination, not
    // sell-outs
    run_sql(s.db(), "UPDATE Flights SET seats = 500").unwrap();

    // users u0..u19, all mutually befriended
    let users: Vec<String> = (0..20).map(|i| format!("u{i}")).collect();
    for u in &users {
        let others: Vec<&str> = users
            .iter()
            .filter(|o| *o != u)
            .map(String::as_str)
            .collect();
        s.social().import_friends(u, &others).unwrap();
    }

    let seats_before = seats_by_flight(&s);
    let mut cancelled = 0u64;

    for step in 0..300 {
        let action = rng.random_range(0..100);
        let a = users[rng.random_range(0..users.len())].clone();
        let b = loop {
            let b = users[rng.random_range(0..users.len())].clone();
            if b != a {
                break b;
            }
        };
        match action {
            // 0-54: pair coordination halves (random order means many
            // match eventually, some never)
            0..=54 => {
                let _ = s
                    .coordinate_flight(&a, &b, "Paris", FlightPrefs::default())
                    .unwrap();
            }
            // 55-69: direct bookings
            55..=69 => {
                let fno = [122i64, 123, 134, 301][rng.random_range(0..4usize)];
                s.book_direct(&a, fno).unwrap();
            }
            // 70-84: group attempts (trio)
            70..=84 => {
                let c = loop {
                    let c = users[rng.random_range(0..users.len())].clone();
                    if c != a && c != b {
                        break c;
                    }
                };
                let _ = s
                    .coordinate_group_flight(&a, &[&b, &c], "Paris", FlightPrefs::default())
                    .unwrap();
            }
            // 85-92: cancel one of the submitter's pending requests
            85..=92 => {
                let view = s.account_view(&a).unwrap();
                if let Some(&qid) = view.pending.first() {
                    s.cancel(&a, qid).unwrap();
                    cancelled += 1;
                }
            }
            // 93-99: retry sweep (simulates the background retrier)
            _ => {
                let _ = s.retry_pending().unwrap();
            }
        }
        // cheap incremental invariant: no flight oversold
        if step % 50 == 49 {
            for (_, seats) in seats_by_flight(&s) {
                assert!(seats >= 0, "flight oversold at step {step}");
            }
        }
    }

    // ---- final invariants ------------------------------------------- //
    let seats_after = seats_by_flight(&s);
    let consumed: i64 = seats_before
        .iter()
        .map(|(fno, before)| before - seats_after.get(fno).copied().unwrap_or(0))
        .sum();
    assert!(consumed >= 0, "inventory can only shrink");
    assert_eq!(
        consumed as usize,
        reservation_count(&s),
        "every reservation consumed exactly one seat"
    );

    // coordinator accounting balances
    let stats = s.coordinator().stats();
    assert_eq!(
        stats.submitted,
        stats.answered + s.coordinator().pending_count() as u64 + cancelled,
        "submitted = answered + pending + cancelled"
    );

    // every reservation names a real flight and a registered user
    let read = s.db().read();
    let flights: std::collections::HashSet<i64> = read
        .table("Flights")
        .unwrap()
        .scan()
        .map(|(_, t)| t.values()[0].as_int().unwrap())
        .collect();
    for (_, t) in read.table("Reservation").unwrap().scan() {
        let traveler = t.values()[0].as_str().unwrap();
        let fno = t.values()[1].as_int().unwrap();
        assert!(
            flights.contains(&fno),
            "reservation on unknown flight {fno}"
        );
        assert!(
            users.iter().any(|u| u == traveler),
            "reservation for unknown user {traveler}"
        );
    }
    drop(read);

    // the system is quiescent: an explicit sweep finds nothing new
    assert_eq!(s.retry_pending().unwrap(), 0, "no matchable residue");
}

/// Concurrency soak for the sharded coordinator: several threads
/// hammer `submit_batch` with interleaved halves of coordinating pairs
/// spread over multiple relation families, plus standing noise. At
/// quiescence:
///
/// * no deadlock (the test completes) and no lost notification — every
///   query the coordinator counts as answered delivered its
///   notification either inline or through its ticket;
/// * every committed answer tuple traces to exactly one group: answer
///   rows across all relations equal the total notified answers, with
///   no duplicate (owner, flight) rows;
/// * the routing invariants hold (each relation component lives on
///   exactly one shard, memberships accounted).
#[test]
fn sharded_submit_batch_concurrent_soak() {
    use std::sync::Mutex;

    use youtopia::core::MatchConfig;
    use youtopia::travel::WorkloadGen;
    use youtopia::{
        CoordinatorConfig, MatchNotification, ShardedConfig, ShardedCoordinator, Submission,
    };

    const THREADS: usize = 4;
    const ROUNDS: usize = 12;
    const PAIRS_PER_ROUND: usize = 6;
    const RELATIONS: usize = 5;

    let mut generator = WorkloadGen::new(0x50A4);
    let db = generator.build_database(60, &["Paris", "Rome"]).unwrap();
    let co = ShardedCoordinator::with_config(
        db,
        ShardedConfig {
            shards: 4,
            workers: 2,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: Default::default(),
            base: CoordinatorConfig {
                match_config: MatchConfig {
                    randomize: false,
                    ..MatchConfig::default()
                },
                ..CoordinatorConfig::default()
            },
        },
    );

    // Each round builds pairs whose two halves are submitted by
    // *different* threads, so completion races across shard drains.
    // Owners are globally unique, so every head tuple is unique and
    // "answer row ↔ group" tracing is exact.
    let notifications: Mutex<Vec<MatchNotification>> = Mutex::new(Vec::new());
    let mut submitted_total = 0usize;
    let mut thread_work: Vec<Vec<Vec<(String, String)>>> = vec![Vec::new(); THREADS];
    for round in 0..ROUNDS {
        let mut halves: Vec<Vec<(String, String)>> = vec![Vec::new(); THREADS];
        for p in 0..PAIRS_PER_ROUND {
            let rel = format!("Reservation{}", (round * PAIRS_PER_ROUND + p) % RELATIONS);
            let me = format!("r{round}p{p}a");
            let friend = format!("r{round}p{p}b");
            let first = WorkloadGen::pair_request_on(&rel, &me, &friend, "Paris");
            let second = WorkloadGen::pair_request_on(&rel, &friend, &me, "Paris");
            halves[p % THREADS].push((first.owner, first.sql));
            halves[(p + 1) % THREADS].push((second.owner, second.sql));
            submitted_total += 2;
        }
        // one never-matching noise query per thread per round
        for (t, half) in halves.iter_mut().enumerate() {
            let noise = WorkloadGen::pair_request_on(
                &format!("Reservation{}", (round + t) % RELATIONS),
                &format!("noise_r{round}t{t}"),
                &format!("ghost_r{round}t{t}"),
                "Paris",
            );
            half.push((noise.owner, noise.sql));
            submitted_total += 1;
        }
        for (t, half) in halves.into_iter().enumerate() {
            thread_work[t].push(half);
        }
    }

    let tickets = std::thread::scope(|scope| {
        let handles: Vec<_> = thread_work
            .into_iter()
            .map(|work| {
                let co = &co;
                let notifications = &notifications;
                scope.spawn(move || {
                    let mut tickets = Vec::new();
                    for batch in work {
                        for outcome in co.submit_batch_sql(&batch) {
                            match outcome.expect("soak queries are safe") {
                                Submission::Answered(n) => notifications.lock().unwrap().push(n),
                                Submission::Pending(t) => tickets.push(t),
                            }
                        }
                    }
                    tickets
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("soak thread panicked"))
            .collect::<Vec<_>>()
    });

    // quiescence sweep: racing halves that crossed thread boundaries
    // mid-drain are matched now; nothing may remain matchable after it
    co.retry_all().unwrap();
    assert!(
        co.retry_all().unwrap().is_empty(),
        "sweep must reach a fixpoint"
    );

    // drain tickets only now: a query answered at any point (by a
    // later batch, a concurrent thread, or the sweep) must have exactly
    // one notification waiting in its channel — none lost, none extra
    for ticket in tickets {
        if let Ok(n) = ticket.receiver.try_recv() {
            notifications.lock().unwrap().push(n);
        }
    }

    co.check_routing_invariants()
        .expect("routing invariants at quiescence");

    let notifications = notifications.into_inner().unwrap();
    let stats = co.stats();
    assert_eq!(stats.submitted as usize, submitted_total);
    assert_eq!(
        stats.answered as usize + co.pending_count(),
        submitted_total,
        "answered + pending partitions submissions"
    );
    // no lost notification: every answered query's notification was
    // observed exactly once (inline, via ticket, or via the sweep)
    let mut answered_ids: Vec<u64> = notifications.iter().map(|n| n.id.0).collect();
    answered_ids.sort_unstable();
    let unique = answered_ids.len();
    answered_ids.dedup();
    assert_eq!(answered_ids.len(), unique, "no query notified twice");
    assert_eq!(unique, stats.answered as usize, "no notification lost");

    // every committed answer tuple traces to exactly one group: totals
    // agree and no (owner, flight) row is duplicated
    let notified_answers: usize = notifications.iter().map(|n| n.answers.len()).sum();
    let read = co.db().read();
    let mut committed_rows = 0usize;
    let mut seen_rows = std::collections::HashSet::new();
    for rel in (0..RELATIONS).map(|k| format!("Reservation{k}")) {
        if let Ok(table) = read.table(&rel) {
            for (_, tuple) in table.scan() {
                committed_rows += 1;
                let owner = tuple.values()[0].as_str().unwrap().to_string();
                assert!(
                    seen_rows.insert((rel.clone(), owner)),
                    "duplicate answer row in {rel}"
                );
            }
        }
    }
    assert_eq!(
        committed_rows, notified_answers,
        "committed answer rows == notified answers (each group applied once)"
    );
    // every pair shares one flight
    let by_id: std::collections::HashMap<u64, &MatchNotification> =
        notifications.iter().map(|n| (n.id.0, n)).collect();
    for n in &notifications {
        assert_eq!(n.group.len(), 2, "pair workload groups are pairs");
        let partner = n.group.iter().find(|q| q.0 != n.id.0).unwrap();
        let pn = by_id[&partner.0];
        assert_eq!(
            n.answers[0].1.values()[1],
            pn.answers[0].1.values()[1],
            "coordinated pair shares its flight"
        );
    }
}

/// Mixed sync/async soak (async-submission PR): four submitter threads
/// — two submitting through `submit_batch_sql_async`, two through the
/// sync batch path — hammer one sharded coordinator while a single
/// `WaiterSet` thread holds every async future in flight (standing
/// noise pushes it past 2k at once) and random cancels race the
/// matches. At quiescence every async future must have resolved
/// **exactly once** — no lost completion (a future still pending after
/// its query terminated) and no double delivery — and the coordinator's
/// accounting must balance across both notification styles.
#[test]
fn mixed_sync_async_soak_loses_no_completions() {
    use std::sync::mpsc;
    use std::time::Duration;

    use youtopia::core::MatchConfig;
    use youtopia::travel::WorkloadGen;
    use youtopia::{
        CoordinationFuture, CoordinationOutcome, CoordinatorConfig, QueryId, ShardedConfig,
        ShardedCoordinator, Submission, WaiterSet,
    };

    const ASYNC_THREADS: usize = 2; // plus 2 sync submitters
    const NOISE_PER_ASYNC_THREAD: usize = 1100; // keeps ≥2k futures in flight
    const PAIRS_PER_THREAD: usize = 300; // async half + sync partner half
    const RELATIONS: usize = 5;
    const BATCH: usize = 64;

    let mut generator = WorkloadGen::new(0xA51C);
    let db = generator.build_database(60, &["Paris", "Rome"]).unwrap();
    let co = ShardedCoordinator::with_config(
        db,
        ShardedConfig {
            shards: 4,
            workers: 2,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: Default::default(),
            base: CoordinatorConfig {
                match_config: MatchConfig {
                    randomize: false,
                    ..MatchConfig::default()
                },
                ..CoordinatorConfig::default()
            },
        },
    );

    let (future_tx, future_rx) = mpsc::channel::<CoordinationFuture>();

    // ---- the WaiterSet thread: one thread drives every future ------ //
    let waiter_thread = std::thread::spawn(move || {
        let mut set = WaiterSet::new();
        let mut completions: Vec<(QueryId, CoordinationOutcome)> = Vec::new();
        let mut max_in_flight = 0usize;
        let mut disconnected = false;
        loop {
            loop {
                match future_rx.try_recv() {
                    Ok(future) => {
                        set.insert(future);
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            max_in_flight = max_in_flight.max(set.len());
            completions.extend(set.wait_timeout(Duration::from_millis(1)));
            if disconnected && set.is_empty() {
                return (completions, max_in_flight);
            }
        }
    });

    // ---- 4 submitter threads --------------------------------------- //
    let (async_qids, cancelled_total, sync_notifications, sync_tickets) =
        std::thread::scope(|scope| {
            let mut async_handles = Vec::new();
            for t in 0..ASYNC_THREADS {
                let co = &co;
                let future_tx = future_tx.clone();
                async_handles.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xCA5C + t as u64);
                    let mut qids: Vec<u64> = Vec::new();
                    let mut cancelled = 0usize;
                    // interleave noise and pair halves in batches
                    let mut requests: Vec<(String, String, bool)> = Vec::new();
                    for i in 0..NOISE_PER_ASYNC_THREAD {
                        let r = WorkloadGen::pair_request_on(
                            &format!("Reservation{}", i % RELATIONS),
                            &format!("anoise_t{t}_{i}"),
                            &format!("aghost_t{t}_{i}"),
                            "Paris",
                        );
                        requests.push((r.owner, r.sql, false));
                    }
                    for i in 0..PAIRS_PER_THREAD {
                        let r = WorkloadGen::pair_request_on(
                            &format!("Reservation{}", (t + i) % RELATIONS),
                            &format!("pair_t{t}_{i}_a"),
                            &format!("pair_t{t}_{i}_b"),
                            "Paris",
                        );
                        requests.push((r.owner, r.sql, true));
                    }
                    for chunk in requests.chunks(BATCH) {
                        let batch: Vec<(String, String)> = chunk
                            .iter()
                            .map(|(owner, sql, _)| (owner.clone(), sql.clone()))
                            .collect();
                        let outcomes = co.submit_batch_sql_async(&batch);
                        for (outcome, (_, _, cancellable)) in outcomes.into_iter().zip(chunk) {
                            let future = outcome.expect("soak queries are safe");
                            let qid = future.id();
                            qids.push(qid.0);
                            // random cancels race the partner's arrival
                            if *cancellable && rng.random_range(0..10) == 0 {
                                cancelled += usize::from(co.cancel(qid).is_ok());
                            }
                            future_tx.send(future).expect("waiter thread alive");
                        }
                    }
                    (qids, cancelled)
                }));
            }
            let mut sync_handles = Vec::new();
            for t in 0..2 {
                let co = &co;
                sync_handles.push(scope.spawn(move || {
                    let mut notifications = Vec::new();
                    let mut tickets = Vec::new();
                    // the partner halves of async thread t's pairs
                    let requests: Vec<(String, String)> = (0..PAIRS_PER_THREAD)
                        .map(|i| {
                            let r = WorkloadGen::pair_request_on(
                                &format!("Reservation{}", (t + i) % RELATIONS),
                                &format!("pair_t{t}_{i}_b"),
                                &format!("pair_t{t}_{i}_a"),
                                "Paris",
                            );
                            (r.owner, r.sql)
                        })
                        .collect();
                    for chunk in requests.chunks(BATCH) {
                        for outcome in co.submit_batch_sql(chunk) {
                            match outcome.expect("soak queries are safe") {
                                Submission::Answered(n) => notifications.push(n),
                                Submission::Pending(ticket) => tickets.push(ticket),
                            }
                        }
                    }
                    (notifications, tickets)
                }));
            }
            let mut async_qids: Vec<u64> = Vec::new();
            let mut cancelled_total = 0usize;
            for handle in async_handles {
                let (qids, cancelled) = handle.join().expect("async submitter panicked");
                async_qids.extend(qids);
                cancelled_total += cancelled;
            }
            let mut sync_notifications = Vec::new();
            let mut sync_tickets = Vec::new();
            for handle in sync_handles {
                let (notifications, tickets) = handle.join().expect("sync submitter panicked");
                sync_notifications.extend(notifications);
                sync_tickets.extend(tickets);
            }
            (
                async_qids,
                cancelled_total,
                sync_notifications,
                sync_tickets,
            )
        });
    drop(future_tx);

    // quiescence: nothing further is matchable, then everything still
    // pending (noise, orphaned halves of cancelled pairs) is expired —
    // which must resolve every remaining future
    co.retry_all().unwrap();
    let expired = co.expire_before(u64::MAX).len();
    assert_eq!(co.pending_count(), 0, "expiry sweeps the registry clean");
    co.check_routing_invariants().unwrap();

    let (completions, max_in_flight) = waiter_thread.join().expect("waiter thread panicked");

    // one WaiterSet thread genuinely held thousands of futures at once
    assert!(
        max_in_flight >= 2000,
        "expected ≥2k futures in flight on the waiter thread, saw {max_in_flight}"
    );

    // ---- no lost, no double-delivered completions ------------------ //
    let mut delivered: Vec<u64> = completions.iter().map(|(qid, _)| qid.0).collect();
    delivered.sort_unstable();
    let before_dedup = delivered.len();
    delivered.dedup();
    assert_eq!(delivered.len(), before_dedup, "a future resolved twice");
    let mut submitted: Vec<u64> = async_qids.clone();
    submitted.sort_unstable();
    assert_eq!(
        delivered, submitted,
        "every async future resolves exactly once (none lost, none invented)"
    );

    // ---- cross-mode accounting ------------------------------------- //
    let mut sync_answered = sync_notifications.len();
    for ticket in sync_tickets {
        sync_answered += usize::from(ticket.receiver.try_recv().is_ok());
    }
    let async_answered = completions
        .iter()
        .filter(|(_, o)| matches!(o, CoordinationOutcome::Answered(_)))
        .count();
    let async_cancelled = completions
        .iter()
        .filter(|(_, o)| matches!(o, CoordinationOutcome::Cancelled))
        .count();
    let async_expired = completions
        .iter()
        .filter(|(_, o)| matches!(o, CoordinationOutcome::Expired))
        .count();
    let stats = co.stats();
    assert_eq!(
        stats.answered as usize,
        async_answered + sync_answered,
        "every answered query notified exactly one waiter (future or ticket)"
    );
    assert_eq!(
        async_cancelled, cancelled_total,
        "every cancel resolved its future"
    );
    assert_eq!(
        async_answered + async_cancelled + async_expired,
        async_qids.len(),
        "every async submission reached exactly one terminal outcome"
    );
    // expired = async noise + orphaned pair halves (sync and async)
    assert!(
        async_expired <= expired,
        "async expiries are a subset of the sweep"
    );
    assert_eq!(
        stats.submitted as usize,
        stats.answered as usize + cancelled_total + expired,
        "submitted = answered + cancelled + expired at quiescence"
    );
}

#[test]
fn soak_is_deterministic_per_seed() {
    // Two identical runs (same seed everywhere) end in identical
    // aggregate state — catching any hidden nondeterminism (iteration
    // order leaks, time dependence) in the pipeline.
    fn run(seed: u64) -> (usize, u64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TravelService::bootstrap_demo().unwrap();
        run_sql(s.db(), "UPDATE Flights SET seats = 500").unwrap();
        let users: Vec<String> = (0..8).map(|i| format!("u{i}")).collect();
        for u in &users {
            let others: Vec<&str> = users
                .iter()
                .filter(|o| *o != u)
                .map(String::as_str)
                .collect();
            s.social().import_friends(u, &others).unwrap();
        }
        for _ in 0..120 {
            let a = users[rng.random_range(0..users.len())].clone();
            let b = loop {
                let b = users[rng.random_range(0..users.len())].clone();
                if b != a {
                    break b;
                }
            };
            let _ = s
                .coordinate_flight(&a, &b, "Paris", FlightPrefs::default())
                .unwrap();
        }
        let stats = s.coordinator().stats();
        (reservation_count(&s), stats.answered, stats.groups_matched)
    }
    assert_eq!(run(7), run(7));
}

/// Session-reconnect soak (multi-tenant net PR, satellite 3): ~2,100
/// concurrent sessions held by **one** `WaiterSet` while a churn
/// thread randomly "disconnects" owners and reattaches them
/// (`reattach_async` — exactly what the network server does on
/// `Resume`), superseding the stranded handles. Run twice with the
/// same seed — once calm (the control), once under churn — the
/// reattached sessions must receive **exactly the control run's
/// answers**: same owners answered, same flights booked, zero lost and
/// zero duplicated completions. Every supersession is accounted for
/// (one `Superseded` per reattached handle) and the stranded noise
/// expires cleanly at the end.
#[test]
fn session_reconnect_soak_delivers_control_answers() {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    use youtopia::core::MatchConfig;
    use youtopia::storage::Tuple;
    use youtopia::travel::WorkloadGen;
    use youtopia::{
        CoordinationOutcome, CoordinatorConfig, ShardedConfig, ShardedCoordinator, Submission,
    };

    const NOISE: usize = 1500; // standing sessions whose partner never comes
    const PAIRS: usize = 600; // sessions that do get answered
    const RELATIONS: usize = 5;
    const BATCH: usize = 128;

    struct RunResult {
        answered: HashMap<String, Vec<(String, Tuple)>>,
        max_in_flight: usize,
        superseded: usize,
        expired: usize,
        reattached: usize,
    }

    fn run(churn: bool) -> RunResult {
        let mut generator = WorkloadGen::new(0x5E55);
        let db = generator.build_database(60, &["Paris", "Rome"]).unwrap();
        let co = Arc::new(ShardedCoordinator::with_config(
            db,
            ShardedConfig {
                shards: 4,
                workers: 2,
                auto_checkpoint_bytes: 0,
                fair_drain: false,
                checkpoint: Default::default(),
                base: CoordinatorConfig {
                    match_config: MatchConfig {
                        randomize: false, // deterministic CHOOSE for the control comparison
                        ..MatchConfig::default()
                    },
                    ..CoordinatorConfig::default()
                },
            },
        ));

        // ---- the single WaiterSet thread --------------------------- //
        let (tx, rx) = mpsc::channel::<youtopia::CoordinationFuture>();
        let waiter = std::thread::spawn(move || {
            let mut set = youtopia::WaiterSet::new();
            let mut completions: Vec<(youtopia::QueryId, CoordinationOutcome)> = Vec::new();
            let mut max_in_flight = 0usize;
            let mut disconnected = false;
            loop {
                loop {
                    match rx.try_recv() {
                        Ok(future) => {
                            let qid = future.id();
                            if let Some(mut old) = set.insert(future) {
                                // a reattach displaced the stranded
                                // handle: it must already be terminal
                                let outcome = old
                                    .try_take()
                                    .expect("displaced handle resolved by supersession");
                                completions.push((qid, outcome));
                            }
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                max_in_flight = max_in_flight.max(set.len());
                completions.extend(set.wait_timeout(Duration::from_millis(1)));
                if disconnected && set.is_empty() {
                    return (completions, max_in_flight);
                }
            }
        });

        // ---- submissions (identical order in both runs) ------------ //
        let mut owner_of: HashMap<u64, String> = HashMap::new();
        let mut owners: Vec<String> = Vec::new();
        let mut requests: Vec<(String, String)> = Vec::new();
        for i in 0..NOISE {
            let r = WorkloadGen::pair_request_on(
                &format!("Reservation{}", i % RELATIONS),
                &format!("sess/n{i}"),
                &format!("sess/ghost{i}"),
                "Paris",
            );
            requests.push((r.owner, r.sql));
        }
        for i in 0..PAIRS {
            let r = WorkloadGen::pair_request_on(
                &format!("Reservation{}", i % RELATIONS),
                &format!("sess/p{i}a"),
                &format!("sess/p{i}b"),
                "Paris",
            );
            requests.push((r.owner, r.sql));
        }
        for chunk in requests.chunks(BATCH) {
            // batch outcomes come back in submission order: zip to owners
            let outcomes = co.submit_batch_sql_async(chunk);
            for (outcome, (owner, _)) in outcomes.into_iter().zip(chunk) {
                let future = outcome.expect("soak queries are safe");
                owner_of.insert(future.id().0, owner.clone());
                tx.send(future).expect("waiter alive");
            }
        }
        owners.extend(owner_of.values().cloned());

        // ---- churn thread: random disconnect/reconnect ------------- //
        let stop = Arc::new(AtomicBool::new(false));
        let churn_handle = churn.then(|| {
            let co = Arc::clone(&co);
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            let owners = owners.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0C0);
                let mut reattached = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let owner = &owners[rng.random_range(0..owners.len())];
                    for future in co.reattach_async(owner) {
                        reattached += 1;
                        if tx.send(future).is_err() {
                            return reattached;
                        }
                    }
                }
                reattached
            })
        });

        // ---- closers arrive while the churn is running ------------- //
        let mut answered: HashMap<String, Vec<(String, Tuple)>> = HashMap::new();
        for i in 0..PAIRS {
            let r = WorkloadGen::pair_request_on(
                &format!("Reservation{}", i % RELATIONS),
                &format!("sess/p{i}b"),
                &format!("sess/p{i}a"),
                "Paris",
            );
            match co.submit_sql(&r.owner, &r.sql).expect("closer submits") {
                Submission::Answered(n) => {
                    answered.insert(r.owner.clone(), n.answers);
                }
                Submission::Pending(_) => panic!("closer must answer its pair on arrival"),
            }
        }

        stop.store(true, Ordering::Release);
        let reattached = churn_handle
            .map(|h| h.join().expect("churn thread"))
            .unwrap_or(0);
        drop(tx);

        // quiescence: expire the stranded noise, resolving every
        // remaining future
        co.retry_all().unwrap();
        co.expire_before(u64::MAX);
        assert_eq!(co.pending_count(), 0);
        let (completions, max_in_flight) = waiter.join().expect("waiter thread");

        // ---- classify ---------------------------------------------- //
        let mut superseded = 0usize;
        let mut expired = 0usize;
        let mut terminal_per_qid: HashMap<u64, usize> = HashMap::new();
        for (qid, outcome) in &completions {
            match outcome {
                CoordinationOutcome::Superseded => superseded += 1,
                CoordinationOutcome::Expired => {
                    expired += 1;
                    *terminal_per_qid.entry(qid.0).or_default() += 1;
                }
                CoordinationOutcome::Cancelled => {
                    *terminal_per_qid.entry(qid.0).or_default() += 1;
                }
                CoordinationOutcome::Answered(n) => {
                    *terminal_per_qid.entry(qid.0).or_default() += 1;
                    let owner = owner_of[&qid.0].clone();
                    answered.insert(owner, n.answers.clone());
                }
            }
        }
        // zero lost, zero duplicated: every async submission reaches
        // exactly one non-superseded terminal outcome...
        assert_eq!(
            terminal_per_qid.len(),
            NOISE + PAIRS,
            "a session lost its completion"
        );
        assert!(
            terminal_per_qid.values().all(|&n| n == 1),
            "a session's completion was delivered twice"
        );
        // ...and every reattach superseded exactly one stranded handle
        assert_eq!(
            completions.len(),
            NOISE + PAIRS + reattached,
            "supersessions accounted one-for-one"
        );
        assert_eq!(superseded, reattached);

        RunResult {
            answered,
            max_in_flight,
            superseded,
            expired,
            reattached,
        }
    }

    let control = run(false);
    let churned = run(true);

    // scale floor: one WaiterSet genuinely drove ≥2k concurrent sessions
    assert!(
        control.max_in_flight >= 2000 && churned.max_in_flight >= 2000,
        "expected ≥2k sessions in flight (control {}, churned {})",
        control.max_in_flight,
        churned.max_in_flight
    );
    assert_eq!(control.reattached, 0);
    assert_eq!(control.superseded, 0);
    assert!(
        churned.reattached > 0,
        "the churn thread must actually reattach sessions"
    );
    assert_eq!(control.expired, NOISE, "all stranded noise expires");
    assert_eq!(churned.expired, NOISE);

    // the reattach churn is invisible to the outcome: reattached
    // sessions received exactly the control run's answers
    assert_eq!(
        churned.answered, control.answered,
        "reconnect churn changed an answer"
    );
    assert_eq!(
        control.answered.len(),
        2 * PAIRS,
        "both halves of every pair answered"
    );
}
