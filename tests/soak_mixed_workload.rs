//! Soak test: a randomized mixed workload (pair coordinations, group
//! bookings, direct bookings, cancellations, retries) driven through
//! the travel middle tier, with global invariants checked at the end:
//!
//! * seat inventory never goes negative and exactly accounts for the
//!   reservations that exist;
//! * every coordination that confirmed produced reservations for all
//!   members on one shared flight;
//! * the coordinator's accounting (submitted = answered + pending +
//!   cancelled) balances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use youtopia::travel::{FlightPrefs, TravelService};
use youtopia::{run_sql, StatementOutcome};

fn seats_by_flight(s: &TravelService) -> std::collections::HashMap<i64, i64> {
    let StatementOutcome::Rows(rs) = run_sql(s.db(), "SELECT fno, seats FROM Flights").unwrap()
    else {
        panic!()
    };
    rs.rows
        .iter()
        .map(|r| (r.values()[0].as_int().unwrap(), r.values()[1].as_int().unwrap()))
        .collect()
}

fn reservation_count(s: &TravelService) -> usize {
    let read = s.db().read();
    read.table("Reservation").unwrap().len()
}

#[test]
fn randomized_mixed_workload_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let s = TravelService::bootstrap_demo().unwrap();
    // plenty of inventory so the workload is about coordination, not
    // sell-outs
    run_sql(s.db(), "UPDATE Flights SET seats = 500").unwrap();

    // users u0..u19, all mutually befriended
    let users: Vec<String> = (0..20).map(|i| format!("u{i}")).collect();
    for u in &users {
        let others: Vec<&str> =
            users.iter().filter(|o| *o != u).map(String::as_str).collect();
        s.social().import_friends(u, &others).unwrap();
    }

    let seats_before = seats_by_flight(&s);
    let mut cancelled = 0u64;

    for step in 0..300 {
        let action = rng.random_range(0..100);
        let a = users[rng.random_range(0..users.len())].clone();
        let b = loop {
            let b = users[rng.random_range(0..users.len())].clone();
            if b != a {
                break b;
            }
        };
        match action {
            // 0-54: pair coordination halves (random order means many
            // match eventually, some never)
            0..=54 => {
                let _ = s.coordinate_flight(&a, &b, "Paris", FlightPrefs::default()).unwrap();
            }
            // 55-69: direct bookings
            55..=69 => {
                let fno = [122i64, 123, 134, 301][rng.random_range(0..4)];
                s.book_direct(&a, fno).unwrap();
            }
            // 70-84: group attempts (trio)
            70..=84 => {
                let c = loop {
                    let c = users[rng.random_range(0..users.len())].clone();
                    if c != a && c != b {
                        break c;
                    }
                };
                let _ = s
                    .coordinate_group_flight(&a, &[&b, &c], "Paris", FlightPrefs::default())
                    .unwrap();
            }
            // 85-92: cancel one of the submitter's pending requests
            85..=92 => {
                let view = s.account_view(&a).unwrap();
                if let Some(&qid) = view.pending.first() {
                    s.cancel(&a, qid).unwrap();
                    cancelled += 1;
                }
            }
            // 93-99: retry sweep (simulates the background retrier)
            _ => {
                let _ = s.retry_pending().unwrap();
            }
        }
        // cheap incremental invariant: no flight oversold
        if step % 50 == 49 {
            for (_, seats) in seats_by_flight(&s) {
                assert!(seats >= 0, "flight oversold at step {step}");
            }
        }
    }

    // ---- final invariants ------------------------------------------- //
    let seats_after = seats_by_flight(&s);
    let consumed: i64 = seats_before
        .iter()
        .map(|(fno, before)| before - seats_after.get(fno).copied().unwrap_or(0))
        .sum();
    assert!(consumed >= 0, "inventory can only shrink");
    assert_eq!(
        consumed as usize,
        reservation_count(&s),
        "every reservation consumed exactly one seat"
    );

    // coordinator accounting balances
    let stats = s.coordinator().stats();
    assert_eq!(
        stats.submitted,
        stats.answered + s.coordinator().pending_count() as u64 + cancelled,
        "submitted = answered + pending + cancelled"
    );

    // every reservation names a real flight and a registered user
    let read = s.db().read();
    let flights: std::collections::HashSet<i64> = read
        .table("Flights")
        .unwrap()
        .scan()
        .map(|(_, t)| t.values()[0].as_int().unwrap())
        .collect();
    for (_, t) in read.table("Reservation").unwrap().scan() {
        let traveler = t.values()[0].as_str().unwrap();
        let fno = t.values()[1].as_int().unwrap();
        assert!(flights.contains(&fno), "reservation on unknown flight {fno}");
        assert!(
            users.iter().any(|u| u == traveler),
            "reservation for unknown user {traveler}"
        );
    }
    drop(read);

    // the system is quiescent: an explicit sweep finds nothing new
    assert_eq!(s.retry_pending().unwrap(), 0, "no matchable residue");
}

#[test]
fn soak_is_deterministic_per_seed() {
    // Two identical runs (same seed everywhere) end in identical
    // aggregate state — catching any hidden nondeterminism (iteration
    // order leaks, time dependence) in the pipeline.
    fn run(seed: u64) -> (usize, u64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TravelService::bootstrap_demo().unwrap();
        run_sql(s.db(), "UPDATE Flights SET seats = 500").unwrap();
        let users: Vec<String> = (0..8).map(|i| format!("u{i}")).collect();
        for u in &users {
            let others: Vec<&str> =
                users.iter().filter(|o| *o != u).map(String::as_str).collect();
            s.social().import_friends(u, &others).unwrap();
        }
        for _ in 0..120 {
            let a = users[rng.random_range(0..users.len())].clone();
            let b = loop {
                let b = users[rng.random_range(0..users.len())].clone();
                if b != a {
                    break b;
                }
            };
            let _ = s.coordinate_flight(&a, &b, "Paris", FlightPrefs::default()).unwrap();
        }
        let stats = s.coordinator().stats();
        (reservation_count(&s), stats.answered, stats.groups_matched)
    }
    assert_eq!(run(7), run(7));
}
