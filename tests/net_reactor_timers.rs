//! Reactor timer semantics under a controlled clock.
//!
//! `set_read_timeout` is gone: the reactor keeps one deadline heap and
//! derives its `epoll_wait` timeout from the earliest live entry (one
//! short tick when the clock is a mock, since mock time only moves by
//! explicit advance). These tests drive a `MockClock` through the
//! front-end's timer surface: idle-connection reaping (established and
//! never-handshaken), activity deferring the reap (the heap's lazy
//! revalidation path), and a client deadline expiring on the sweeper
//! thread whose completion must cross the wake hook into the epoll
//! loop. The trickle tests exercise the nonblocking read path's frame
//! reassembly one byte at a time.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use youtopia::net::{
    encode_frame, FrameReader, NetError, Outcome, ReadEvent, Request, Response, SubmitOutcome,
    PROTOCOL_VERSION,
};
use youtopia::{
    Clock, MockClock, NetClient, NetServer, ServerConfig, ShardedCoordinator, TenantQuotas,
    TenantRegistry, WorkloadGen,
};

const T0: u64 = 1_000_000;

fn spawn_mock_server(idle_timeout: Duration) -> (NetServer, std::net::SocketAddr, Arc<MockClock>) {
    let mut generator = WorkloadGen::new(0xA11CE);
    let db = generator
        .build_database(20, &["Paris"])
        .expect("database builds");
    let co = Arc::new(ShardedCoordinator::new(db));
    let tenants = TenantRegistry::new(TenantQuotas::default());
    let clock = Arc::new(MockClock::new(T0));
    let server = NetServer::spawn(
        co,
        tenants,
        ServerConfig {
            idle_timeout,
            ..ServerConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .expect("server binds");
    let addr = server.local_addr();
    (server, addr, clock)
}

/// Blocks until the peer closes the connection; panics if it stays
/// open past `patience` of real time.
fn expect_disconnect(stream: &TcpStream, patience: Duration) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    let deadline = Instant::now() + patience;
    let mut sink = [0u8; 1024];
    loop {
        match (&*stream).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue, // drain whatever was in flight
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(
                    Instant::now() < deadline,
                    "connection still open after {patience:?}"
                );
            }
            Err(_) => return, // reset also counts as closed
        }
    }
}

#[test]
fn idle_established_session_is_reaped() {
    let (server, addr, clock) = spawn_mock_server(Duration::from_secs(5));
    let mut client = NetClient::connect(addr).expect("connect");
    client.hello("idle/alice").expect("hello");
    assert_eq!(server.stats().active, 1);

    clock.advance(6_000);
    match client.next_event(Duration::from_secs(5)) {
        Err(NetError::Closed) => {}
        other => panic!("expected the idle session to be closed, got {other:?}"),
    }
    assert_eq!(server.stats().idle_reaped, 1);
    assert_eq!(server.stats().active, 0);
    drop(server);
}

#[test]
fn connection_that_never_handshakes_is_reaped() {
    let (server, addr, clock) = spawn_mock_server(Duration::from_secs(5));
    let stream = TcpStream::connect(addr).expect("connect");
    // give the reactor a beat to accept before advancing time
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().accepted == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().accepted, 1, "connection accepted");

    clock.advance(6_000);
    expect_disconnect(&stream, Duration::from_secs(5));
    assert_eq!(server.stats().idle_reaped, 1);
    drop(server);
}

#[test]
fn activity_defers_the_idle_reap() {
    let (server, addr, clock) = spawn_mock_server(Duration::from_secs(5));
    let mut client = NetClient::connect(addr).expect("connect");
    client.hello("idle/busy").expect("hello");

    // 3s in: touch the session, moving its deadline to t+8s
    clock.advance(3_000);
    client.stats().expect("session alive at 3s");

    // 6s in: past the original deadline, but the heap entry must
    // revalidate against the refreshed activity and re-arm
    clock.advance(3_000);
    client.stats().expect("session alive at 6s after activity");
    assert_eq!(server.stats().idle_reaped, 0);

    // that round trip moved the deadline to t+11s; jump past it
    clock.advance(6_000);
    match client.next_event(Duration::from_secs(5)) {
        Err(NetError::Closed) => {}
        other => panic!("expected reap after refreshed deadline, got {other:?}"),
    }
    assert_eq!(server.stats().idle_reaped, 1);
    drop(server);
}

#[test]
fn client_deadline_expiry_is_pushed_through_the_wake_hook() {
    // long idle timeout so only the submission deadline can fire
    let (server, addr, clock) = spawn_mock_server(Duration::from_secs(600));
    let mut client = NetClient::connect(addr).expect("connect");
    client.hello("exp/alice").expect("hello");

    let sql = WorkloadGen::pair_request_on("Reservation0", "exp/alice", "exp/ghost", "Paris").sql;
    let qid = match client.submit(&sql, Some(T0 + 5_000)).expect("submit") {
        SubmitOutcome::Pending(qid) => qid,
        SubmitOutcome::Done(qid, o) => panic!("partnerless q{qid} resolved early: {o:?}"),
    };

    // the expiry happens on the sweeper thread; its completion must
    // wake the reactor (eventfd bridge) and arrive as a Done push
    clock.advance(6_000);
    match client.next_event(Duration::from_secs(10)).expect("event") {
        Some((got, Outcome::Expired)) if got == qid => {}
        other => panic!("expected Expired push for q{qid}, got {other:?}"),
    }
    client.bye().ok();
    drop(server);
}

#[test]
fn bye_reply_is_flushed_before_the_close() {
    let (server, addr, _clock) = spawn_mock_server(Duration::from_secs(600));
    let mut client = NetClient::connect(addr).expect("connect");
    client.hello("bye/alice").expect("hello");
    // bye() itself asserts the ByeOk reply arrived — i.e. the final
    // frame was flushed, not dropped by the close
    client.bye().expect("ByeOk before close");
    match client.next_event(Duration::from_secs(5)) {
        Err(NetError::Closed) => {}
        other => panic!("expected close after ByeOk, got {other:?}"),
    }
    drop(server);
}

// ---------------------------------------------------------------- //
// Trickle reassembly against the nonblocking read path
// ---------------------------------------------------------------- //

fn write_byte_at_a_time(stream: &mut TcpStream, bytes: &[u8]) {
    for b in bytes {
        stream.write_all(std::slice::from_ref(b)).expect("trickle");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn frames_reassemble_from_byte_at_a_time_reads() {
    let (server, addr, _clock) = spawn_mock_server(Duration::from_secs(600));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();

    let hello = encode_frame(
        &Request::Hello {
            version: PROTOCOL_VERSION,
            owner: "trickle/t".into(),
        }
        .encode(),
    );
    write_byte_at_a_time(&mut stream, &hello);

    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    match reader.read_event().expect("welcome") {
        ReadEvent::Frame(payload) => assert!(matches!(
            Response::decode(&payload).expect("decode"),
            Response::Welcome { .. }
        )),
        other => panic!("expected Welcome, got {other:?}"),
    }

    // a second trickled frame exercises partial-buffer reuse across
    // many readiness events on an established connection
    let stats = encode_frame(&Request::Stats { corr: 9 }.encode());
    write_byte_at_a_time(&mut stream, &stats);
    match reader.read_event().expect("stats reply") {
        ReadEvent::Frame(payload) => match Response::decode(&payload).expect("decode") {
            Response::StatsReply { corr, .. } => assert_eq!(corr, 9),
            other => panic!("expected StatsReply, got {other:?}"),
        },
        other => panic!("expected StatsReply frame, got {other:?}"),
    }
    drop(server);
}

#[test]
fn two_frames_split_across_one_byte_boundary() {
    // the tail of one frame and the head of the next arriving in a
    // single readiness event must yield both frames
    let (server, addr, _clock) = spawn_mock_server(Duration::from_secs(600));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();

    let hello = encode_frame(
        &Request::Hello {
            version: PROTOCOL_VERSION,
            owner: "trickle/u".into(),
        }
        .encode(),
    );
    let mut burst = encode_frame(&Request::Stats { corr: 1 }.encode());
    burst.extend_from_slice(&encode_frame(&Request::Stats { corr: 2 }.encode()));

    // handshake first so both Stats arrive on an established session
    stream.write_all(&hello).expect("hello");
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    assert!(matches!(reader.read_event(), Ok(ReadEvent::Frame(_))));

    // split the two-frame burst at an arbitrary interior point
    let split = burst.len() / 2 + 1;
    stream.write_all(&burst[..split]).expect("first half");
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(&burst[split..]).expect("second half");

    let mut corrs = Vec::new();
    while corrs.len() < 2 {
        match reader.read_event().expect("reply") {
            ReadEvent::Frame(payload) => match Response::decode(&payload).expect("decode") {
                Response::StatsReply { corr, .. } => corrs.push(corr),
                other => panic!("expected StatsReply, got {other:?}"),
            },
            other => panic!("expected frame, got {other:?}"),
        }
    }
    assert_eq!(corrs, vec![1, 2], "both frames decoded in order");
    drop(server);
}
