//! Integration tests for the deadline-driven query lifecycle
//! (deadline-lifecycle PR): the background [`DeadlineSweeper`] on an
//! injectable [`MockClock`] (no wall-clock sleeps — tests advance the
//! clock and observe event-driven outcomes), the expiry-vs-match race
//! regression (exactly one terminal outcome per waiter, on both
//! coordinators), and the WAL-threshold auto-checkpoint satellite.

use std::sync::Arc;
use std::time::Duration;

use youtopia::core::SubmitOptions;
use youtopia::storage::Wal;
use youtopia::{
    run_sql, CoordinationOutcome, Coordinator, Database, DeadlineSweeper, MockClock, ShardedConfig,
    ShardedCoordinator, Submission,
};

fn flights_db() -> Database {
    let db = Database::new();
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris')",
    ] {
        run_sql(&db, sql).unwrap();
    }
    db
}

/// Spins (yielding) until `cond` holds or ~10s pass — used only for
/// counters the sweeper thread updates just *after* waking the waiter,
/// so the condition is event-driven, not time-driven.
fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::yield_now();
    }
    cond()
}

fn pair_sql_on(rel: &str, me: &str, friend: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER {rel} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
         AND ('{friend}', fno) IN ANSWER {rel} CHOOSE 1"
    )
}

/// The tentpole wiring, serial flavor: a sweeper on a mock clock
/// expires a deadline-carrying future exactly when the clock passes
/// the deadline — driven entirely by `MockClock::advance`, which wakes
/// the parked sweeper through the coordinator's sweep signal.
#[test]
fn sweeper_expires_future_on_mock_clock_serial() {
    let clock = Arc::new(MockClock::new(0));
    let co = Arc::new(Coordinator::new(flights_db()));
    let sweeper = DeadlineSweeper::spawn(co.clone(), clock.clone());

    let mut f = co
        .submit_sql_async_with(
            "kramer",
            &pair_sql_on("Res", "Kramer", "Jerry"),
            SubmitOptions::with_deadline(100),
        )
        .unwrap();
    assert!(!f.is_complete(), "deadline lies in the mock future");

    clock.advance(99); // t=99: not due — the sweep must not fire it
    assert!(!f.is_complete());

    clock.advance(1); // t=100: due
    assert_eq!(
        f.wait_timeout(Duration::from_secs(10)),
        Some(CoordinationOutcome::Expired),
        "the sweeper must expire the future at its deadline"
    );
    assert_eq!(co.pending_count(), 0);
    assert!(eventually(|| sweeper.swept() >= 1));
    sweeper.shutdown();
}

/// Sharded flavor: deadlines on different shards expire from one
/// sweeper; sync tickets disconnect, futures resolve `Expired`, and a
/// deadline-less query is untouched.
#[test]
fn sweeper_expires_across_shards_on_mock_clock() {
    let clock = Arc::new(MockClock::new(0));
    let co = Arc::new(ShardedCoordinator::with_clock(
        flights_db(),
        ShardedConfig::default(),
        clock.clone(),
    ));
    let sweeper = DeadlineSweeper::spawn(co.clone(), clock.clone());

    // four relation families → four shards; staggered deadlines
    let mut f0 = co
        .submit_sql_async_with(
            "a",
            &pair_sql_on("Res0", "A", "GhostA"),
            SubmitOptions::with_deadline(50),
        )
        .unwrap();
    let ticket = match co
        .submit_sql_with(
            "b",
            &pair_sql_on("Res1", "B", "GhostB"),
            SubmitOptions::with_deadline(80),
        )
        .unwrap()
    {
        Submission::Pending(t) => t,
        Submission::Answered(_) => panic!("no partner: must pend"),
    };
    let mut f2 = co
        .submit_sql_async_with(
            "c",
            &pair_sql_on("Res2", "C", "GhostC"),
            SubmitOptions::with_deadline(200),
        )
        .unwrap();
    co.submit_sql("d", &pair_sql_on("Res3", "D", "GhostD"))
        .unwrap(); // immortal
    assert_eq!(co.next_deadline(), Some(50));

    clock.advance(100); // t=100: f0 and the ticket are due, f2 is not
    assert_eq!(
        f0.wait_timeout(Duration::from_secs(10)),
        Some(CoordinationOutcome::Expired)
    );
    assert!(
        ticket
            .receiver
            .recv_timeout(Duration::from_secs(10))
            .is_err(),
        "the expired sync ticket disconnects"
    );
    assert!(!f2.is_complete(), "t=100 < 200: not due");

    clock.advance(100); // t=200: f2 due
    assert_eq!(
        f2.wait_timeout(Duration::from_secs(10)),
        Some(CoordinationOutcome::Expired)
    );
    assert_eq!(co.pending_count(), 1, "the deadline-less query survives");
    assert_eq!(co.next_deadline(), None);
    co.check_routing_invariants().unwrap();
    assert!(eventually(|| sweeper.swept() == 3));
    sweeper.shutdown();
}

/// One round of the expiry-vs-match race, abstracted over the
/// coordinator: `L` holds a due deadline; one thread sweeps while
/// another submits the completing partner. Exactly one terminal
/// outcome must reach `L`'s future, consistent with the end state.
fn race_future_once<F, S, E, P>(submit_async: F, submit_sync: S, expire: E, pending: P, round: u64)
where
    F: Fn() -> youtopia::CoordinationFuture,
    S: Fn() + Sync,
    E: Fn() -> Vec<youtopia::QueryId> + Sync,
    P: Fn() -> usize,
{
    let mut future = submit_async();
    let expired = std::thread::scope(|scope| {
        let sweeper = scope.spawn(&expire);
        let partner = scope.spawn(&submit_sync);
        partner.join().expect("partner thread");
        sweeper.join().expect("sweep thread")
    });

    let outcome = future
        .wait_timeout(Duration::from_secs(10))
        .expect("the race must terminate the waiter either way");
    assert!(
        future.try_take().is_none(),
        "outcome delivered exactly once"
    );
    if expired.is_empty() {
        // match won: both queries answered, nothing pending
        assert!(
            matches!(outcome, CoordinationOutcome::Answered(_)),
            "no expiry logged → the waiter got the answer (round {round})"
        );
        assert_eq!(pending(), 0, "round {round}");
    } else {
        // expiry won: the partner found nobody and stays pending
        assert_eq!(
            outcome,
            CoordinationOutcome::Expired,
            "expiry logged → the waiter saw Expired (round {round})"
        );
        assert_eq!(pending(), 1, "round {round}");
    }
}

/// Regression (satellite 2, async waiter): a deadline expiry racing a
/// match commit on the same query delivers **exactly one** terminal
/// outcome to the parked future — `Expired` xor `Answered`, each
/// consistent with the registry's end state — on both coordinators.
#[test]
fn expiry_racing_match_delivers_one_outcome_to_future() {
    for round in 0..20u64 {
        let co = Coordinator::new(flights_db());
        race_future_once(
            || {
                co.submit_sql_async_with(
                    "l",
                    &pair_sql_on("Res", "L", "R"),
                    SubmitOptions::with_deadline(10),
                )
                .unwrap()
            },
            || {
                co.submit_sql("r", &pair_sql_on("Res", "R", "L")).unwrap();
            },
            || co.expire_due(10),
            || co.pending_count(),
            round,
        );
    }
    for round in 0..20u64 {
        let co = ShardedCoordinator::new(flights_db());
        race_future_once(
            || {
                co.submit_sql_async_with(
                    "l",
                    &pair_sql_on("Res", "L", "R"),
                    SubmitOptions::with_deadline(10),
                )
                .unwrap()
            },
            || {
                co.submit_sql("r", &pair_sql_on("Res", "R", "L")).unwrap();
            },
            || co.expire_due(10),
            || co.pending_count(),
            round,
        );
        co.check_routing_invariants().unwrap();
    }
}

/// Regression (satellite 2, sync ticket): the same race observed
/// through a blocking ticket — it receives the notification xor
/// disconnects, never both, never neither.
#[test]
fn expiry_racing_match_resolves_sync_ticket_once() {
    for round in 0..40u64 {
        let co = Arc::new(ShardedCoordinator::new(flights_db()));
        let ticket = match co
            .submit_sql_with(
                "l",
                &pair_sql_on("Res", "L", "R"),
                SubmitOptions::with_deadline(10),
            )
            .unwrap()
        {
            Submission::Pending(t) => t,
            Submission::Answered(_) => panic!("no partner yet"),
        };
        let expired = std::thread::scope(|scope| {
            let sweeper = scope.spawn(|| co.expire_due(10));
            let partner = scope.spawn(|| {
                co.submit_sql("r", &pair_sql_on("Res", "R", "L")).unwrap();
            });
            partner.join().expect("partner thread");
            sweeper.join().expect("sweep thread")
        });
        match ticket.receiver.recv_timeout(Duration::from_secs(10)) {
            Ok(n) => {
                assert!(expired.is_empty(), "answered ⇒ no expiry (round {round})");
                assert_eq!(n.id, ticket.id);
                assert_eq!(co.pending_count(), 0);
                assert!(
                    ticket.receiver.try_recv().is_err(),
                    "exactly one notification (round {round})"
                );
            }
            Err(_) => {
                assert_eq!(
                    expired,
                    vec![ticket.id],
                    "disconnect ⇒ expiry (round {round})"
                );
                assert_eq!(co.pending_count(), 1);
            }
        }
        co.check_routing_invariants().unwrap();
    }
}

/// Satellite 1: churning matched pairs past the WAL byte threshold
/// triggers `checkpoint()` automatically; the log stays bounded, the
/// gauges surface through `stats()`, and recovery from the compacted
/// log reproduces the survivors (deadlines included).
#[test]
fn auto_checkpoint_bounds_the_wal_and_surfaces_gauges() {
    let clock = Arc::new(MockClock::new(1_000));
    let db = Database::with_wal(Wal::in_memory());
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris')",
    ] {
        run_sql(&db, sql).unwrap();
    }
    let config = ShardedConfig {
        auto_checkpoint_bytes: 8 * 1024,
        ..ShardedConfig::default()
    };
    let co = ShardedCoordinator::with_clock(db.clone(), config, clock.clone());

    // a survivor with a deadline, then heavy matched churn
    co.submit_sql_with(
        "s",
        &pair_sql_on("Surv", "S", "Ghost"),
        SubmitOptions::with_deadline(999_999),
    )
    .unwrap();
    clock.advance(5_000);
    for p in 0..60 {
        co.submit_sql("l", &pair_sql_on("Res", &format!("L{p}"), &format!("R{p}")))
            .unwrap();
        co.submit_sql("r", &pair_sql_on("Res", &format!("R{p}"), &format!("L{p}")))
            .unwrap();
    }

    let stats = co.stats();
    assert!(
        stats.auto_checkpoints >= 1,
        "the byte threshold must have fired (wal={} since={})",
        stats.wal_bytes,
        stats.wal_bytes_since_checkpoint
    );
    assert!(
        stats.wal_bytes_since_checkpoint < stats.wal_bytes || stats.wal_bytes_since_checkpoint == 0,
        "bytes-since-checkpoint is rebased by the checkpoint"
    );
    assert!(
        stats.checkpoint_age_millis <= 5_000,
        "age restarts at the checkpoint (got {})",
        stats.checkpoint_age_millis
    );

    // the same churn without auto-checkpointing grows a much larger log
    let control_db = Database::with_wal(Wal::in_memory());
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris')",
    ] {
        run_sql(&control_db, sql).unwrap();
    }
    let control = ShardedCoordinator::new(control_db.clone());
    control
        .submit_sql_with(
            "s",
            &pair_sql_on("Surv", "S", "Ghost"),
            SubmitOptions::with_deadline(999_999),
        )
        .unwrap();
    for p in 0..60 {
        control
            .submit_sql("l", &pair_sql_on("Res", &format!("L{p}"), &format!("R{p}")))
            .unwrap();
        control
            .submit_sql("r", &pair_sql_on("Res", &format!("R{p}"), &format!("L{p}")))
            .unwrap();
    }
    assert!(
        stats.wal_bytes < control.stats().wal_bytes,
        "auto-checkpointing must bound the log ({} vs {})",
        stats.wal_bytes,
        control.stats().wal_bytes
    );

    // recovery from the compacted log: survivor + deadline intact
    let bytes = db.wal_bytes().unwrap();
    drop(co);
    let (co2, report) = ShardedCoordinator::recover_with(
        Wal::from_bytes(bytes),
        ShardedConfig::default(),
        None,
        Arc::new(MockClock::new(10_000)),
    )
    .unwrap();
    assert_eq!(report.restored_pending, 1);
    let snap = co2.pending_snapshot();
    assert_eq!(snap[0].owner, "s");
    assert_eq!(
        snap[0].deadline,
        Some(999_999),
        "the checkpointed frame carries the deadline through"
    );
    assert_eq!(co2.answers("Res").len(), 120, "answers replayed");
}

/// A deadline submitted through the batch path is logged, survives a
/// manual checkpoint, and expires at its instant after recovery.
#[test]
fn batch_deadlines_survive_checkpoint_and_recovery() {
    let clock = Arc::new(MockClock::new(0));
    let db = Database::with_wal(Wal::in_memory());
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris')",
    ] {
        run_sql(&db, sql).unwrap();
    }
    let co = ShardedCoordinator::with_clock(db.clone(), ShardedConfig::default(), clock.clone());
    let batch: Vec<_> = (0..6u64)
        .map(|i| {
            (
                format!("u{i}"),
                youtopia::compile_sql(&pair_sql_on(
                    &format!("Res{}", i % 3),
                    &format!("U{i}"),
                    "Nobody",
                )),
                SubmitOptions::with_deadline(100 + i * 10),
            )
        })
        .collect();
    for outcome in co.submit_batch_with(batch) {
        assert!(matches!(outcome, Ok(Submission::Pending(_))));
    }
    assert_eq!(co.next_deadline(), Some(100));
    co.checkpoint().unwrap();

    let bytes = db.wal_bytes().unwrap();
    drop(co);
    // recover at t=125: deadlines 100/110/120 lapsed while down
    let (co2, report) = ShardedCoordinator::recover_with(
        Wal::from_bytes(bytes),
        ShardedConfig::default(),
        None,
        Arc::new(MockClock::new(125)),
    )
    .unwrap();
    assert_eq!(report.restored_pending, 6);
    assert_eq!(report.expired_at_recovery, 3);
    assert_eq!(co2.pending_count(), 3);
    assert_eq!(co2.next_deadline(), Some(130));
    // the remaining three expire in deadline order
    assert_eq!(co2.expire_due(140).len(), 2);
    assert_eq!(co2.expire_due(u64::MAX).len(), 1);
    assert_eq!(co2.pending_count(), 0);
    co2.check_routing_invariants().unwrap();
}
