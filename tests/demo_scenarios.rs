//! E2/E3/E5/E6 — every demonstration scenario of the paper's Section
//! 3.1, exercised end to end through the travel middle tier (the same
//! path the demo's web application uses).

use youtopia::travel::{BookingOutcome, FlightPrefs, TravelService};

fn site() -> TravelService {
    let s = TravelService::bootstrap_demo().unwrap();
    s.social()
        .import_friends("jerry", &["kramer", "elaine", "george"])
        .unwrap();
    s.social()
        .import_friends("kramer", &["elaine", "george"])
        .unwrap();
    s.social().import_friends("elaine", &["george"]).unwrap();
    s
}

#[test]
fn scenario_book_flight_with_a_friend() {
    let s = site();
    // Jerry chooses Kramer from his imported friend list (Figure 3)
    assert!(s
        .social()
        .friends_of("jerry")
        .unwrap()
        .contains(&"kramer".to_string()));
    let first = s
        .coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
        .unwrap();
    assert!(matches!(first, BookingOutcome::Waiting(_)));
    let second = s
        .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
        .unwrap();
    assert!(second.is_confirmed());
    // same flight; notified "via a Facebook message"
    assert_eq!(
        s.account_view("jerry").unwrap().flights,
        s.account_view("kramer").unwrap().flights
    );
    assert_eq!(s.notifier().inbox("jerry").len(), 1);
    assert_eq!(s.notifier().inbox("kramer").len(), 1);
}

#[test]
fn scenario_alternate_path_browse_friends_bookings_first() {
    let s = site();
    // Kramer already booked; Jerry browses flights and sees it (Fig. 4)
    s.book_direct("kramer", 123).unwrap();
    let seen = s.browse_friend_bookings("jerry").unwrap();
    assert_eq!(seen, vec![("kramer".to_string(), 123)]);
    // "If he decides he is able to choose a flight based on this
    //  information, he can go ahead and make his own booking directly."
    s.book_direct("jerry", 123).unwrap();
    assert_eq!(s.account_view("jerry").unwrap().flights, vec![123]);
    // non-friends' bookings are not visible
    s.social().register("newman").unwrap();
    assert!(s.browse_friend_bookings("newman").unwrap().is_empty());
}

#[test]
fn scenario_book_flight_and_hotel_with_a_friend() {
    let s = site();
    let first = s
        .coordinate_flight_and_hotel("jerry", "kramer", "Paris", FlightPrefs::default())
        .unwrap();
    assert!(matches!(first, BookingOutcome::Waiting(_)));
    let BookingOutcome::Confirmed(answers) = s
        .coordinate_flight_and_hotel("kramer", "jerry", "Paris", FlightPrefs::default())
        .unwrap()
    else {
        panic!("kramer completes the pair")
    };
    // one entangled query, two answer relations
    let relations: std::collections::HashSet<&str> =
        answers.iter().map(|(r, _)| r.as_str()).collect();
    assert!(relations.contains("Reservation"));
    assert!(relations.contains("HotelReservation"));

    let j = s.account_view("jerry").unwrap();
    let k = s.account_view("kramer").unwrap();
    assert_eq!(j.flights, k.flights);
    assert_eq!(j.hotels, k.hotels);
    assert_eq!(j.flights.len(), 1);
    assert_eq!(j.hotels.len(), 1);
}

#[test]
fn scenario_multiple_simultaneous_bookings() {
    let s = TravelService::bootstrap_demo().unwrap();
    let pairs: Vec<(String, String)> = (0..6).map(|i| (format!("a{i}"), format!("b{i}"))).collect();
    for (a, b) in &pairs {
        s.social().import_friends(a, &[b.as_str()]).unwrap();
    }
    // all first halves...
    for (a, b) in &pairs {
        let out = s
            .coordinate_flight(a, b, "Paris", FlightPrefs::default())
            .unwrap();
        assert!(matches!(out, BookingOutcome::Waiting(_)));
    }
    assert_eq!(s.coordinator().pending_count(), 6);
    // ...then all second halves; every pair closes, no cross-matching
    for (a, b) in &pairs {
        let out = s
            .coordinate_flight(b, a, "Paris", FlightPrefs::default())
            .unwrap();
        assert!(out.is_confirmed());
    }
    assert_eq!(s.coordinator().pending_count(), 0);
    for (a, b) in &pairs {
        assert_eq!(
            s.account_view(a).unwrap().flights,
            s.account_view(b).unwrap().flights,
            "pair ({a},{b}) coordinated"
        );
    }
}

#[test]
fn scenario_group_flight_booking() {
    let s = site();
    let group = ["jerry", "kramer", "elaine", "george"];
    for (i, user) in group.iter().enumerate() {
        let others: Vec<&str> = group.iter().filter(|u| *u != user).copied().collect();
        let out = s
            .coordinate_group_flight(user, &others, "Paris", FlightPrefs::default())
            .unwrap();
        if i + 1 < group.len() {
            assert!(matches!(out, BookingOutcome::Waiting(_)));
        } else {
            assert!(out.is_confirmed(), "the last member closes the group");
        }
    }
    let fnos: std::collections::HashSet<i64> = group
        .iter()
        .map(|u| s.account_view(u).unwrap().flights[0])
        .collect();
    assert_eq!(fnos.len(), 1, "all four on one flight");
}

#[test]
fn scenario_group_flight_and_hotel_booking() {
    let s = site();
    let trio = ["jerry", "kramer", "elaine"];
    for user in &trio {
        let others: Vec<&str> = trio.iter().filter(|u| *u != user).copied().collect();
        s.coordinate_group_flight_and_hotel(user, &others, "Paris", FlightPrefs::default())
            .unwrap();
    }
    let fnos: std::collections::HashSet<i64> = trio
        .iter()
        .map(|u| s.account_view(u).unwrap().flights[0])
        .collect();
    let hids: std::collections::HashSet<i64> = trio
        .iter()
        .map(|u| s.account_view(u).unwrap().hotels[0])
        .collect();
    assert_eq!(fnos.len(), 1);
    assert_eq!(hids.len(), 1);
}

#[test]
fn scenario_adhoc_overlapping_groups() {
    // "Jerry and Kramer coordinate on flight reservations only, whereas
    //  Kramer and Elaine coordinate on both flight and hotel."
    let s = site();
    let jerry = "SELECT 'jerry', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND ('kramer', fno) IN ANSWER Reservation CHOOSE 1";
    let kramer = "SELECT 'kramer', fno INTO ANSWER Reservation, \
         'kramer', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('jerry', fno) IN ANSWER Reservation \
         AND ('elaine', hid) IN ANSWER HotelReservation CHOOSE 1";
    let elaine = "SELECT 'elaine', fno INTO ANSWER Reservation, \
         'elaine', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('kramer', fno) IN ANSWER Reservation \
         AND ('kramer', hid) IN ANSWER HotelReservation CHOOSE 1";
    assert!(!s.coordinate_custom("jerry", jerry).unwrap().is_confirmed());
    assert!(!s
        .coordinate_custom("kramer", kramer)
        .unwrap()
        .is_confirmed());
    assert!(s
        .coordinate_custom("elaine", elaine)
        .unwrap()
        .is_confirmed());

    let j = s.account_view("jerry").unwrap();
    let k = s.account_view("kramer").unwrap();
    let e = s.account_view("elaine").unwrap();
    assert_eq!(j.flights, k.flights, "jerry-kramer flight coordination");
    assert_eq!(k.hotels, e.hotels, "kramer-elaine hotel coordination");
    assert!(
        j.hotels.is_empty(),
        "jerry's request said nothing about hotels"
    );
}

#[test]
fn inventory_accounting_is_atomic_with_matches() {
    let s = site();
    let before: i64 = s
        .search_flights("Paris", FlightPrefs::default())
        .unwrap()
        .iter()
        .map(|f| f.seats)
        .sum();
    s.coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
        .unwrap();
    s.coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
        .unwrap();
    let after: i64 = s
        .search_flights("Paris", FlightPrefs::default())
        .unwrap()
        .iter()
        .map(|f| f.seats)
        .sum();
    assert_eq!(before - after, 2, "exactly two seats were consumed");
}

#[test]
fn preferences_are_enforced_by_coordination() {
    let s = site();
    // jerry will only pay 460; kramer anything. Only flight 122 (450)
    // fits jerry's constraint, so the coordinated choice must be 122.
    s.coordinate_flight(
        "jerry",
        "kramer",
        "Paris",
        FlightPrefs {
            max_price: Some(460.0),
            day: None,
        },
    )
    .unwrap();
    let out = s
        .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
        .unwrap();
    assert!(out.is_confirmed());
    assert_eq!(s.account_view("jerry").unwrap().flights, vec![122]);
}

#[test]
fn pending_requests_appear_in_account_view_until_matched_or_cancelled() {
    let s = site();
    let BookingOutcome::Waiting(qid) = s
        .coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(s.account_view("jerry").unwrap().pending, vec![qid]);
    s.cancel("jerry", qid).unwrap();
    assert!(s.account_view("jerry").unwrap().pending.is_empty());
}
