//! Noisy-neighbor isolation (multi-tenant front-end PR, satellite 2):
//! one tenant floods the coordinator at 10x its submit quota while
//! eight well-behaved tenants run a steady pair workload. The flooder
//! must be throttled with `QuotaExceeded`, the neighbors' completion
//! latency and throughput must stay within bounds (p99 under the
//! storm < 2x the calm p99, plus a small absolute allowance for
//! scheduler jitter), and every tenant's ledger must account for every
//! submission. A second test pins the fair-drain guarantee: with
//! `fair_drain` on, batch draining interleaves tenants round-robin, so
//! a small tenant's queries register early even when a big tenant
//! fills the rest of the batch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use youtopia::storage::Wal;
use youtopia::travel::WorkloadGen;
use youtopia::{
    CoordEvent, MockClock, ShardedConfig, ShardedCoordinator, Submission, TenantQuotas,
    TenantRegistry,
};

const GOOD_TENANTS: usize = 8;
const PAIRS_PER_TENANT: usize = 30;
const RELATIONS: usize = 8;
const FLOOD_SUBMITS: usize = 2000;
const FLOOD_BURST: u64 = 200; // 10x over-submission

/// One coordinating pair for `tenant`, phase-tagged so the calm and
/// storm phases never reuse an owner (answer tuples persist across
/// phases and would otherwise satisfy a repeat query on arrival).
fn phase_pair(
    tenant: &str,
    phase: &str,
    p: usize,
) -> (
    youtopia::travel::workload::Request,
    youtopia::travel::workload::Request,
) {
    let rel = format!("Reservation{}", p % RELATIONS);
    let a = format!("{tenant}/{phase}{p}a");
    let b = format!("{tenant}/{phase}{p}b");
    (
        WorkloadGen::pair_request_on(&rel, &a, &b, "Paris"),
        WorkloadGen::pair_request_on(&rel, &b, &a, "Paris"),
    )
}

/// Runs one tenant's pair workload serially, returning each pair's
/// submit-to-answer latency.
fn run_tenant(co: &ShardedCoordinator, tenant: &str, phase: &str) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(PAIRS_PER_TENANT);
    for p in 0..PAIRS_PER_TENANT {
        let (first, closer) = phase_pair(tenant, phase, p);
        let started = Instant::now();
        let pending = co
            .submit_sql(&first.owner, &first.sql)
            .expect("first half registers");
        assert!(matches!(pending, Submission::Pending(_)));
        let answered = co
            .submit_sql(&closer.owner, &closer.sql)
            .expect("closer submits");
        assert!(
            matches!(answered, Submission::Answered(_)),
            "closer answers its pair on arrival"
        );
        latencies.push(started.elapsed());
    }
    latencies
}

fn p99(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() * 99 / 100]
}

#[test]
fn flooding_tenant_is_throttled_and_neighbors_stay_within_bounds() {
    let clock = Arc::new(MockClock::new(1_000));
    let mut generator = WorkloadGen::new(0x1507);
    let db = generator
        .build_database(100, &["Paris", "Rome"])
        .expect("database builds");
    let co = Arc::new(ShardedCoordinator::with_clock(
        db,
        ShardedConfig {
            shards: 4,
            ..Default::default()
        },
        clock.clone(),
    ));
    let tenants = TenantRegistry::with_clock(TenantQuotas::default(), clock);
    // the flooder's submit-rate bucket: a burst of FLOOD_BURST tokens
    // that never refills (rate 0 + mock clock), so of FLOOD_SUBMITS
    // submissions exactly FLOOD_BURST are admitted
    tenants.set_quotas(
        "flood",
        TenantQuotas {
            rate_burst: FLOOD_BURST,
            rate_per_sec: 0,
            ..TenantQuotas::unlimited()
        },
    );
    co.set_tenant_registry(Arc::clone(&tenants));

    // ---- calm phase: 8 tenants, no flooder ------------------------- //
    let calm: Vec<Duration> = {
        let handles: Vec<_> = (0..GOOD_TENANTS)
            .map(|t| {
                let co = Arc::clone(&co);
                std::thread::spawn(move || run_tenant(&co, &format!("good{t}"), "calm"))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("calm tenant thread"))
            .collect()
    };

    // ---- storm phase: same 8 tenants + the flooder ----------------- //
    let flooder = {
        let co = Arc::clone(&co);
        std::thread::spawn(move || {
            let requests = WorkloadGen::tenant_storm("flood", FLOOD_SUBMITS, "Paris", RELATIONS);
            let mut admitted = 0usize;
            let mut rejected = 0usize;
            for request in &requests {
                match co.submit_sql(&request.owner, &request.sql) {
                    Ok(Submission::Pending(_)) => admitted += 1,
                    Ok(Submission::Answered(_)) => panic!("flood queries never match"),
                    Err(youtopia::core::CoreError::QuotaExceeded { .. }) => rejected += 1,
                    Err(e) => panic!("unexpected flood failure: {e}"),
                }
            }
            (admitted, rejected)
        })
    };
    let storm: Vec<Duration> = {
        let handles: Vec<_> = (0..GOOD_TENANTS)
            .map(|t| {
                let co = Arc::clone(&co);
                std::thread::spawn(move || run_tenant(&co, &format!("good{t}"), "storm"))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm tenant thread"))
            .collect()
    };
    let (admitted, rejected) = flooder.join().expect("flooder thread");

    // the flooder was throttled to its burst, the rest rejected
    assert_eq!(admitted, FLOOD_BURST as usize);
    assert_eq!(rejected, FLOOD_SUBMITS - FLOOD_BURST as usize);
    assert_eq!(co.stats().rejected_quota, rejected as u64);

    // every good tenant completed every pair — zero lost completions
    assert_eq!(calm.len(), GOOD_TENANTS * PAIRS_PER_TENANT);
    assert_eq!(storm.len(), GOOD_TENANTS * PAIRS_PER_TENANT);

    // noisy-neighbor bound: storm p99 < 2x calm p99 (+ a small
    // absolute allowance — calm latencies are tens of microseconds, so
    // a pure ratio would measure scheduler jitter, not interference)
    let (calm_p99, storm_p99) = (p99(calm), p99(storm));
    assert!(
        storm_p99 < calm_p99 * 2 + Duration::from_millis(25),
        "noisy neighbor degraded p99 too far: calm {calm_p99:?}, storm {storm_p99:?}"
    );

    // per-tenant ledgers account for every outcome
    for t in 0..GOOD_TENANTS {
        let stats = tenants
            .tenant_stats(&format!("good{t}"))
            .expect("good tenant ledger");
        assert_eq!(stats.submitted, 2 * 2 * PAIRS_PER_TENANT as u64);
        assert_eq!(stats.answered, stats.submitted, "every pair answered");
        assert_eq!(stats.rejected, 0, "well-behaved tenants see no quota");
        assert_eq!(stats.in_flight, 0);
    }
    let flood = tenants.tenant_stats("flood").expect("flood ledger");
    assert_eq!(flood.submitted, FLOOD_BURST);
    assert_eq!(
        flood.rejected,
        (FLOOD_SUBMITS - FLOOD_BURST as usize) as u64
    );
    assert_eq!(flood.in_flight as u64, FLOOD_BURST, "admitted floods pend");
    assert_eq!(
        flood.submitted,
        flood.answered + flood.cancelled + flood.expired + flood.aborted + flood.in_flight as u64,
        "flood ledger closes"
    );
}

/// With `fair_drain` on, a batch holding 30 queries from a big tenant
/// and 3 from a small one registers them round-robin — the small
/// tenant's queries land at positions 1, 3, 5 of the drain instead of
/// queueing behind the big tenant's 30.
#[test]
fn fair_drain_interleaves_tenants_round_robin() {
    let registration_order = |fair: bool| -> Vec<String> {
        let mut generator = WorkloadGen::new(0xFA12);
        let db = generator
            .build_database_with_wal(50, &["Paris"], Wal::in_memory())
            .expect("database builds");
        let co = ShardedCoordinator::with_config(
            db.clone(),
            ShardedConfig {
                shards: 1, // one shard = one drain bucket
                fair_drain: fair,
                ..Default::default()
            },
        );
        let mut batch: Vec<(String, String)> = Vec::new();
        for i in 0..30 {
            let r = WorkloadGen::pair_request_on(
                "Reservation0",
                &format!("big/u{i}"),
                &format!("nobody{i}"),
                "Paris",
            );
            batch.push((r.owner, r.sql));
        }
        for i in 0..3 {
            let r = WorkloadGen::pair_request_on(
                "Reservation0",
                &format!("small/u{i}"),
                &format!("noone{i}"),
                "Paris",
            );
            batch.push((r.owner, r.sql));
        }
        for outcome in co.submit_batch_sql(&batch) {
            outcome.expect("batch entries register");
        }
        let bytes = db.wal_bytes().expect("WAL-backed database");
        Wal::from_bytes(bytes)
            .replay_records()
            .expect("log replays")
            .into_iter()
            .filter_map(|record| record.coordination())
            .filter_map(|payload| match CoordEvent::decode(&payload) {
                Ok(CoordEvent::QueryRegistered { owner, .. }) => Some(owner),
                _ => None,
            })
            .collect()
    };

    let fair = registration_order(true);
    assert_eq!(fair.len(), 33);
    let small_positions: Vec<usize> = fair
        .iter()
        .enumerate()
        .filter(|(_, owner)| owner.starts_with("small/"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        small_positions,
        vec![1, 3, 5],
        "fair drain alternates tenants until the small tenant drains"
    );
    // per-tenant FIFO is preserved under the interleave
    let small_order: Vec<&String> = fair
        .iter()
        .filter(|owner| owner.starts_with("small/"))
        .collect();
    assert_eq!(small_order, vec!["small/u0", "small/u1", "small/u2"]);

    // and with fair_drain off, the small tenant queues behind all 30
    let unfair = registration_order(false);
    let small_positions: Vec<usize> = unfair
        .iter()
        .enumerate()
        .filter(|(_, owner)| owner.starts_with("small/"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(small_positions, vec![30, 31, 32]);
}
