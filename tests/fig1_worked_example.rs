//! E1 — the paper's worked example (Section 2.1, Figure 1), verified
//! exactly: the Kramer/Jerry queries over the four-flight database must
//! coordinate on one of the Paris flights (122, 123, 134) and never on
//! Rome's 136; both users receive the same flight number; the answer
//! relation satisfies both postconditions.

use youtopia::{run_sql, Coordinator, Database, StatementOutcome, Submission};

fn fig1_database() -> Database {
    let db = Database::new();
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
         (136, 'Rome')",
        "CREATE TABLE Airlines (fno INT PRIMARY KEY, airline STRING NOT NULL)",
        "INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), (134, 'Lufthansa'), \
         (136, 'Alitalia')",
    ] {
        run_sql(&db, sql).unwrap();
    }
    db
}

const KRAMER: &str = "SELECT 'Kramer', fno INTO ANSWER Reservation \
     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
     AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1";

const JERRY: &str = "SELECT 'Jerry', fno INTO ANSWER Reservation \
     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
     AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1";

#[test]
fn kramer_alone_is_registered_not_rejected() {
    let co = Coordinator::new(fig1_database());
    // "Clearly, if this query is evaluated by itself, the answer
    //  constraint cannot be satisfied. However, the query is not
    //  rejected, but rather gets registered in the system."
    let sub = co.submit_sql("kramer", KRAMER).unwrap();
    assert!(matches!(sub, Submission::Pending(_)));
    assert_eq!(co.pending_count(), 1);
    assert!(co.answers("Reservation").is_empty());
}

#[test]
fn symmetric_queries_answer_jointly_with_shared_fno() {
    let co = Coordinator::new(fig1_database());
    let Submission::Pending(kramer_ticket) = co.submit_sql("kramer", KRAMER).unwrap() else {
        panic!("kramer waits");
    };
    let jerry = co
        .submit_sql("jerry", JERRY)
        .unwrap()
        .answered()
        .expect("joint answer");
    let kramer = kramer_ticket.receiver.try_recv().expect("kramer notified");

    let j_fno = jerry.answers[0].1.values()[1].as_int().unwrap();
    let k_fno = kramer.answers[0].1.values()[1].as_int().unwrap();
    assert_eq!(j_fno, k_fno, "coordinated flight number choice");
    assert!([122, 123, 134].contains(&j_fno), "a Paris flight");
    assert_ne!(j_fno, 136, "never Rome's flight");
    assert_eq!(jerry.answers[0].1.values()[0].as_str(), Some("Jerry"));
    assert_eq!(kramer.answers[0].1.values()[0].as_str(), Some("Kramer"));
}

#[test]
fn figure_1b_mutual_constraint_satisfaction_in_the_answer_relation() {
    let co = Coordinator::new(fig1_database());
    co.submit_sql("kramer", KRAMER).unwrap();
    co.submit_sql("jerry", JERRY).unwrap();

    // Figure 1(b): R('Kramer', f) and R('Jerry', f) both present, with
    // the same f — each tuple satisfies the other query's constraint.
    let answers = co.answers("Reservation");
    assert_eq!(answers.len(), 2);
    let find = |name: &str| {
        answers
            .iter()
            .find(|t| t.values()[0].as_str() == Some(name))
            .unwrap_or_else(|| panic!("{name} has an answer"))
            .values()[1]
            .clone()
    };
    assert_eq!(find("Kramer"), find("Jerry"));
}

#[test]
fn each_query_receives_exactly_one_answer_tuple() {
    // "each query only receives one answer tuple, as indicated by the
    //  CHOOSE 1 clause"
    let co = Coordinator::new(fig1_database());
    co.submit_sql("kramer", KRAMER).unwrap();
    let jerry = co.submit_sql("jerry", JERRY).unwrap().answered().unwrap();
    assert_eq!(jerry.answers.len(), 1);
    assert_eq!(co.answers("Reservation").len(), 2); // one per query
}

#[test]
fn the_answer_relation_is_queryable_with_plain_sql() {
    let co = Coordinator::new(fig1_database());
    co.submit_sql("kramer", KRAMER).unwrap();
    co.submit_sql("jerry", JERRY).unwrap();
    let StatementOutcome::Rows(rs) = run_sql(
        co.db(),
        "SELECT COUNT(*) FROM Reservation r JOIN Flights f ON r.c1 = f.fno \
         WHERE f.dest = 'Paris'",
    )
    .unwrap() else {
        panic!()
    };
    assert_eq!(rs.rows[0].values()[0].as_int(), Some(2));
}

#[test]
fn nondeterministic_choice_covers_multiple_flights() {
    // "the system nondeterministically chooses either flight 122 or 123"
    // (or 134 with our seat-agnostic Figure 1 data): across seeds, more
    // than one flight must be chosen, and only Paris flights ever.
    let mut seen = std::collections::HashSet::new();
    for seed in 0..48u64 {
        let config = youtopia::CoordinatorConfig {
            seed,
            ..Default::default()
        };
        let co = Coordinator::with_config(fig1_database(), config);
        co.submit_sql("kramer", KRAMER).unwrap();
        let jerry = co.submit_sql("jerry", JERRY).unwrap().answered().unwrap();
        let fno = jerry.answers[0].1.values()[1].as_int().unwrap();
        assert!([122, 123, 134].contains(&fno));
        seen.insert(fno);
    }
    assert!(
        seen.len() >= 2,
        "CHOOSE 1 must be nondeterministic, saw only {seen:?}"
    );
}
