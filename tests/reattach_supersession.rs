//! Regression test (multi-tenant net PR, satellite 4): two concurrent
//! whole-owner reattaches must never **split ownership** — end up with
//! each caller holding live waiters for a subset of the owner's
//! queries.
//!
//! `ShardedCoordinator::reattach_async` walks the shards one lock at a
//! time. Unserialized, two concurrent calls could interleave: caller A
//! re-arms shard 0, B overtakes A on shard 0 *and* shard 1, A then
//! re-arms shard 2 — leaving A's handles live on shard 2 and B's on
//! shards 0–1. Both sessions would believe they own the owner's
//! queries, and each would receive a disjoint subset of the answers —
//! exactly the bug a reconnecting network client would hit when its
//! retry races its own timed-out first attempt. The coordinator closes
//! the race with a whole-owner reattach gate: the loser's entire
//! handle set resolves `Superseded`, so after any number of concurrent
//! reattaches every query has exactly **one** live handle and all live
//! handles belong to the same caller.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use youtopia::travel::WorkloadGen;
use youtopia::{ShardedConfig, ShardedCoordinator};

const OWNER: &str = "dup/owner";
const QUERIES: usize = 32;
const RELATIONS: usize = 8;
const SHARDS: usize = 8;
const ROUNDS: usize = 50;

#[test]
fn concurrent_reattaches_cannot_split_ownership() {
    let mut generator = WorkloadGen::new(0xD0D0);
    let db = generator.build_database(60, &["Paris"]).unwrap();
    let co = Arc::new(ShardedCoordinator::with_config(
        db,
        ShardedConfig {
            shards: SHARDS,
            ..Default::default()
        },
    ));

    // one owner, 32 never-matching pending queries spread across 8
    // relation families (= across all 8 shards)
    let mut pending = Vec::new();
    for i in 0..QUERIES {
        let sql = WorkloadGen::pair_request_on(
            &format!("Reservation{}", i % RELATIONS),
            &format!("dupname{i}"),
            &format!("ghost{i}"),
            "Paris",
        )
        .sql;
        pending.push(
            co.submit_sql_async(OWNER, &sql)
                .expect("query registers pending"),
        );
    }
    assert!(pending.iter().all(|f| !f.is_complete()));
    let all_qids: Vec<u64> = pending.iter().map(|f| f.id().0).collect();

    // `previous` holds the handles a still-connected (or zombie)
    // session would hold; each round it is superseded wholesale
    let mut previous = pending;
    for round in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(2));
        let (a, b) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let co = Arc::clone(&co);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        co.reattach_async(OWNER)
                    })
                })
                .collect();
            let mut results = handles.into_iter().map(|h| h.join().expect("caller"));
            (results.next().unwrap(), results.next().unwrap())
        });

        // both callers reattached the full owner set
        assert_eq!(a.len(), QUERIES, "round {round}: caller a sees all queries");
        assert_eq!(b.len(), QUERIES, "round {round}: caller b sees all queries");

        // the round's handles: every prior handle must now be dead
        for f in &previous {
            assert!(
                f.is_complete(),
                "round {round}: a pre-reattach handle stayed live"
            );
        }

        // exactly one live handle per query across both callers, and
        // every live handle belongs to the same caller — the race
        // this test pins would leave a mixed split here
        let mut live_callers: HashMap<u64, Vec<usize>> = HashMap::new();
        for (caller, futures) in [(0usize, &a), (1usize, &b)] {
            for f in futures {
                if !f.is_complete() {
                    live_callers.entry(f.id().0).or_default().push(caller);
                }
            }
        }
        for &qid in &all_qids {
            let callers = live_callers
                .get(&qid)
                .unwrap_or_else(|| panic!("round {round}: q{qid} has no live handle"));
            assert_eq!(
                callers.len(),
                1,
                "round {round}: q{qid} has {} live handles",
                callers.len()
            );
        }
        let winners: std::collections::HashSet<usize> =
            live_callers.values().flatten().copied().collect();
        assert_eq!(
            winners.len(),
            1,
            "round {round}: live handles split between both reattach callers"
        );

        // the winner's handles become the next round's zombies
        let winner = *winners.iter().next().unwrap();
        previous = if winner == 0 { a } else { b };
    }

    // the registry itself never wobbled: all queries still pending
    assert_eq!(co.pending_count(), QUERIES);
    co.check_routing_invariants().unwrap();
}
