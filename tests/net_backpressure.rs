//! Slow-peer isolation under the readiness reactor.
//!
//! The threaded front-end had a latent stall: completion pushes went
//! through a per-session `Mutex<TcpStream>` with blocking writes, so
//! one peer that stopped reading could wedge the single event loop (and
//! with it every session's deliveries) once its kernel send buffer
//! filled. The reactor's contract is the opposite: writes never block,
//! per-connection outbound queues are bounded, and a peer that overruns
//! its queue is shed with a best-effort `Backpressure` close.
//!
//! This test runs one deliberately non-reading client against 64
//! healthy sessions doing request/response round trips and asserts
//! both halves of the contract: the healthy sessions' p99 stays in the
//! same regime while the flood is in progress, and the stalled peer is
//! disconnected (visible in `ServerStats::slow_peer_disconnects`).

use std::io::Write;
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use youtopia::net::{FrameReader, Outcome, ReadEvent, Request, Response, SubmitOutcome};
use youtopia::{
    Clock, MockClock, NetClient, NetServer, ServerConfig, ShardedCoordinator, SystemClock,
    TenantQuotas, TenantRegistry, WorkloadGen,
};

const HEALTHY: usize = 64;
const OPS_PER_PHASE: usize = 20;
const FLOOD_FRAMES: usize = 12_000;

/// Shrink a socket's receive buffer so the flood's replies can't hide
/// in kernel buffering on the peer side (best-effort; the kernel
/// clamps).
fn shrink_rcvbuf(stream: &TcpStream, bytes: i32) {
    unsafe {
        libc::setsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_RCVBUF,
            (&bytes as *const i32).cast(),
            std::mem::size_of::<i32>() as libc::socklen_t,
        );
    }
}

fn spawn_server(config: ServerConfig) -> (NetServer, std::net::SocketAddr) {
    let mut generator = WorkloadGen::new(0x5EED);
    let db = generator
        .build_database(50, &["Paris", "Rome"])
        .expect("database builds");
    let co = Arc::new(ShardedCoordinator::new(db));
    let tenants = TenantRegistry::new(TenantQuotas::default());
    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    let server = NetServer::spawn(co, tenants, config, clock).expect("server binds");
    let addr = server.local_addr();
    (server, addr)
}

/// One timed request/response round trip per healthy session; returns
/// the latencies.
fn round_trips(clients: &mut [NetClient]) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(clients.len() * OPS_PER_PHASE);
    for _ in 0..OPS_PER_PHASE {
        for client in clients.iter_mut() {
            let started = Instant::now();
            client.stats().expect("healthy round trip");
            latencies.push(started.elapsed());
        }
    }
    latencies
}

fn p99(latencies: &mut [Duration]) -> Duration {
    latencies.sort();
    latencies[latencies.len() * 99 / 100]
}

#[test]
fn slow_peer_is_shed_and_healthy_sessions_unaffected() {
    let (server, addr) = spawn_server(ServerConfig {
        // shrink both the kernel send buffer and the outbound queue so
        // the overflow happens after tens of KiB, not megabytes
        send_buffer_bytes: Some(4 * 1024),
        max_outbound_bytes: 32 * 1024,
        ..ServerConfig::default()
    });

    let mut healthy: Vec<NetClient> = (0..HEALTHY)
        .map(|i| {
            let mut client = NetClient::connect(addr).expect("connect healthy");
            client.hello(&format!("good/s{i}")).expect("hello healthy");
            client
        })
        .collect();

    // ---- calm baseline --------------------------------------------- //
    let mut calm = round_trips(&mut healthy);
    let calm_p99 = p99(&mut calm);

    // ---- the slow peer: handshake, then flood without reading ------ //
    let mut peer = TcpStream::connect(addr).expect("connect slow peer");
    shrink_rcvbuf(&peer, 4 * 1024);
    peer.set_write_timeout(Some(Duration::from_secs(5))).ok();
    let hello = Request::Hello {
        version: youtopia::net::PROTOCOL_VERSION,
        owner: "slow/peer".into(),
    };
    peer.write_all(&youtopia::net::encode_frame(&hello.encode()))
        .expect("peer handshake");
    {
        let mut reader = FrameReader::new(peer.try_clone().expect("clone peer"));
        match reader.read_event().expect("welcome") {
            ReadEvent::Frame(payload) => {
                assert!(matches!(
                    Response::decode(&payload).expect("welcome decodes"),
                    Response::Welcome { .. }
                ));
            }
            other => panic!("expected Welcome, got {other:?}"),
        }
    }
    // keep the socket open from this side even after the flood thread
    // finishes writing — otherwise the server sees a reset and closes
    // the connection before its outbound queue can overflow
    let peer_keepalive = peer.try_clone().expect("clone peer");
    let flood = std::thread::spawn(move || {
        // every Stats request earns a reply the peer never reads; the
        // write fails once the server sheds the connection
        let frame = youtopia::net::encode_frame(&Request::Stats { corr: 1 }.encode());
        for _ in 0..FLOOD_FRAMES {
            if peer.write_all(&frame).is_err() {
                break;
            }
        }
    });

    // ---- healthy traffic while the flood is in progress ------------ //
    let mut stalled = round_trips(&mut healthy);
    let stalled_p99 = p99(&mut stalled);

    // coordination still flows end to end: a pair posed across two of
    // the healthy sessions is answered while the peer floods
    let sql_a = WorkloadGen::pair_request_on("Reservation0", "good/s0", "good/s1", "Paris").sql;
    let sql_b = WorkloadGen::pair_request_on("Reservation0", "good/s1", "good/s0", "Paris").sql;
    let first = healthy[0].submit(&sql_a, None).expect("submit a");
    let second = healthy[1].submit(&sql_b, None).expect("submit b");
    for (idx, submitted) in [(0usize, first), (1usize, second)] {
        match submitted {
            SubmitOutcome::Done(_, Outcome::Answered { .. }) => {}
            SubmitOutcome::Done(qid, other) => panic!("q{qid} resolved {other:?}"),
            SubmitOutcome::Pending(qid) => loop {
                match healthy[idx]
                    .next_event(Duration::from_secs(10))
                    .expect("push stream healthy")
                {
                    Some((got, Outcome::Answered { .. })) if got == qid => break,
                    Some(_) => continue,
                    None => panic!("no completion push for q{qid} during flood"),
                }
            },
        }
    }

    flood.join().expect("flood thread");

    // ---- the peer was shed, the healthy world never noticed -------- //
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().slow_peer_disconnects == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.stats();
    assert!(
        stats.slow_peer_disconnects >= 1,
        "non-reading peer was never shed: {stats:?}"
    );
    // generous CI bound: same regime, not a wedge — the old design
    // stalled deliveries indefinitely here
    let bound = (calm_p99 * 4).max(Duration::from_millis(250));
    assert!(
        stalled_p99 <= bound,
        "healthy p99 degraded during flood: calm {calm_p99:?}, stalled {stalled_p99:?}"
    );

    // the shed connection's queue was released with it
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().queued_bytes > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.stats().queued_bytes,
        0,
        "queued bytes leaked after the shed"
    );

    drop(peer_keepalive);
    for client in &mut healthy {
        client.bye().ok();
    }
    drop(server);
}

/// The backpressure cap is per connection: a burst of sessions each
/// under the cap coexists with the accounting staying exact.
#[test]
fn queue_depth_accounting_settles_to_zero() {
    let (server, addr) = spawn_server(ServerConfig::default());
    let mut clients: Vec<NetClient> = (0..16)
        .map(|i| {
            let mut client = NetClient::connect(addr).expect("connect");
            client.hello(&format!("depth/s{i}")).expect("hello");
            client
        })
        .collect();
    for client in &mut clients {
        for _ in 0..8 {
            client.stats().expect("stats round trip");
        }
    }
    // the last reply's accounting races the client's read by a few
    // instructions; give the reactor a beat to settle
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().queued_bytes > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.active, 16);
    assert_eq!(stats.accepted, 16);
    assert_eq!(
        stats.queued_bytes, 0,
        "fully drained sessions must report an empty queue"
    );
    assert_eq!(stats.slow_peer_disconnects, 0);
    drop(clients);
    drop(server);
}

/// A mock-clock server still sheds a slow peer — backpressure is
/// byte-driven, not time-driven.
#[test]
fn shed_is_independent_of_the_clock() {
    let mut generator = WorkloadGen::new(7);
    let db = generator
        .build_database(20, &["Paris"])
        .expect("database builds");
    let co = Arc::new(ShardedCoordinator::new(db));
    let tenants = TenantRegistry::new(TenantQuotas::default());
    let clock: Arc<dyn Clock> = Arc::new(MockClock::new(1_000));
    let server = NetServer::spawn(
        co,
        tenants,
        ServerConfig {
            send_buffer_bytes: Some(4 * 1024),
            max_outbound_bytes: 16 * 1024,
            ..ServerConfig::default()
        },
        clock,
    )
    .expect("server binds");
    let addr = server.local_addr();

    let mut peer = TcpStream::connect(addr).expect("connect");
    shrink_rcvbuf(&peer, 4 * 1024);
    peer.set_write_timeout(Some(Duration::from_secs(5))).ok();
    let hello = Request::Hello {
        version: youtopia::net::PROTOCOL_VERSION,
        owner: "slow/mock".into(),
    };
    peer.write_all(&youtopia::net::encode_frame(&hello.encode()))
        .expect("handshake");
    let frame = youtopia::net::encode_frame(&Request::Stats { corr: 1 }.encode());
    for _ in 0..FLOOD_FRAMES {
        if peer.write_all(&frame).is_err() {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().slow_peer_disconnects == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.stats().slow_peer_disconnects >= 1,
        "mock-clock server failed to shed the flood: {:?}",
        server.stats()
    );
    drop(server);
}
