//! Property tests for the network wire protocol (multi-tenant
//! front-end PR, satellite 1): encode/decode round-trip over
//! randomized requests and responses — every frame variant, answers
//! with real tuples included — plus a malformed-input corpus:
//! truncated frames, flipped checksum/payload bits, oversized length
//! prefixes, unknown tags, and trailing garbage must all come back as
//! clean `NetError`s, never a panic, and an attacker-controlled length
//! can never drive an allocation (the reader only buffers bytes it
//! actually received).

use proptest::prelude::*;

use youtopia::net::{
    encode_frame, split_frame, ErrorCode, FrameBuf, FrameReader, Outcome, ReadEvent, Request,
    Response, TenantSummary, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use youtopia::storage::{Tuple, Value};
use youtopia::AuditRecord;

fn arb_request() -> impl Strategy<Value = Request> {
    let owner = "[a-z]{1,8}(/[a-z0-9]{1,8})?";
    let sql = "[ -~]{0,60}";
    let deadline = (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v));
    prop_oneof![
        owner.prop_map(|owner| Request::Hello {
            version: PROTOCOL_VERSION,
            owner,
        }),
        (owner, any::<u64>()).prop_map(|(owner, session)| Request::Resume {
            version: PROTOCOL_VERSION,
            owner,
            session,
        }),
        (any::<u64>(), deadline, sql).prop_map(|(corr, deadline, sql)| Request::Submit {
            corr,
            deadline,
            sql,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(corr, qid)| Request::Cancel { corr, qid }),
        any::<u64>().prop_map(|corr| Request::Stats { corr }),
        any::<u64>().prop_map(|corr| Request::Bye { corr }),
        (any::<u64>(), "[a-z]{1,8}", any::<u32>()).prop_map(|(corr, tenant, limit)| {
            Request::AuditQuery {
                corr,
                tenant,
                limit,
            }
        }),
    ]
}

fn arb_audit_row() -> impl Strategy<Value = AuditRecord> {
    let opt_u64 = (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v));
    (
        (
            any::<u64>(),
            "[a-z]{1,8}",
            "[a-z/]{1,16}",
            "(submit|match|cancel|expire)",
            any::<u64>(),
        ),
        (
            opt_u64.clone(),
            "(pending|answered|cancelled|expired)",
            opt_u64,
            any::<u32>(),
        ),
    )
        .prop_map(
            |((qid, tenant, owner, kind, submitted_at), (resolved_at, outcome, latency, shard))| {
                AuditRecord {
                    qid,
                    tenant,
                    owner,
                    kind,
                    submitted_at,
                    resolved_at,
                    outcome,
                    latency_micros: latency,
                    shard,
                }
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    let answer = ("[A-Za-z]{1,10}", any::<i64>(), "[ -~]{0,16}").prop_map(|(rel, n, s)| {
        (
            rel,
            Tuple::new(vec![Value::from(s.as_str()), Value::Int(n)]),
        )
    });
    prop_oneof![
        proptest::collection::vec(answer, 0..4).prop_map(|answers| Outcome::Answered { answers }),
        Just(Outcome::Cancelled),
        Just(Outcome::Expired),
        Just(Outcome::Superseded),
    ]
}

fn arb_summary() -> impl Strategy<Value = TenantSummary> {
    proptest::collection::vec(any::<u64>(), 8).prop_map(|v| TenantSummary {
        submitted: v[0],
        answered: v[1],
        cancelled: v[2],
        expired: v[3],
        aborted: v[4],
        rejected: v[5],
        in_flight: v[6],
        standing: v[7],
    })
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Protocol),
        Just(ErrorCode::Quota),
        Just(ErrorCode::Rejected),
        Just(ErrorCode::UnknownQuery),
        Just(ErrorCode::BadSession),
        Just(ErrorCode::Internal),
        Just(ErrorCode::Backpressure),
        Just(ErrorCode::Forbidden),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), any::<u32>()).prop_map(|(session, reattached)| Response::Welcome {
            session,
            reattached,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(corr, qid)| Response::Accepted { corr, qid }),
        (any::<u64>(), any::<u64>(), arb_outcome())
            .prop_map(|(corr, qid, outcome)| { Response::Done { corr, qid, outcome } }),
        any::<u64>().prop_map(|corr| Response::CancelOk { corr }),
        (any::<u64>(), any::<bool>(), arb_summary()).prop_map(|(corr, found, tenant)| {
            Response::StatsReply {
                corr,
                found,
                tenant,
            }
        }),
        any::<u64>().prop_map(|corr| Response::ByeOk { corr }),
        (any::<u64>(), arb_error_code(), "[ -~]{0,40}").prop_map(|(corr, code, message)| {
            Response::Error {
                corr,
                code,
                message,
            }
        }),
        (
            any::<u64>(),
            proptest::collection::vec(arb_audit_row(), 0..5),
        )
            .prop_map(|(corr, rows)| Response::AuditReply { corr, rows }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request round-trips through frame + payload codec.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let framed = encode_frame(&req.encode());
        let (payload, consumed) = split_frame(&framed).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    /// Every response round-trips through frame + payload codec.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let framed = encode_frame(&resp.encode());
        let (payload, consumed) = split_frame(&framed).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    /// A truncated frame is never an error — it is "wait for more
    /// bytes" — while any single flipped bit in a complete frame's
    /// checksum or payload is a clean `Err`, and decoding the decoded
    /// payload with trailing garbage appended fails cleanly too.
    #[test]
    fn corruption_is_clean(req in arb_request(), cut in any::<usize>(),
                           flip in any::<usize>()) {
        let framed = encode_frame(&req.encode());

        // truncation: every proper prefix is incomplete, not an error
        let cut = cut % framed.len();
        prop_assert!(matches!(split_frame(&framed[..cut]), Ok(None)));

        // bit flip anywhere past the length prefix: checksum catches it
        let mut corrupt = framed.clone();
        let at = 4 + flip % (corrupt.len() - 4);
        corrupt[at] ^= 0x01;
        prop_assert!(split_frame(&corrupt).is_err());

        // trailing garbage inside the payload: strict decode rejects
        let mut padded = req.encode();
        padded.push(0xAA);
        prop_assert!(Request::decode(&padded).is_err());
    }

    /// Unknown tags and arbitrary byte soup never panic the decoders.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = split_frame(&bytes);
    }

    /// Truncating a valid *payload* (not the frame) at any point is a
    /// clean decode error — no tag leaves a partially-read request.
    #[test]
    fn truncated_payload_is_clean(req in arb_request(), cut in any::<usize>()) {
        let payload = req.encode();
        let cut = cut % payload.len();
        if cut < payload.len() {
            prop_assert!(Request::decode(&payload[..cut]).is_err());
        }
    }

    /// The push-driven accumulator the reactor feeds from nonblocking
    /// reads yields exactly the original frame sequence no matter how
    /// the byte stream is chunked — the arrival pattern of readiness
    /// events must be semantically invisible.
    #[test]
    fn framebuf_reassembles_any_chunking(
        reqs in proptest::collection::vec(arb_request(), 1..6),
        cuts in proptest::collection::vec(1usize..24, 0..48),
    ) {
        let mut wire = Vec::new();
        for req in &reqs {
            wire.extend_from_slice(&encode_frame(&req.encode()));
        }

        let mut buf = FrameBuf::new();
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        let mut cuts = cuts.into_iter();
        while offset < wire.len() {
            let take = cuts.next().unwrap_or(usize::MAX).min(wire.len() - offset);
            buf.push(&wire[offset..offset + take]);
            offset += take;
            while let Some(payload) = buf.next_frame().unwrap() {
                decoded.push(Request::decode(&payload).unwrap());
            }
        }
        prop_assert!(!buf.has_partial(), "all bytes consumed at a boundary");
        prop_assert_eq!(decoded, reqs);
    }
}

/// An oversized length prefix is rejected before any allocation: the
/// reader is handed a header claiming 4 GiB and must fail after
/// buffering only the 8 header bytes.
#[test]
fn oversized_length_rejected_without_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.extend_from_slice(&0u32.to_be_bytes());
    assert!(split_frame(&bytes).is_err());

    // just over the cap is rejected too; exactly at the cap is not
    let mut over = Vec::new();
    over.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_be_bytes());
    over.extend_from_slice(&0u32.to_be_bytes());
    assert!(split_frame(&over).is_err());

    let mut at = Vec::new();
    at.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
    at.extend_from_slice(&0u32.to_be_bytes());
    assert!(
        matches!(split_frame(&at), Ok(None)),
        "at-cap frame waits for payload"
    );

    // streaming reader over the hostile header: clean error, and its
    // buffer holds only what the wire actually delivered
    let mut reader = FrameReader::new(&bytes[..]);
    assert!(reader.read_event().is_err());
}

/// A reader fed one byte at a time still reassembles frames, and EOF
/// mid-frame is an error while EOF at a boundary is clean.
#[test]
fn incremental_reads_reassemble() {
    struct OneByte<'a>(&'a [u8]);
    impl std::io::Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    let a = Request::Stats { corr: 7 };
    let b = Request::Bye { corr: 8 };
    let mut wire = encode_frame(&a.encode());
    wire.extend_from_slice(&encode_frame(&b.encode()));

    let mut reader = FrameReader::new(OneByte(&wire));
    for want in [a, b] {
        match reader.read_event().unwrap() {
            ReadEvent::Frame(payload) => assert_eq!(Request::decode(&payload).unwrap(), want),
            other => panic!("expected frame, got {other:?}"),
        }
    }
    assert!(matches!(reader.read_event().unwrap(), ReadEvent::Eof));

    // EOF mid-frame is a protocol error
    let frame = encode_frame(&Request::Stats { corr: 9 }.encode());
    let mut reader = FrameReader::new(&frame[..frame.len() - 1]);
    assert!(reader.read_event().is_err());
}
