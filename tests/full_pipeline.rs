//! E8 + cross-crate integration: SQL text in, coordinated answers out,
//! across every layer (lexer → parser → compiler → safety → registry →
//! matcher → executor → storage → WAL), plus the admin console and the
//! Figure 2 architecture path.

use youtopia::travel::{AdminConsole, TravelService};
use youtopia::{run_sql, Coordinator, Database, StatementOutcome};

#[test]
fn figure2_architecture_path() {
    // middle tier generates entangled SQL -> query compiler -> IR ->
    // coordination component -> execution engine -> database
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(&db, "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris')").unwrap();
    let co = Coordinator::new(db.clone());

    // The compiler stage is observable: pending queries expose their IR.
    co.submit_sql(
        "kramer",
        "SELECT 'K', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('J', fno) IN ANSWER R CHOOSE 1",
    )
    .unwrap();
    let snap = co.pending_snapshot();
    assert_eq!(snap.len(), 1);
    assert!(
        snap[0].ir.contains("R('K', ?q1.fno)"),
        "IR visible: {}",
        snap[0].ir
    );
    assert!(
        snap[0].ir.contains("requires: R('J', ?q1.fno)"),
        "{}",
        snap[0].ir
    );

    // Coordination accesses regular tables (membership evaluation) and
    // pending-query state; execution applies the answers.
    co.submit_sql(
        "jerry",
        "SELECT 'J', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('K', fno) IN ANSWER R CHOOSE 1",
    )
    .unwrap();
    assert_eq!(co.answers("R").len(), 2);
}

#[test]
fn admin_console_covers_sql_and_entangled_input() {
    let site = TravelService::bootstrap_demo().unwrap();
    let console = AdminConsole::new(site.db().clone(), site.coordinator().clone());

    // regular SQL
    let out = console.execute("SELECT COUNT(*) FROM Flights");
    assert!(out.contains("7"), "{out}");

    // entangled input through the same command line
    let out = console.execute_as(
        "kramer",
        "SELECT 'Kramer', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
    );
    assert!(out.contains("registered"), "{out}");

    // the special inspection mode
    let pending = console.execute("SHOW PENDING");
    assert!(pending.contains("owner=kramer"), "{pending}");
    assert!(pending.contains("ir:"), "{pending}");

    // completing the pair through the console
    let out = console.execute_as(
        "jerry",
        "SELECT 'Jerry', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
    );
    assert!(out.contains("answered immediately"), "{out}");
    assert_eq!(
        console.execute("SHOW PENDING"),
        "(no pending entangled queries)"
    );
}

#[test]
fn wal_recovery_preserves_coordinated_answers() {
    let dir = std::env::temp_dir().join(format!("youtopia_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.wal");
    let _ = std::fs::remove_file(&path);

    {
        let wal = youtopia::storage::Wal::open(&path).unwrap();
        let db = Database::with_wal(wal);
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
        )
        .unwrap();
        run_sql(&db, "INSERT INTO Flights VALUES (122, 'Paris')").unwrap();
        let co = Coordinator::new(db);
        co.submit_sql(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
        co.submit_sql(
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
        // both answers are in the answer relation, durably
    }

    // crash-restart: replay the WAL into a fresh database
    let recovered = Database::recover(youtopia::storage::Wal::open(&path).unwrap()).unwrap();
    {
        let read = recovered.read();
        let reservation = read.table("Reservation").unwrap();
        assert_eq!(reservation.len(), 2, "coordinated answers survive recovery");
        let fnos: std::collections::HashSet<i64> = reservation
            .scan()
            .map(|(_, t)| t.values()[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos.len(), 1, "both tuples carry the coordinated flight");
    }

    // checkpointing compacts the log without changing recovered state
    recovered.checkpoint().unwrap();
    let after_checkpoint = Database::recover(youtopia::storage::Wal::open(&path).unwrap()).unwrap();
    let read = after_checkpoint.read();
    assert_eq!(read.table("Reservation").unwrap().len(), 2);
    assert_eq!(read.table("Flights").unwrap().len(), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn queries_in_flight_from_many_threads_all_complete() {
    let site = std::sync::Arc::new({
        let s = TravelService::bootstrap_demo().unwrap();
        for i in 0..10 {
            s.social()
                .import_friends(&format!("u{i}"), &[&format!("v{i}")])
                .unwrap();
        }
        s
    });
    let mut handles = Vec::new();
    for i in 0..10 {
        for side in 0..2u8 {
            let site = site.clone();
            handles.push(std::thread::spawn(move || {
                let (me, friend) = if side == 0 {
                    (format!("u{i}"), format!("v{i}"))
                } else {
                    (format!("v{i}"), format!("u{i}"))
                };
                site.coordinate_flight(&me, &friend, "Paris", youtopia::FlightPrefs::default())
                    .unwrap();
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(site.coordinator().pending_count(), 0, "every pair matched");
    assert_eq!(site.coordinator().stats().groups_matched, 10);
    for i in 0..10 {
        let u = site.account_view(&format!("u{i}")).unwrap();
        let v = site.account_view(&format!("v{i}")).unwrap();
        assert_eq!(u.flights, v.flights, "pair {i} shares its flight");
    }
}

#[test]
fn unsafe_and_malformed_input_is_reported_not_crashing() {
    let db = Database::new();
    run_sql(&db, "CREATE TABLE T (a INT)").unwrap();
    let co = Coordinator::new(db);
    // unsafe: head variable never restricted
    assert!(co
        .submit_sql("x", "SELECT 'X', v INTO ANSWER R CHOOSE 1")
        .is_err());
    // parse error
    assert!(co.submit_sql("x", "SELECT INTO").is_err());
    // not entangled
    assert!(co.submit_sql("x", "SELECT 1").is_err());
    // CHOOSE k != 1
    assert!(co
        .submit_sql(
            "x",
            "SELECT 'X', v INTO ANSWER R WHERE v IN (SELECT a FROM T) CHOOSE 3"
        )
        .is_err());
    assert_eq!(co.pending_count(), 0);
}

#[test]
fn membership_subqueries_may_use_the_full_sql_surface() {
    // joins + aggregates inside the membership predicate's subquery
    let db = Database::new();
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING, price FLOAT)",
        "CREATE TABLE Ratings (fno INT, stars INT)",
        "INSERT INTO Flights VALUES (1, 'Paris', 400.0), (2, 'Paris', 420.0), (3, 'Paris', 900.0)",
        "INSERT INTO Ratings VALUES (1, 5), (1, 4), (2, 2), (3, 5)",
    ] {
        run_sql(&db, sql).unwrap();
    }
    let co = Coordinator::new(db);
    // only well-rated affordable flights are eligible
    let q = |me: &str, friend: &str| {
        format!(
            "SELECT '{me}', fno INTO ANSWER R \
             WHERE fno IN (SELECT f.fno FROM Flights f JOIN Ratings r ON f.fno = r.fno \
                           WHERE f.price < 500 GROUP BY f.fno HAVING AVG(r.stars) >= 4) \
             AND ('{friend}', fno) IN ANSWER R CHOOSE 1"
        )
    };
    co.submit_sql("a", &q("A", "B")).unwrap();
    let sub = co.submit_sql("b", &q("B", "A")).unwrap();
    let n = sub.answered().expect("pair matches");
    // flight 1 is the only one passing price < 500 AND avg stars >= 4
    assert_eq!(n.answers[0].1.values()[1].as_int(), Some(1));
}

#[test]
fn show_tables_lists_answer_relations_once_created() {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(&db, "INSERT INTO Flights VALUES (1, 'Paris')").unwrap();
    let co = Coordinator::new(db.clone());
    co.submit_sql(
        "solo",
        "SELECT 'solo', fno INTO ANSWER BrandNewAnswerRel \
         WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
    )
    .unwrap();
    let StatementOutcome::TableNames(names) = run_sql(&db, "SHOW TABLES").unwrap() else {
        panic!()
    };
    assert!(names.iter().any(|n| n == "BrandNewAnswerRel"), "{names:?}");
}
