//! Table schemas: column definitions, data types, and tuple validation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;
use crate::value::Value;

/// The scalar column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (`INT` / `INTEGER` / `BIGINT` in SQL).
    Int64,
    /// 64-bit IEEE float (`FLOAT` / `DOUBLE` / `REAL` in SQL).
    Float64,
    /// UTF-8 string (`STRING` / `TEXT` / `VARCHAR` in SQL).
    Str,
    /// Byte string (`BYTES` / `BLOB` in SQL).
    Bytes,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int64 => "INT",
            DataType::Float64 => "FLOAT",
            DataType::Str => "STRING",
            DataType::Bytes => "BYTES",
        };
        write!(f, "{s}")
    }
}

impl DataType {
    /// Parses a SQL type name (case-insensitive, with common aliases).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "INT64" => Some(DataType::Int64),
            "FLOAT" | "DOUBLE" | "REAL" | "FLOAT64" => Some(DataType::Float64),
            "STRING" | "TEXT" | "VARCHAR" | "CHAR" => Some(DataType::Str),
            "BYTES" | "BLOB" => Some(DataType::Bytes),
            _ => None,
        }
    }
}

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-preserved; lookups are case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL may be stored.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// A table schema: ordered columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    /// Empty means no declared primary key.
    primary_key: Vec<usize>,
}

impl Schema {
    /// Builds a schema without a primary key.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Builds a schema with the named primary-key columns.
    ///
    /// # Panics
    /// Panics if a primary-key column name is not part of the schema —
    /// schemas are built by the engine from validated DDL, so this is a
    /// programming error, not a runtime condition.
    pub fn with_primary_key(columns: Vec<Column>, key: &[&str]) -> Self {
        let mut schema = Schema::new(columns);
        schema.primary_key = key
            .iter()
            .map(|name| {
                schema
                    .column_index(name)
                    .unwrap_or_else(|| panic!("primary key column '{name}' not in schema"))
            })
            .collect();
        schema
    }

    /// The columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive lookup of a column's position.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition at `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// The primary-key column positions (empty if none declared).
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Extracts the primary-key values from a tuple, or `None` when the
    /// schema has no primary key.
    pub fn key_of<'a>(&self, tuple: &'a Tuple) -> Option<Vec<&'a Value>> {
        if self.primary_key.is_empty() {
            return None;
        }
        Some(
            self.primary_key
                .iter()
                .map(|&i| &tuple.values()[i])
                .collect(),
        )
    }

    /// Validates a tuple against this schema, coercing values where the
    /// engine allows it (int→float). Returns the validated (possibly
    /// coerced) tuple.
    pub fn validate(&self, table: &str, tuple: Tuple) -> StorageResult<Tuple> {
        if tuple.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        let mut out = Vec::with_capacity(tuple.arity());
        for (value, col) in tuple.into_values().into_iter().zip(&self.columns) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        column: col.name.clone(),
                    });
                }
                out.push(value);
                continue;
            }
            if !value.compatible_with(col.ty) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    actual: value.data_type().unwrap_or(col.ty),
                });
            }
            out.push(value.coerce_to(col.ty));
        }
        // `table` is only used for error context today; keep the parameter so
        // richer diagnostics can be added without touching call sites.
        let _ = table;
        Ok(Tuple::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights_schema() -> Schema {
        Schema::with_primary_key(
            vec![
                Column::new("fno", DataType::Int64),
                Column::new("dest", DataType::Str),
                Column::nullable("price", DataType::Float64),
            ],
            &["fno"],
        )
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Int64));
        assert_eq!(DataType::parse("TEXT"), Some(DataType::Str));
        assert_eq!(DataType::parse("double"), Some(DataType::Float64));
        assert_eq!(DataType::parse("BLOB"), Some(DataType::Bytes));
        assert_eq!(DataType::parse("boolean"), Some(DataType::Bool));
        assert_eq!(DataType::parse("what"), None);
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = flights_schema();
        assert_eq!(s.column_index("FNO"), Some(0));
        assert_eq!(s.column_index("Dest"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn validate_accepts_good_tuple_and_coerces() {
        let s = flights_schema();
        let t = Tuple::new(vec![Value::Int(122), Value::from("Paris"), Value::Int(450)]);
        let t = s.validate("Flights", t).unwrap();
        // price was widened to float
        assert_eq!(t.values()[2], Value::Float(450.0));
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let s = flights_schema();
        let t = Tuple::new(vec![Value::Int(122)]);
        assert_eq!(
            s.validate("Flights", t).unwrap_err(),
            StorageError::ArityMismatch {
                expected: 3,
                actual: 1
            }
        );
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = flights_schema();
        let t = Tuple::new(vec![Value::from("x"), Value::from("Paris"), Value::Null]);
        match s.validate("Flights", t).unwrap_err() {
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                assert_eq!(column, "fno");
                assert_eq!(expected, DataType::Int64);
                assert_eq!(actual, DataType::Str);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_null_rules() {
        let s = flights_schema();
        // nullable price accepts NULL
        let ok = Tuple::new(vec![Value::Int(1), Value::from("Rome"), Value::Null]);
        assert!(s.validate("Flights", ok).is_ok());
        // non-nullable dest rejects NULL
        let bad = Tuple::new(vec![Value::Int(1), Value::Null, Value::Null]);
        assert_eq!(
            s.validate("Flights", bad).unwrap_err(),
            StorageError::NullViolation {
                column: "dest".into()
            }
        );
    }

    #[test]
    fn primary_key_extraction() {
        let s = flights_schema();
        let t = Tuple::new(vec![Value::Int(122), Value::from("Paris"), Value::Null]);
        let key = s.key_of(&t).unwrap();
        assert_eq!(key, vec![&Value::Int(122)]);

        let no_pk = Schema::new(vec![Column::new("a", DataType::Int64)]);
        assert!(no_pk.key_of(&Tuple::new(vec![Value::Int(1)])).is_none());
    }

    #[test]
    #[should_panic(expected = "primary key column")]
    fn bad_primary_key_panics() {
        Schema::with_primary_key(vec![Column::new("a", DataType::Int64)], &["b"]);
    }
}
