//! Pipelined group-commit WAL writer.
//!
//! One dedicated writer thread per durable [`crate::db::Database`]
//! absorbs append requests from every committer — shard registration
//! batches, serial-coordinator events, and transaction redo groups —
//! into a single queue. Each quantum it drains the queue, appends the
//! queued groups as marker-delimited commits (each group's records
//! followed by one [`WalRecord::CommitBoundary`] frame), syncs the log
//! **once**, and then acknowledges every request through its own
//! completion slot. N concurrent committers therefore cost ~1 fsync
//! per quantum instead of N, while each committer still blocks until
//! its own group is durable — the log-before-ack discipline of the
//! coordination layer is unchanged.
//!
//! The latency/throughput knob is [`GroupCommitConfig::quantum`]: with
//! a zero quantum (the default) the writer syncs as soon as it has at
//! least one request, and batching arises naturally from whatever
//! queued while the previous sync was in flight; a positive quantum
//! makes the writer linger that long after waking to absorb more
//! requests per sync, trading per-commit latency for fewer fsyncs
//! under bursty load.
//!
//! Ordering: a committer that must be ordered after its own reads
//! (a transaction) enqueues while still holding the database lock, so
//! queue order extends lock order; the writer preserves queue order on
//! disk. Requests that carry no ordering dependency (coordination
//! event batches) enqueue lock-free with respect to the database.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::{StorageError, StorageResult};
use crate::wal::{Wal, WalRecord};

/// Locks ignoring lock poisoning: the writer completes every slot it
/// took responsibility for even if another thread panicked, and the
/// queue/result state is valid at every await point.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning for the pipelined writer.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// How long the writer lingers after waking before it writes and
    /// syncs the absorbed batch. `Duration::ZERO` (default) syncs
    /// immediately; batching still happens for requests that queued
    /// while the previous sync was running.
    pub quantum: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            quantum: Duration::ZERO,
        }
    }
}

/// A per-request completion slot: the writer parks the request's
/// outcome here and wakes the committer blocked in [`Slot::wait`].
pub struct Slot {
    result: Mutex<Option<StorageResult<()>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn ready(result: StorageResult<()>) -> std::sync::Arc<Slot> {
        let slot = Slot::new();
        *lock(&slot.result) = Some(result);
        std::sync::Arc::new(slot)
    }

    fn complete(&self, result: StorageResult<()>) {
        *lock(&self.result) = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until the writer has made this request's commit group
    /// durable (or failed trying) and returns the outcome.
    pub fn wait(&self) -> StorageResult<()> {
        let mut guard = lock(&self.result);
        while guard.is_none() {
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        guard.clone().expect("checked above")
    }
}

struct Request {
    records: Vec<WalRecord>,
    slot: std::sync::Arc<Slot>,
}

struct QueueState {
    queue: Vec<Request>,
    shutdown: bool,
    /// Set on the first append failure: the log may hold a partial
    /// group, so further appends would mis-frame it. Fail fast.
    poisoned: Option<String>,
}

struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
    wal: Mutex<Wal>,
    quantum: Duration,
}

/// Handle to one pipelined writer (one per durable database). Cloned
/// via `Arc`; dropping the last handle shuts the writer down after it
/// drains the queue.
pub struct GroupCommit {
    shared: std::sync::Arc<Shared>,
    writer: Option<JoinHandle<()>>,
}

impl GroupCommit {
    /// Wraps `wal` and starts the writer thread.
    pub fn spawn(wal: Wal, config: GroupCommitConfig) -> GroupCommit {
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: Vec::new(),
                shutdown: false,
                poisoned: None,
            }),
            work: Condvar::new(),
            wal: Mutex::new(wal),
            quantum: config.quantum,
        });
        let writer_shared = shared.clone();
        let writer = std::thread::Builder::new()
            .name("wal-group-commit".into())
            .spawn(move || writer_loop(&writer_shared))
            .expect("spawning the WAL writer thread");
        GroupCommit {
            shared,
            writer: Some(writer),
        }
    }

    /// Enqueues one commit group and returns its completion slot
    /// without blocking. The group is appended in queue order, sealed
    /// with a commit-boundary marker, and acknowledged after the
    /// quantum's single sync.
    pub fn submit(&self, records: Vec<WalRecord>) -> std::sync::Arc<Slot> {
        if records.is_empty() {
            return Slot::ready(Ok(()));
        }
        let slot = std::sync::Arc::new(Slot::new());
        {
            let mut state = lock(&self.shared.state);
            if let Some(msg) = &state.poisoned {
                slot.complete(Err(StorageError::WalIo(format!(
                    "log writer poisoned: {msg}"
                ))));
                return slot;
            }
            if state.shutdown {
                slot.complete(Err(StorageError::WalIo("log writer shut down".into())));
                return slot;
            }
            state.queue.push(Request {
                records,
                slot: slot.clone(),
            });
        }
        self.shared.work.notify_all();
        slot
    }

    /// Synchronous facade: enqueue one commit group and block until
    /// it is durable. Empty groups complete immediately.
    pub fn commit(&self, records: Vec<WalRecord>) -> StorageResult<()> {
        self.submit(records).wait()
    }

    /// Runs `f` with exclusive access to the underlying log — the
    /// checkpoint/recovery/introspection escape hatch. Queued requests
    /// are not lost: the writer appends them after `f` returns, which
    /// is exactly the order a checkpoint rewrite needs (a request not
    /// yet on disk was not yet acknowledged, so it must land after
    /// the rewritten snapshot).
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut lock(&self.shared.wal))
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        // the writer drains the queue before exiting, but complete any
        // stragglers (e.g. enqueued against a poisoned writer) loudly
        let mut state = lock(&self.shared.state);
        for request in state.queue.drain(..) {
            request
                .slot
                .complete(Err(StorageError::WalIo("log writer shut down".into())));
        }
    }
}

fn writer_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = lock(&shared.state);
            while state.queue.is_empty() && !state.shutdown {
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if state.queue.is_empty() {
                break; // shutdown with nothing left to drain
            }
            if !shared.quantum.is_zero() && !state.shutdown {
                // linger one quantum to absorb more requests into
                // this sync (more wake-ups may land meanwhile)
                state = shared
                    .work
                    .wait_timeout(state, shared.quantum)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            std::mem::take(&mut state.queue)
        };

        let mut wal = lock(&shared.wal);
        // Append every group, each sealed by its marker; sync once.
        // On an append failure the log may hold a partial group, so
        // stop appending (later groups would mis-frame) and poison.
        let mut failed: Option<(usize, StorageError)> = None;
        for (i, request) in batch.iter().enumerate() {
            let appended = (|| {
                for record in &request.records {
                    wal.append_record(record)?;
                }
                wal.append_commit_boundary()
            })();
            if let Err(e) = appended {
                failed = Some((i, e));
                break;
            }
        }
        let sync_result = wal.sync();
        drop(wal);

        if let Some((_, e)) = &failed {
            lock(&shared.state).poisoned = Some(e.to_string());
        }
        let failed_at = failed.as_ref().map(|(i, _)| *i).unwrap_or(batch.len());
        for (i, request) in batch.into_iter().enumerate() {
            let outcome = match (&failed, i.cmp(&failed_at)) {
                // fully appended before any failure: durability is
                // whatever the sync said
                (_, std::cmp::Ordering::Less) => sync_result.clone(),
                (Some((_, e)), std::cmp::Ordering::Equal) => Err(e.clone()),
                (Some((_, e)), std::cmp::Ordering::Greater) => {
                    Err(StorageError::WalIo(format!("log writer poisoned: {e}")))
                }
                (None, _) => sync_result.clone(),
            };
            request.slot.complete(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;

    #[test]
    fn concurrent_commits_are_marker_delimited_and_ordered_per_committer() {
        let gc = std::sync::Arc::new(GroupCommit::spawn(
            Wal::in_memory(),
            GroupCommitConfig::default(),
        ));
        let threads: Vec<_> = (0u8..4)
            .map(|t| {
                let gc = gc.clone();
                std::thread::spawn(move || {
                    for i in 0u8..8 {
                        gc.commit(vec![
                            WalRecord::Coordination(vec![t, i, 0]),
                            WalRecord::Coordination(vec![t, i, 1]),
                        ])
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let gc = std::sync::Arc::into_inner(gc).expect("all clones joined");
        let records = gc.with_wal(|wal| wal.replay_records()).unwrap();
        assert_eq!(records.len(), 4 * 8 * 2);
        // the two frames of one group are adjacent: marker-delimited
        // groups are never interleaved
        for chunk in records.chunks(2) {
            match (&chunk[0], &chunk[1]) {
                (WalRecord::Coordination(a), WalRecord::Coordination(b)) => {
                    assert_eq!(&a[..2], &b[..2], "group split across other commits");
                    assert_eq!((a[2], b[2]), (0, 1));
                }
                other => panic!("unexpected records {other:?}"),
            }
        }
        // and each committer's groups are in its submission order
        for t in 0u8..4 {
            let mine: Vec<&WalRecord> = records
                .iter()
                .filter(|r| matches!(r, WalRecord::Coordination(p) if p[0] == t))
                .collect();
            let expect: Vec<WalRecord> = (0u8..8)
                .flat_map(|i| {
                    [
                        WalRecord::Coordination(vec![t, i, 0]),
                        WalRecord::Coordination(vec![t, i, 1]),
                    ]
                })
                .collect();
            assert_eq!(mine, expect.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_groups_complete_without_touching_the_log() {
        let gc = GroupCommit::spawn(Wal::in_memory(), GroupCommitConfig::default());
        gc.commit(Vec::new()).unwrap();
        assert_eq!(gc.with_wal(|wal| wal.len_bytes()).unwrap(), 0);
    }

    #[test]
    fn positive_quantum_still_acknowledges_every_commit() {
        let gc = GroupCommit::spawn(
            Wal::in_memory(),
            GroupCommitConfig {
                quantum: Duration::from_millis(2),
            },
        );
        for i in 0u8..5 {
            gc.commit(vec![WalRecord::Coordination(vec![i])]).unwrap();
        }
        let records = gc.with_wal(|wal| wal.replay_records()).unwrap();
        assert_eq!(records.len(), 5);
    }
}
