//! Length-prefixed primitives shared by the WAL frame codec and the
//! coordination-event payloads layered on top of it (so the two
//! layers cannot drift apart on framing or error behavior).

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{StorageError, StorageResult};

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Reads a `u32`-length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.remaining() < 4 {
        return Err(StorageError::WalCorrupt("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(StorageError::WalCorrupt("truncated string body".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|e| StorageError::WalCorrupt(format!("bad utf8 in WAL record: {e}")))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

/// Reads a big-endian `u64`.
pub fn get_u64(buf: &mut &[u8]) -> StorageResult<u64> {
    if buf.remaining() < 8 {
        return Err(StorageError::WalCorrupt("truncated u64".into()));
    }
    Ok(buf.get_u64())
}
