//! The row store: a table of tuples addressed by [`RowId`], with
//! attached secondary indexes kept in sync on every mutation.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{StorageError, StorageResult};
use crate::index::{Index, IndexKind};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Stable identifier of a row within one table.
///
/// Row ids are allocated densely and never reused, which lets undo logs
/// and the WAL refer to rows without ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A heap table: schema, rows, and secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: BTreeMap<u64, Tuple>,
    next_row_id: u64,
    indexes: Vec<Index>,
}

impl Table {
    /// Creates an empty table. If the schema declares a primary key, a
    /// unique hash index named `<table>_pk` is created automatically.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let mut table = Table {
            name: name.clone(),
            schema,
            rows: BTreeMap::new(),
            next_row_id: 0,
            indexes: Vec::new(),
        };
        if !table.schema.primary_key().is_empty() {
            let pk_cols = table.schema.primary_key().to_vec();
            table.indexes.push(Index::new(
                format!("{name}_pk"),
                pk_cols,
                true,
                IndexKind::Hash,
            ));
        }
        table
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates and inserts a tuple; returns its new row id.
    pub fn insert(&mut self, tuple: Tuple) -> StorageResult<RowId> {
        let tuple = self.schema.validate(&self.name, tuple)?;
        // Check all unique indexes before touching any of them so a failed
        // insert leaves every index untouched.
        for idx in &self.indexes {
            if idx.is_unique() {
                let key = idx.key_of(&tuple);
                if !idx.probe(&key).is_empty() {
                    return Err(StorageError::UniqueViolation {
                        index: idx.name().to_string(),
                        key: Tuple::new(key).to_string(),
                    });
                }
            }
        }
        let rid = RowId(self.next_row_id);
        self.next_row_id += 1;
        for idx in &mut self.indexes {
            idx.insert(&tuple, rid)
                .expect("uniqueness was pre-checked; insert cannot fail");
        }
        self.rows.insert(rid.0, tuple);
        Ok(rid)
    }

    /// Re-inserts a row under a specific id (WAL replay / undo only).
    pub(crate) fn insert_at(&mut self, rid: RowId, tuple: Tuple) -> StorageResult<()> {
        let tuple = self.schema.validate(&self.name, tuple)?;
        if self.rows.contains_key(&rid.0) {
            return Err(StorageError::Internal(format!(
                "insert_at: row {rid} already exists in '{}'",
                self.name
            )));
        }
        for idx in &mut self.indexes {
            idx.insert(&tuple, rid)?;
        }
        self.rows.insert(rid.0, tuple);
        self.next_row_id = self.next_row_id.max(rid.0 + 1);
        Ok(())
    }

    /// Fetches a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Tuple> {
        self.rows.get(&rid.0)
    }

    /// Deletes a row; returns the removed tuple.
    pub fn delete(&mut self, rid: RowId) -> StorageResult<Tuple> {
        let tuple = self
            .rows
            .remove(&rid.0)
            .ok_or(StorageError::RowNotFound(rid.0))?;
        for idx in &mut self.indexes {
            idx.remove(&tuple, rid);
        }
        Ok(tuple)
    }

    /// Replaces a row in place; returns the previous tuple.
    pub fn update(&mut self, rid: RowId, tuple: Tuple) -> StorageResult<Tuple> {
        let tuple = self.schema.validate(&self.name, tuple)?;
        let old = self
            .rows
            .get(&rid.0)
            .cloned()
            .ok_or(StorageError::RowNotFound(rid.0))?;
        // Pre-check unique indexes, ignoring this row's own current key.
        for idx in &self.indexes {
            if idx.is_unique() {
                let new_key = idx.key_of(&tuple);
                let old_key = idx.key_of(&old);
                if new_key != old_key && !idx.probe(&new_key).is_empty() {
                    return Err(StorageError::UniqueViolation {
                        index: idx.name().to_string(),
                        key: Tuple::new(new_key).to_string(),
                    });
                }
            }
        }
        for idx in &mut self.indexes {
            idx.remove(&old, rid);
            idx.insert(&tuple, rid)
                .expect("uniqueness was pre-checked; insert cannot fail");
        }
        self.rows.insert(rid.0, tuple);
        Ok(old)
    }

    /// Iterates over `(RowId, &Tuple)` in row-id order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.rows.iter().map(|(&rid, t)| (RowId(rid), t))
    }

    /// Creates a secondary index over the named columns and backfills it.
    pub fn create_index(
        &mut self,
        index_name: &str,
        columns: &[&str],
        unique: bool,
        kind: IndexKind,
    ) -> StorageResult<()> {
        if self.indexes.iter().any(|i| i.name() == index_name) {
            return Err(StorageError::IndexAlreadyExists(index_name.to_string()));
        }
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .column_index(c)
                    .ok_or_else(|| StorageError::ColumnNotFound {
                        table: self.name.clone(),
                        column: c.to_string(),
                    })
            })
            .collect::<StorageResult<_>>()?;
        let mut idx = Index::new(index_name, positions, unique, kind);
        for (&rid, tuple) in &self.rows {
            idx.insert(tuple, RowId(rid))?;
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drops a secondary index by name.
    pub fn drop_index(&mut self, index_name: &str) -> StorageResult<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name() == index_name)
            .ok_or_else(|| StorageError::IndexNotFound(index_name.to_string()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// Looks up an index by name.
    pub fn index(&self, index_name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.name() == index_name)
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Finds an index whose column set is exactly `columns` (any order of
    /// declaration is *not* bridged: the planner asks for the order it
    /// wants). Used by the planner for index-selection.
    pub fn find_index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns() == columns)
    }

    /// Convenience point-probe: row ids whose `column = value`, using an
    /// index when one exists, otherwise a scan.
    pub fn rows_where_eq(&self, column: usize, value: &Value) -> Vec<RowId> {
        if let Some(idx) = self.find_index_on(&[column]) {
            return idx.probe(std::slice::from_ref(value)).to_vec();
        }
        self.scan()
            .filter(|(_, t)| t.values()[column].sql_eq(value))
            .map(|(rid, _)| rid)
            .collect()
    }

    /// Removes all rows (indexes are cleared too). Row ids are not reused.
    pub fn truncate(&mut self) {
        self.rows.clear();
        for idx in &mut self.indexes {
            idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn flights() -> Table {
        let schema = Schema::with_primary_key(
            vec![
                Column::new("fno", DataType::Int64),
                Column::new("dest", DataType::Str),
            ],
            &["fno"],
        );
        let mut t = Table::new("Flights", schema);
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            t.insert(Tuple::new(vec![Value::Int(fno), Value::from(dest)]))
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_allocates_dense_row_ids() {
        let t = flights();
        let rids: Vec<u64> = t.scan().map(|(r, _)| r.0).collect();
        assert_eq!(rids, vec![0, 1, 2, 3]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn primary_key_index_is_automatic() {
        let t = flights();
        let pk = t.index("Flights_pk").expect("pk index exists");
        assert!(pk.is_unique());
        assert_eq!(pk.probe(&[Value::Int(122)]).len(), 1);
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let mut t = flights();
        let err = t
            .insert(Tuple::new(vec![Value::Int(122), Value::from("Oslo")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // table unchanged
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn delete_updates_indexes() {
        let mut t = flights();
        let deleted = t.delete(RowId(0)).unwrap();
        assert_eq!(deleted.values()[0], Value::Int(122));
        assert!(t
            .index("Flights_pk")
            .unwrap()
            .probe(&[Value::Int(122)])
            .is_empty());
        assert!(t.delete(RowId(0)).is_err());
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = flights();
        t.update(
            RowId(0),
            Tuple::new(vec![Value::Int(999), Value::from("Paris")]),
        )
        .unwrap();
        let pk = t.index("Flights_pk").unwrap();
        assert!(pk.probe(&[Value::Int(122)]).is_empty());
        assert_eq!(pk.probe(&[Value::Int(999)]), &[RowId(0)]);
    }

    #[test]
    fn update_cannot_steal_existing_key() {
        let mut t = flights();
        let err = t
            .update(
                RowId(0),
                Tuple::new(vec![Value::Int(123), Value::from("Oslo")]),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // row unchanged
        assert_eq!(t.get(RowId(0)).unwrap().values()[0], Value::Int(122));
    }

    #[test]
    fn update_keeping_same_key_is_fine() {
        let mut t = flights();
        t.update(
            RowId(0),
            Tuple::new(vec![Value::Int(122), Value::from("Lyon")]),
        )
        .unwrap();
        assert_eq!(t.get(RowId(0)).unwrap().values()[1], Value::from("Lyon"));
    }

    #[test]
    fn secondary_index_backfills_existing_rows() {
        let mut t = flights();
        t.create_index("by_dest", &["dest"], false, IndexKind::Hash)
            .unwrap();
        let idx = t.index("by_dest").unwrap();
        assert_eq!(idx.probe(&[Value::from("Paris")]).len(), 3);
        assert_eq!(idx.probe(&[Value::from("Rome")]).len(), 1);
    }

    #[test]
    fn create_index_on_unknown_column_fails() {
        let mut t = flights();
        let err = t
            .create_index("x", &["nope"], false, IndexKind::Hash)
            .unwrap_err();
        assert!(matches!(err, StorageError::ColumnNotFound { .. }));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = flights();
        t.create_index("i", &["dest"], false, IndexKind::Hash)
            .unwrap();
        assert!(matches!(
            t.create_index("i", &["fno"], false, IndexKind::Hash),
            Err(StorageError::IndexAlreadyExists(_))
        ));
    }

    #[test]
    fn drop_index_works() {
        let mut t = flights();
        t.create_index("i", &["dest"], false, IndexKind::Hash)
            .unwrap();
        t.drop_index("i").unwrap();
        assert!(t.index("i").is_none());
        assert!(matches!(
            t.drop_index("i"),
            Err(StorageError::IndexNotFound(_))
        ));
    }

    #[test]
    fn rows_where_eq_uses_index_or_scan() {
        let mut t = flights();
        // no index on dest yet: scan path
        let scan_result = t.rows_where_eq(1, &Value::from("Paris"));
        assert_eq!(scan_result.len(), 3);
        // with index: same result
        t.create_index("by_dest", &["dest"], false, IndexKind::Hash)
            .unwrap();
        let idx_result = t.rows_where_eq(1, &Value::from("Paris"));
        assert_eq!(idx_result.len(), 3);
    }

    #[test]
    fn row_ids_are_not_reused_after_delete() {
        let mut t = flights();
        t.delete(RowId(3)).unwrap();
        let rid = t
            .insert(Tuple::new(vec![Value::Int(200), Value::from("Oslo")]))
            .unwrap();
        assert_eq!(rid, RowId(4));
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = flights();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.index("Flights_pk").unwrap().key_count(), 0);
        // ids continue from where they were
        let rid = t
            .insert(Tuple::new(vec![Value::Int(1), Value::from("x")]))
            .unwrap();
        assert_eq!(rid, RowId(4));
    }

    #[test]
    fn insert_at_respects_existing_ids() {
        let mut t = flights();
        assert!(t
            .insert_at(RowId(1), Tuple::new(vec![Value::Int(7), Value::from("x")]))
            .is_err());
        t.insert_at(
            RowId(100),
            Tuple::new(vec![Value::Int(7), Value::from("x")]),
        )
        .unwrap();
        let rid = t
            .insert(Tuple::new(vec![Value::Int(8), Value::from("y")]))
            .unwrap();
        assert_eq!(rid, RowId(101));
    }

    #[test]
    fn validation_happens_on_every_mutation() {
        let mut t = flights();
        // wrong arity
        assert!(t.insert(Tuple::new(vec![Value::Int(1)])).is_err());
        // wrong type on update
        assert!(t
            .update(
                RowId(0),
                Tuple::new(vec![Value::from("x"), Value::from("y")])
            )
            .is_err());
    }
}
