//! The database engine: a shared catalog guarded by a reader–writer
//! lock, with undo-logged transactions and optional WAL durability.
//!
//! Concurrency model: read transactions take the shared lock and may run
//! concurrently; a write transaction takes the exclusive lock for its
//! whole lifetime, so writers are serialized and readers never observe a
//! partially applied transaction. This gives the *atomic joint
//! application* of entangled-query matches that the Youtopia coordinator
//! requires, with rollback via the undo log on abort.
//!
//! Durability rides the pipelined group-commit writer
//! ([`crate::group_commit::GroupCommit`]): every commit group — a
//! transaction's redo records, a coordination event batch — is
//! enqueued to one writer thread that appends it as a marker-delimited
//! group and syncs once per quantum, acknowledging the committer
//! through a per-request completion slot. Coordination appends no
//! longer touch the catalog lock at all; transaction commits enqueue
//! while still holding it (so log order extends commit order) and
//! block until durable.

use std::sync::Arc;

use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, RawRwLock, RwLock};

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::group_commit::{GroupCommit, GroupCommitConfig};
use crate::index::IndexKind;
use crate::schema::Schema;
use crate::table::{RowId, Table};
use crate::tuple::Tuple;
use crate::wal::{Wal, WalOp, WalRecord};

/// Name prefix that marks a table as a *transient system relation*.
///
/// Transient tables (e.g. the coordination audit relations `sys_audit`
/// and `sys_tenant_latency`) live in the catalog and are fully readable
/// and writable through normal transactions, but they are **derived
/// state**: their mutations are never WAL-logged, and checkpoints and
/// snapshots skip them. The subsystem that owns a transient table is
/// responsible for rebuilding it on recovery (the audit sink rebuilds
/// from the log's coordination frames). This keeps high-volume
/// telemetry writes off the durability path entirely — a transaction
/// that only touches transient tables commits without enqueueing a
/// group-commit request at all.
pub const TRANSIENT_PREFIX: &str = "sys_";

/// Whether `name` names a transient system relation (see
/// [`TRANSIENT_PREFIX`]).
pub fn is_transient(name: &str) -> bool {
    name.starts_with(TRANSIENT_PREFIX)
}

struct DbInner {
    catalog: Catalog,
}

/// A shared handle to one database. Cloning is cheap (`Arc` inside);
/// all clones see the same data.
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<DbInner>>,
    /// The group-commit pipeline; `None` for non-durable databases.
    log: Option<Arc<GroupCommit>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty, non-durable (no WAL) database.
    pub fn new() -> Database {
        Database {
            inner: Arc::new(RwLock::new(DbInner {
                catalog: Catalog::new(),
            })),
            log: None,
        }
    }

    /// Creates an empty database that logs committed work to `wal`
    /// through the group-commit pipeline (default quantum).
    pub fn with_wal(wal: Wal) -> Database {
        Self::with_wal_config(wal, GroupCommitConfig::default())
    }

    /// Creates an empty database that logs to `wal` with an explicit
    /// group-commit configuration (the sync-quantum latency knob).
    pub fn with_wal_config(wal: Wal, config: GroupCommitConfig) -> Database {
        Database {
            inner: Arc::new(RwLock::new(DbInner {
                catalog: Catalog::new(),
            })),
            log: Some(Arc::new(GroupCommit::spawn(wal, config))),
        }
    }

    /// Rebuilds a database by replaying a WAL, then keeps logging to it.
    /// Coordination frames in the log are preserved but not interpreted;
    /// use [`Database::recover_full`] to obtain them.
    pub fn recover(wal: Wal) -> StorageResult<Database> {
        Ok(Self::recover_full(wal)?.0)
    }

    /// Rebuilds a database by replaying a WAL and returns the log's
    /// coordination payloads (in log order) alongside it, so the
    /// coordination layer can rebuild *its* state from the same log.
    pub fn recover_full(wal: Wal) -> StorageResult<(Database, Vec<Vec<u8>>)> {
        Self::recover_full_config(wal, GroupCommitConfig::default())
    }

    /// [`Database::recover_full`] with an explicit group-commit
    /// configuration for the post-recovery writer.
    pub fn recover_full_config(
        mut wal: Wal,
        config: GroupCommitConfig,
    ) -> StorageResult<(Database, Vec<Vec<u8>>)> {
        // replay (and truncate any damaged suffix) before the writer
        // thread takes ownership of the log
        let records = wal.replay_records()?;
        let mut catalog = Catalog::new();
        let mut coordination = Vec::new();
        for record in records {
            match record {
                WalRecord::Storage(op) => apply_wal_op(&mut catalog, op)?,
                WalRecord::Coordination(payload) => coordination.push(payload),
                WalRecord::CommitBoundary => {}
            }
        }
        let db = Database {
            inner: Arc::new(RwLock::new(DbInner { catalog })),
            log: Some(Arc::new(GroupCommit::spawn(wal, config))),
        };
        Ok((db, coordination))
    }

    /// Whether this database logs to a WAL (i.e. is durable).
    pub fn has_wal(&self) -> bool {
        self.log.is_some()
    }

    /// A copy of the raw WAL bytes (memory-backed WALs only; used by
    /// crash-recovery tests that "kill" a process by dropping it and
    /// keep only what had reached the log).
    pub fn wal_bytes(&self) -> Option<Vec<u8>> {
        self.log
            .as_ref()?
            .with_wal(|wal| wal.raw_bytes().map(<[u8]>::to_vec))
    }

    /// Current WAL size in bytes (`None` without a WAL; works for file
    /// and memory sinks). Feeds the coordinator's auto-checkpoint
    /// threshold and the admin-surface log gauges.
    pub fn wal_len(&self) -> Option<u64> {
        self.log.as_ref()?.with_wal(|wal| wal.len_bytes().ok())
    }

    /// Durably appends one opaque coordination payload to the WAL as
    /// its own commit group through the group-commit pipeline,
    /// returning once it is synced. No-op without a WAL.
    pub fn append_coordination(&self, payload: &[u8]) -> StorageResult<()> {
        self.append_coordination_batch(std::slice::from_ref(&payload))
    }

    /// Group-commits a batch of coordination payloads as **one**
    /// marker-delimited commit group via the pipelined writer; blocks
    /// until the group is durable. Concurrent callers (e.g. several
    /// shards draining registration buckets) share one fsync per
    /// writer quantum instead of paying one each. Never takes the
    /// catalog lock. No-op without a WAL.
    pub fn append_coordination_batch<P: AsRef<[u8]>>(&self, payloads: &[P]) -> StorageResult<()> {
        let Some(log) = &self.log else {
            return Ok(());
        };
        let records: Vec<WalRecord> = payloads
            .iter()
            .map(|p| WalRecord::Coordination(p.as_ref().to_vec()))
            .collect();
        log.commit(records)
    }

    /// Starts a read transaction (shared lock for the guard's lifetime).
    pub fn read(&self) -> ReadTransaction {
        ReadTransaction {
            guard: RwLock::read_arc(&self.inner),
        }
    }

    /// Starts a write transaction (exclusive lock until commit/abort).
    pub fn begin(&self) -> Transaction {
        Transaction {
            guard: RwLock::write_arc(&self.inner),
            log: self.log.clone(),
            undo: Vec::new(),
            redo: Vec::new(),
            finished: false,
        }
    }

    /// One-shot helper: run `f` inside a write transaction, committing on
    /// `Ok` and rolling back on `Err`.
    pub fn with_txn<T>(
        &self,
        f: impl FnOnce(&mut Transaction) -> StorageResult<T>,
    ) -> StorageResult<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(value) => {
                txn.commit()?;
                Ok(value)
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }

    /// The logical operations that recreate the current state: one
    /// `CreateTable` per table plus one `Insert` per live row. This is
    /// exactly what checkpointing writes.
    pub fn snapshot_ops(&self) -> Vec<WalOp> {
        let inner = self.inner.read();
        let mut ops = Vec::new();
        for name in inner.catalog.table_names() {
            if is_transient(&name) {
                continue;
            }
            let table = inner
                .catalog
                .table(&name)
                .expect("name came from the catalog");
            ops.push(WalOp::CreateTable {
                name: table.name().to_string(),
                schema: table.schema().clone(),
            });
            for (rid, tuple) in table.scan() {
                ops.push(WalOp::Insert {
                    table: table.name().to_string(),
                    rid: rid.0,
                    tuple: tuple.clone(),
                });
            }
        }
        ops
    }

    /// Compacts the WAL: atomically (under the write lock) replaces the
    /// log's history with a snapshot of the live state, discarding dead
    /// updates and deletes. Coordination frames are **carried through**
    /// verbatim (in their original order) — storage cannot know which
    /// are still live, so compacting them is the coordination layer's
    /// job (see [`Database::checkpoint_with_coordination`]). No-op for
    /// databases without a WAL.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.checkpoint_inner(None)
    }

    /// Checkpoints like [`Database::checkpoint`], but replaces the
    /// log's coordination frames with the supplied (compacted) set
    /// instead of carrying the old ones through. The coordinator calls
    /// this with one registration frame per *surviving* pending query,
    /// so matched/cancelled registrations stop occupying log space.
    pub fn checkpoint_with_coordination<P: AsRef<[u8]>>(
        &self,
        coordination: &[P],
    ) -> StorageResult<()> {
        let frames: Vec<Vec<u8>> = coordination.iter().map(|p| p.as_ref().to_vec()).collect();
        self.checkpoint_inner(Some(frames))
    }

    fn checkpoint_inner(&self, coordination: Option<Vec<Vec<u8>>>) -> StorageResult<()> {
        let Some(log) = &self.log else {
            return Ok(());
        };
        // take the write lock so no transaction commit interleaves
        // with the rewrite (commits enqueue under this lock)
        let inner = self.inner.write();
        // build the snapshot from the locked state (transient system
        // relations are derived state and stay out of the log)
        let mut ops = Vec::new();
        for name in inner.catalog.table_names() {
            if is_transient(&name) {
                continue;
            }
            let table = inner
                .catalog
                .table(&name)
                .expect("name came from the catalog");
            ops.push(WalOp::CreateTable {
                name: table.name().to_string(),
                schema: table.schema().clone(),
            });
            for (rid, tuple) in table.scan() {
                ops.push(WalOp::Insert {
                    table: table.name().to_string(),
                    rid: rid.0,
                    tuple: tuple.clone(),
                });
            }
        }
        // replay + reset + rewrite under ONE log-lock hold: the writer
        // thread must not append a queued group between reading the old
        // coordination frames and the reset that would destroy it.
        // Requests still queued when we rewrite are fine — they are not
        // yet acknowledged and land *after* the snapshot, where they
        // belong.
        log.with_wal(|wal| {
            // preserve the log's coordination frames unless the caller
            // supplied a compacted replacement set
            let coordination = match coordination {
                Some(frames) => frames,
                None => wal
                    .replay_records()?
                    .into_iter()
                    .filter_map(WalRecord::coordination)
                    .collect(),
            };
            wal.reset()?;
            for op in &ops {
                wal.append(op)?;
            }
            for payload in &coordination {
                wal.append_coordination(payload)?;
            }
            // the snapshot is one commit group: seal it so a crash
            // mid-rewrite cannot replay a half-written snapshot past
            // the marker
            wal.append_commit_boundary()?;
            wal.sync()
        })
    }
}

fn apply_wal_op(catalog: &mut Catalog, op: WalOp) -> StorageResult<()> {
    match op {
        WalOp::CreateTable { name, schema } => catalog.create_table(&name, schema),
        WalOp::DropTable { name } => catalog.drop_table(&name).map(|_| ()),
        WalOp::Insert { table, rid, tuple } => {
            catalog.table_mut(&table)?.insert_at(RowId(rid), tuple)
        }
        WalOp::Update { table, rid, tuple } => catalog
            .table_mut(&table)?
            .update(RowId(rid), tuple)
            .map(|_| ()),
        WalOp::Delete { table, rid } => catalog.table_mut(&table)?.delete(RowId(rid)).map(|_| ()),
    }
}

/// A read-only view of the database. Holds the shared lock; drop it to
/// release.
pub struct ReadTransaction {
    guard: ArcRwLockReadGuard<RawRwLock, DbInner>,
}

impl ReadTransaction {
    /// Looks up a table.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.guard.catalog.table(name)
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.guard.catalog
    }
}

enum UndoOp {
    CreateTable {
        name: String,
    },
    DropTable {
        table: Table,
    },
    Insert {
        table: String,
        rid: RowId,
    },
    Update {
        table: String,
        rid: RowId,
        old: Tuple,
    },
    Delete {
        table: String,
        rid: RowId,
        old: Tuple,
    },
}

/// A write transaction. Mutations are applied eagerly to the catalog and
/// recorded in an undo log; [`Transaction::abort`] (or dropping without
/// commit) rolls everything back, [`Transaction::commit`] appends the
/// redo records to the WAL (if any) and releases the lock.
pub struct Transaction {
    guard: ArcRwLockWriteGuard<RawRwLock, DbInner>,
    log: Option<Arc<GroupCommit>>,
    undo: Vec<UndoOp>,
    redo: Vec<WalRecord>,
    finished: bool,
}

impl Transaction {
    fn check_open(&self) -> StorageResult<()> {
        if self.finished {
            Err(StorageError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// Creates a table. Tables named with the [`TRANSIENT_PREFIX`] are
    /// transient system relations: created in the catalog but never
    /// WAL-logged (their owner rebuilds them on recovery).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<()> {
        self.check_open()?;
        self.guard.catalog.create_table(name, schema.clone())?;
        self.undo.push(UndoOp::CreateTable {
            name: name.to_string(),
        });
        if !is_transient(name) {
            self.redo.push(WalRecord::Storage(WalOp::CreateTable {
                name: name.to_string(),
                schema,
            }));
        }
        Ok(())
    }

    /// Drops a table.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<()> {
        self.check_open()?;
        let table = self.guard.catalog.drop_table(name)?;
        if !is_transient(name) {
            self.redo.push(WalRecord::Storage(WalOp::DropTable {
                name: table.name().to_string(),
            }));
        }
        self.undo.push(UndoOp::DropTable { table });
        Ok(())
    }

    /// Creates a secondary index (not WAL-logged: indexes are derived
    /// state and are rebuilt by DDL on recovery paths that need them).
    pub fn create_index(
        &mut self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
        kind: IndexKind,
    ) -> StorageResult<()> {
        self.check_open()?;
        self.guard
            .catalog
            .table_mut(table)?
            .create_index(index_name, columns, unique, kind)
    }

    /// Inserts a tuple; returns its row id.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> StorageResult<RowId> {
        self.check_open()?;
        let t = self.guard.catalog.table_mut(table)?;
        let rid = t.insert(tuple)?;
        self.undo.push(UndoOp::Insert {
            table: table.to_string(),
            rid,
        });
        if !is_transient(table) {
            // the redo record is the only consumer of the stored copy;
            // transient tables never reach the WAL, so skip the clone
            let stored = self
                .guard
                .catalog
                .table_mut(table)?
                .get(rid)
                .expect("row was just inserted")
                .clone();
            self.redo.push(WalRecord::Storage(WalOp::Insert {
                table: table.to_string(),
                rid: rid.0,
                tuple: stored,
            }));
        }
        Ok(rid)
    }

    /// Updates a row in place.
    pub fn update(&mut self, table: &str, rid: RowId, tuple: Tuple) -> StorageResult<()> {
        self.check_open()?;
        let t = self.guard.catalog.table_mut(table)?;
        let old = t.update(rid, tuple)?;
        self.undo.push(UndoOp::Update {
            table: table.to_string(),
            rid,
            old,
        });
        if !is_transient(table) {
            let stored = self
                .guard
                .catalog
                .table_mut(table)?
                .get(rid)
                .expect("row still exists")
                .clone();
            self.redo.push(WalRecord::Storage(WalOp::Update {
                table: table.to_string(),
                rid: rid.0,
                tuple: stored,
            }));
        }
        Ok(())
    }

    /// Deletes a row.
    pub fn delete(&mut self, table: &str, rid: RowId) -> StorageResult<()> {
        self.check_open()?;
        let old = self.guard.catalog.table_mut(table)?.delete(rid)?;
        self.undo.push(UndoOp::Delete {
            table: table.to_string(),
            rid,
            old,
        });
        if !is_transient(table) {
            self.redo.push(WalRecord::Storage(WalOp::Delete {
                table: table.to_string(),
                rid: rid.0,
            }));
        }
        Ok(())
    }

    /// Records an opaque coordination payload to be written to the WAL
    /// **atomically with this transaction's storage operations** at
    /// commit (the group-commit handle of the coordination layer: a
    /// match commit and its answer-tuple inserts reach the log
    /// together, or not at all). Has no in-memory effect; aborting the
    /// transaction discards the payload.
    pub fn log_coordination(&mut self, payload: Vec<u8>) -> StorageResult<()> {
        self.check_open()?;
        self.redo.push(WalRecord::Coordination(payload));
        Ok(())
    }

    /// Reads a table *within* the transaction (sees own writes).
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.guard.catalog.table(name)
    }

    /// The catalog as seen by this transaction.
    pub fn catalog(&self) -> &Catalog {
        &self.guard.catalog
    }

    /// Commits: submits the redo records to the group-commit pipeline
    /// as one marker-delimited commit group (if durable) and blocks —
    /// still holding the database lock — until the group is synced,
    /// then releases the lock. Enqueueing under the lock means log
    /// order extends commit order; waiting under it preserves
    /// rollback-on-WAL-failure (no reader observes state the log then
    /// refuses). On WAL failure the transaction is rolled back and the
    /// error returned.
    pub fn commit(mut self) -> StorageResult<()> {
        self.check_open()?;
        if let Some(log) = self.log.take() {
            let redo = std::mem::take(&mut self.redo);
            if !redo.is_empty() {
                if let Err(e) = log.commit(redo) {
                    self.rollback();
                    self.finished = true;
                    return Err(e);
                }
            }
        }
        self.finished = true;
        Ok(())
    }

    /// Aborts: rolls back all mutations and releases the lock.
    pub fn abort(mut self) {
        if !self.finished {
            self.rollback();
            self.finished = true;
        }
    }

    fn rollback(&mut self) {
        // Undo in reverse order; failures here indicate a broken invariant.
        while let Some(op) = self.undo.pop() {
            let result: StorageResult<()> = match op {
                UndoOp::CreateTable { name } => self.guard.catalog.drop_table(&name).map(|_| ()),
                UndoOp::DropTable { table } => self.guard.catalog.restore_table(table),
                UndoOp::Insert { table, rid } => self
                    .guard
                    .catalog
                    .table_mut(&table)
                    .and_then(|t| t.delete(rid))
                    .map(|_| ()),
                UndoOp::Update { table, rid, old } => self
                    .guard
                    .catalog
                    .table_mut(&table)
                    .and_then(|t| t.update(rid, old))
                    .map(|_| ()),
                UndoOp::Delete { table, rid, old } => self
                    .guard
                    .catalog
                    .table_mut(&table)
                    .and_then(|t| t.insert_at(rid, old)),
            };
            result.expect("undo must not fail: storage invariant violated");
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn flights_schema() -> Schema {
        Schema::with_primary_key(
            vec![
                Column::new("fno", DataType::Int64),
                Column::new("dest", DataType::Str),
            ],
            &["fno"],
        )
    }

    fn row(fno: i64, dest: &str) -> Tuple {
        Tuple::new(vec![Value::Int(fno), Value::from(dest)])
    }

    fn populated() -> Database {
        let db = Database::new();
        db.with_txn(|txn| {
            txn.create_table("Flights", flights_schema())?;
            txn.insert("Flights", row(122, "Paris"))?;
            txn.insert("Flights", row(123, "Paris"))?;
            Ok(())
        })
        .unwrap();
        db
    }

    #[test]
    fn commit_makes_changes_visible() {
        let db = populated();
        let read = db.read();
        assert_eq!(read.table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let db = populated();
        let mut txn = db.begin();
        txn.insert("Flights", row(200, "Oslo")).unwrap();
        txn.delete("Flights", RowId(0)).unwrap();
        txn.update("Flights", RowId(1), row(123, "Lyon")).unwrap();
        txn.create_table("Hotels", flights_schema()).unwrap();
        txn.abort();

        let read = db.read();
        let flights = read.table("Flights").unwrap();
        assert_eq!(flights.len(), 2);
        assert_eq!(
            flights.get(RowId(0)).unwrap().values()[1],
            Value::from("Paris")
        );
        assert_eq!(
            flights.get(RowId(1)).unwrap().values()[1],
            Value::from("Paris")
        );
        assert!(read.table("Hotels").is_err());
    }

    #[test]
    fn drop_on_uncommitted_txn_rolls_back() {
        let db = populated();
        {
            let mut txn = db.begin();
            txn.insert("Flights", row(300, "Rome")).unwrap();
            // dropped without commit
        }
        assert_eq!(db.read().table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn with_txn_rolls_back_on_error() {
        let db = populated();
        let result: StorageResult<()> = db.with_txn(|txn| {
            txn.insert("Flights", row(300, "Rome"))?;
            Err(StorageError::Internal("boom".into()))
        });
        assert!(result.is_err());
        assert_eq!(db.read().table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn dropped_table_is_restored_with_rows() {
        let db = populated();
        let mut txn = db.begin();
        txn.drop_table("Flights").unwrap();
        assert!(txn.table("Flights").is_err());
        txn.abort();
        assert_eq!(db.read().table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn txn_sees_own_writes() {
        let db = populated();
        let mut txn = db.begin();
        txn.insert("Flights", row(300, "Rome")).unwrap();
        assert_eq!(txn.table("Flights").unwrap().len(), 3);
        txn.commit().unwrap();
        assert_eq!(db.read().table("Flights").unwrap().len(), 3);
    }

    #[test]
    fn wal_recovery_rebuilds_database() {
        let wal = Wal::in_memory();
        let db = Database::with_wal(wal);
        db.with_txn(|txn| {
            txn.create_table("Flights", flights_schema())?;
            txn.insert("Flights", row(122, "Paris"))?;
            txn.insert("Flights", row(123, "Paris"))?;
            txn.update("Flights", RowId(0), row(122, "Lyon"))?;
            txn.delete("Flights", RowId(1))?;
            Ok(())
        })
        .unwrap();

        // Steal the WAL bytes and recover a fresh database from them.
        let bytes = db.wal_bytes().unwrap();
        let ops = Wal::decode_stream(&bytes).unwrap();
        let mut catalog = Catalog::new();
        for op in ops {
            apply_wal_op(&mut catalog, op).unwrap();
        }
        let flights = catalog.table("Flights").unwrap();
        assert_eq!(flights.len(), 1);
        assert_eq!(
            flights.get(RowId(0)).unwrap().values()[1],
            Value::from("Lyon")
        );
    }

    #[test]
    fn aborted_txn_writes_nothing_to_wal() {
        let db = Database::with_wal(Wal::in_memory());
        let mut txn = db.begin();
        txn.create_table("T", flights_schema()).unwrap();
        txn.abort();
        assert_eq!(db.wal_bytes().unwrap().len(), 0);
    }

    #[test]
    fn file_wal_recovery_end_to_end() {
        let dir = std::env::temp_dir().join(format!("youtopia_db_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::with_wal(Wal::open(&path).unwrap());
            db.with_txn(|txn| {
                txn.create_table("Flights", flights_schema())?;
                txn.insert("Flights", row(122, "Paris"))?;
                Ok(())
            })
            .unwrap();
        }
        let db2 = Database::recover(Wal::open(&path).unwrap()).unwrap();
        assert_eq!(db2.read().table("Flights").unwrap().len(), 1);
        // and it keeps logging
        db2.with_txn(|txn| txn.insert("Flights", row(123, "Paris")).map(|_| ()))
            .unwrap();
        let db3 = Database::recover(Wal::open(&path).unwrap()).unwrap();
        assert_eq!(db3.read().table("Flights").unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_ops_recreate_state() {
        let db = populated();
        db.with_txn(|txn| {
            txn.update("Flights", RowId(0), row(122, "Lyon"))?;
            txn.delete("Flights", RowId(1))
        })
        .unwrap();
        let ops = db.snapshot_ops();
        // 1 CreateTable + 1 live row
        assert_eq!(ops.len(), 2);
        let mut catalog = Catalog::new();
        for op in ops {
            apply_wal_op(&mut catalog, op).unwrap();
        }
        let t = catalog.table("Flights").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId(0)).unwrap().values()[1], Value::from("Lyon"));
    }

    #[test]
    fn checkpoint_compacts_the_wal_and_recovery_agrees() {
        let db = Database::with_wal(Wal::in_memory());
        db.with_txn(|txn| {
            txn.create_table("Flights", flights_schema())?;
            for i in 0..50 {
                txn.insert("Flights", row(i, "Paris"))?;
            }
            Ok(())
        })
        .unwrap();
        // churn: updates and deletes bloat the log
        for round in 0..5 {
            db.with_txn(|txn| {
                for i in 0..50 {
                    txn.update("Flights", RowId(i), row(i as i64, &format!("City{round}")))?;
                }
                Ok(())
            })
            .unwrap();
        }
        db.with_txn(|txn| {
            for i in 0..25 {
                txn.delete("Flights", RowId(i))?;
            }
            Ok(())
        })
        .unwrap();

        let before = db.wal_bytes().unwrap().len();
        db.checkpoint().unwrap();
        let bytes = db.wal_bytes().unwrap();
        let after = bytes.len();
        assert!(
            after < before / 3,
            "checkpoint must shrink the log: {before} -> {after}"
        );

        // replaying the compacted log reproduces the exact state
        let ops = Wal::decode_stream(&bytes).unwrap();
        let mut catalog = Catalog::new();
        for op in ops {
            apply_wal_op(&mut catalog, op).unwrap();
        }
        let t = catalog.table("Flights").unwrap();
        assert_eq!(t.len(), 25);
        assert_eq!(t.get(RowId(30)).unwrap().values()[1], Value::from("City4"));

        // and the database keeps logging normally afterwards
        db.with_txn(|txn| txn.insert("Flights", row(999, "Oslo")).map(|_| ()))
            .unwrap();
        let bytes2 = db.wal_bytes().unwrap();
        let ops2 = Wal::decode_stream(&bytes2).unwrap();
        let mut catalog2 = Catalog::new();
        for op in ops2 {
            apply_wal_op(&mut catalog2, op).unwrap();
        }
        assert_eq!(catalog2.table("Flights").unwrap().len(), 26);
    }

    #[test]
    fn coordination_group_commits_with_the_transaction() {
        let db = Database::with_wal(Wal::in_memory());
        let mut txn = db.begin();
        txn.create_table("T", flights_schema()).unwrap();
        txn.insert("T", row(1, "Paris")).unwrap();
        txn.log_coordination(b"match q1+q2".to_vec()).unwrap();
        txn.commit().unwrap();
        // an aborted transaction's coordination frame never reaches the log
        let mut txn = db.begin();
        txn.insert("T", row(2, "Rome")).unwrap();
        txn.log_coordination(b"never".to_vec()).unwrap();
        txn.abort();

        let (db2, coordination) =
            Database::recover_full(Wal::from_bytes(db.wal_bytes().unwrap())).unwrap();
        assert_eq!(db2.read().table("T").unwrap().len(), 1);
        assert_eq!(coordination, vec![b"match q1+q2".to_vec()]);
    }

    #[test]
    fn append_coordination_batch_syncs_once_and_survives_recovery() {
        let db = Database::with_wal(Wal::in_memory());
        db.append_coordination_batch(&[b"a".as_slice(), b"bb", b"ccc"])
            .unwrap();
        db.append_coordination(b"d").unwrap();
        let (_, coordination) =
            Database::recover_full(Wal::from_bytes(db.wal_bytes().unwrap())).unwrap();
        assert_eq!(
            coordination,
            vec![
                b"a".to_vec(),
                b"bb".to_vec(),
                b"ccc".to_vec(),
                b"d".to_vec()
            ]
        );
        // non-durable databases accept and drop coordination appends
        let plain = Database::new();
        plain.append_coordination(b"x").unwrap();
        assert!(plain.wal_bytes().is_none());
    }

    #[test]
    fn checkpoint_carries_coordination_frames_through() {
        let db = Database::with_wal(Wal::in_memory());
        db.with_txn(|txn| {
            txn.create_table("T", flights_schema())?;
            for i in 0..20 {
                txn.insert("T", row(i, "Paris"))?;
            }
            Ok(())
        })
        .unwrap();
        db.append_coordination(b"reg q7").unwrap();
        // churn so the checkpoint actually rewrites history
        for _ in 0..5 {
            db.with_txn(|txn| txn.update("T", RowId(0), row(0, "Rome")))
                .unwrap();
        }
        db.checkpoint().unwrap();
        let (db2, coordination) =
            Database::recover_full(Wal::from_bytes(db.wal_bytes().unwrap())).unwrap();
        assert_eq!(db2.read().table("T").unwrap().len(), 20);
        assert_eq!(coordination, vec![b"reg q7".to_vec()]);

        // the coordinator-driven variant replaces the coordination set
        db.checkpoint_with_coordination(&[b"compacted".as_slice()])
            .unwrap();
        let (_, coordination) =
            Database::recover_full(Wal::from_bytes(db.wal_bytes().unwrap())).unwrap();
        assert_eq!(coordination, vec![b"compacted".to_vec()]);
    }

    #[test]
    fn transient_tables_never_reach_the_wal() {
        let db = Database::with_wal(Wal::in_memory());
        db.with_txn(|txn| {
            txn.create_table("Flights", flights_schema())?;
            txn.insert("Flights", row(1, "Paris"))?;
            Ok(())
        })
        .unwrap();
        let durable_len = db.wal_bytes().unwrap().len();

        // transient writes are visible but cost zero WAL bytes
        db.with_txn(|txn| {
            txn.create_table("sys_audit_test", flights_schema())?;
            txn.insert("sys_audit_test", row(7, "submit"))?;
            txn.update("sys_audit_test", RowId(0), row(7, "answered"))?;
            txn.insert("sys_audit_test", row(8, "submit"))?;
            txn.delete("sys_audit_test", RowId(1))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.wal_bytes().unwrap().len(), durable_len);
        assert_eq!(db.read().table("sys_audit_test").unwrap().len(), 1);

        // abort still rolls transient mutations back
        let mut txn = db.begin();
        txn.insert("sys_audit_test", row(9, "submit")).unwrap();
        txn.abort();
        assert_eq!(db.read().table("sys_audit_test").unwrap().len(), 1);

        // checkpoints skip transient tables and recovery omits them
        db.checkpoint().unwrap();
        let (db2, _) = Database::recover_full(Wal::from_bytes(db.wal_bytes().unwrap())).unwrap();
        assert_eq!(db2.read().table("Flights").unwrap().len(), 1);
        assert!(db2.read().table("sys_audit_test").is_err());

        // snapshot_ops agrees
        assert!(db
            .snapshot_ops()
            .iter()
            .all(|op| !matches!(op, WalOp::CreateTable { name, .. } if is_transient(name))));
    }

    #[test]
    fn transient_only_txn_commits_without_log_traffic() {
        let db = Database::with_wal(Wal::in_memory());
        db.with_txn(|txn| txn.create_table("sys_only", flights_schema()))
            .unwrap();
        db.with_txn(|txn| txn.insert("sys_only", row(1, "x")).map(|_| ()))
            .unwrap();
        assert_eq!(db.wal_bytes().unwrap().len(), 0);
    }

    #[test]
    fn checkpoint_without_wal_is_a_noop() {
        let db = populated();
        db.checkpoint().unwrap();
        assert_eq!(db.read().table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn operations_on_closed_txn_fail() {
        let db = populated();
        let mut txn = db.begin();
        txn.finished = true; // simulate closed
        assert!(matches!(
            txn.insert("Flights", row(1, "x")),
            Err(StorageError::TransactionClosed)
        ));
        // avoid rollback assertions on drop
        txn.undo.clear();
    }

    #[test]
    fn concurrent_readers_are_allowed() {
        let db = populated();
        let r1 = db.read();
        let r2 = db.read();
        assert_eq!(r1.table("Flights").unwrap().len(), 2);
        assert_eq!(r2.table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn writer_excludes_readers_until_done() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let db = populated();
        let started = Arc::new(AtomicBool::new(false));
        let txn = db.begin();
        let db2 = db.clone();
        let started2 = started.clone();
        let handle = std::thread::spawn(move || {
            started2.store(true, Ordering::SeqCst);
            let read = db2.read(); // blocks until writer finishes
            read.table("Flights").unwrap().len()
        });
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(txn); // releases lock (rollback of nothing)
        assert_eq!(handle.join().unwrap(), 2);
    }
}
