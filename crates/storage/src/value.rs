//! Scalar values.
//!
//! [`Value`] is the single dynamic scalar type flowing through the whole
//! system: storage cells, expression evaluation, entangled-query bindings
//! and answer-relation tuples all use it. It provides a *total* order
//! (floats are ordered via [`f64::total_cmp`], NULL sorts first) so values
//! can serve as index keys, and a stable binary encoding used by the WAL.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::schema::DataType;

/// A dynamically typed scalar value.
///
/// The variant set matches the column types in [`DataType`]; `Null` is a
/// member of every type (SQL semantics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Compares equal to itself inside the storage layer so it
    /// can be indexed; SQL three-valued logic is implemented in the
    /// expression evaluator, not here.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw byte string.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the [`DataType`] of this value, or `None` for NULL
    /// (which belongs to every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks whether this value may be stored in a column of `ty`.
    ///
    /// NULL is compatible with every type; an `Int` is accepted by a
    /// `Float64` column (widening), mirroring common SQL engines.
    pub fn compatible_with(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Float64) => true,
            (v, ty) => v.data_type() == Some(ty),
        }
    }

    /// Coerces the value for storage in a column of `ty` (currently only
    /// int→float widening). Values already of the right type pass through.
    pub fn coerce_to(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float64) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Interprets the value as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the value as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interprets the value as a string slice if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality with numeric type bridging: `Int(1)` equals
    /// `Float(1.0)`. NULL never equals anything here — callers that need
    /// three-valued logic should check [`Value::is_null`] first.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Total-order comparison used for sorting and B-tree indexing.
    ///
    /// Order across type classes: NULL < Bool < numeric < Str < Bytes.
    /// Ints and floats share the numeric class and compare by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Bytes(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// Renders the value the way the SQL layer prints literals
    /// (strings quoted, NULL uppercase).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => {
                // Keep a trailing ".0" so the literal parses back as a float.
                if x.fract() == 0.0 && x.is_finite() {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("X'{hex}'")
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            // Bitwise float equality (via total_cmp) so Eq/Hash are lawful.
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                5u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => {
                write!(f, "x")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_roundtrip() {
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Int(4).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Float(1.5).data_type(), Some(DataType::Float64));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Bytes(vec![1]).data_type(), Some(DataType::Bytes));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn null_is_compatible_with_everything() {
        for ty in [
            DataType::Bool,
            DataType::Int64,
            DataType::Float64,
            DataType::Str,
            DataType::Bytes,
        ] {
            assert!(Value::Null.compatible_with(ty));
        }
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Value::Int(3).compatible_with(DataType::Float64));
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float64),
            Value::Float(3.0)
        );
        // but not the other way round
        assert!(!Value::Float(3.0).compatible_with(DataType::Int64));
    }

    #[test]
    fn sql_eq_bridges_numeric_types_but_not_null() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(Value::Float(2.0).sql_eq(&Value::Int(2)));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(2).sql_eq(&Value::Str("2".into())));
    }

    #[test]
    fn total_order_across_classes() {
        let mut vs = [
            Value::Str("a".into()),
            Value::Null,
            Value::Int(-5),
            Value::Bool(false),
            Value::Float(2.5),
            Value::Bytes(vec![0]),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(false));
        assert_eq!(vs[2], Value::Bool(true));
        assert_eq!(vs[3], Value::Int(-5));
        assert_eq!(vs[4], Value::Float(2.5));
        assert_eq!(vs[5], Value::Str("a".into()));
        assert_eq!(vs[6], Value::Bytes(vec![0]));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Float(4.0).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_is_ordered_consistently() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN after +inf; the key property is consistency.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
    }

    #[test]
    fn sql_literal_rendering() {
        assert_eq!(Value::Null.sql_literal(), "NULL");
        assert_eq!(Value::Bool(true).sql_literal(), "TRUE");
        assert_eq!(Value::Int(42).sql_literal(), "42");
        assert_eq!(Value::Float(2.0).sql_literal(), "2.0");
        assert_eq!(Value::Float(2.25).sql_literal(), "2.25");
        assert_eq!(Value::Str("O'Hare".into()).sql_literal(), "'O''Hare'");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).sql_literal(), "X'ab01'");
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float(1.0));
        assert!(set.contains(&Value::Float(1.0)));
        assert!(!set.contains(&Value::Int(1))); // Eq is strict about type
    }

    #[test]
    fn display_is_unquoted() {
        assert_eq!(Value::Str("Paris".into()).to_string(), "Paris");
        assert_eq!(Value::Int(122).to_string(), "122");
        assert_eq!(Value::Bytes(vec![0xff]).to_string(), "xff");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }
}
