//! # youtopia-storage
//!
//! The relational storage substrate for the Youtopia reproduction
//! (*Coordination through Querying in the Youtopia System*, SIGMOD 2011).
//!
//! The demo paper's architecture (its Figure 2) places the coordination
//! component *inside* the DBMS: entangled queries read regular database
//! tables, the list of pending queries, and apply their joint answers
//! atomically. This crate provides that DBMS core:
//!
//! * [`value::Value`] — the dynamic scalar type with a total order;
//! * [`schema::Schema`] / [`schema::Column`] — table schemas with
//!   validation and primary keys;
//! * [`tuple::Tuple`] — rows, with a stable binary encoding;
//! * [`table::Table`] — heap tables with hash and ordered secondary
//!   [`index::Index`]es;
//! * [`catalog::Catalog`] — the table namespace;
//! * [`db::Database`] — shared handle with undo-logged
//!   [`db::Transaction`]s (serialized writers / concurrent readers) and
//!   optional durability through the [`wal::Wal`] redo log.
//!
//! ## Quick example
//!
//! ```
//! use youtopia_storage::prelude::*;
//!
//! let db = Database::new();
//! db.with_txn(|txn| {
//!     txn.create_table(
//!         "Flights",
//!         Schema::with_primary_key(
//!             vec![
//!                 Column::new("fno", DataType::Int64),
//!                 Column::new("dest", DataType::Str),
//!             ],
//!             &["fno"],
//!         ),
//!     )?;
//!     txn.insert("Flights", Tuple::new(vec![Value::Int(122), Value::from("Paris")]))?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(db.read().table("Flights").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod codec;
pub mod db;
pub mod error;
pub mod group_commit;
pub mod index;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;
pub mod wal;

/// Convenient glob-import of the types most callers need.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::db::{is_transient, Database, ReadTransaction, Transaction, TRANSIENT_PREFIX};
    pub use crate::error::{StorageError, StorageResult};
    pub use crate::group_commit::GroupCommitConfig;
    pub use crate::index::{Index, IndexKind};
    pub use crate::schema::{Column, DataType, Schema};
    pub use crate::table::{RowId, Table};
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
    pub use crate::wal::{Wal, WalOp, WalRecord};
}

pub use prelude::*;
