//! Error types for the storage engine.

use std::fmt;

use crate::schema::DataType;

/// Errors produced by the storage layer.
///
/// Every public fallible operation in this crate returns
/// [`StorageResult`], so callers can match on the precise failure mode
/// (schema violations are distinguished from missing objects, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableAlreadyExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the referenced table.
    ColumnNotFound {
        /// Table that was searched.
        table: String,
        /// Column that was requested.
        column: String,
    },
    /// A tuple's arity does not match the schema it is checked against.
    ArityMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Values the tuple provided.
        actual: usize,
    },
    /// A value's type does not match the column it is stored into.
    TypeMismatch {
        /// Column being written.
        column: String,
        /// Declared column type.
        expected: DataType,
        /// Type of the offending value.
        actual: DataType,
    },
    /// A NULL was written into a non-nullable column.
    NullViolation {
        /// Column being written.
        column: String,
    },
    /// A duplicate key was inserted into a unique index / primary key.
    UniqueViolation {
        /// Index whose uniqueness constraint was violated.
        index: String,
        /// Rendering of the duplicate key.
        key: String,
    },
    /// The referenced row id does not exist (it was never allocated or
    /// has been deleted).
    RowNotFound(u64),
    /// An index with this name already exists on the table.
    IndexAlreadyExists(String),
    /// No index with this name exists on the table.
    IndexNotFound(String),
    /// The transaction has already been committed or aborted.
    TransactionClosed,
    /// The WAL contained bytes that could not be decoded.
    WalCorrupt(String),
    /// An I/O error occurred while reading or writing the WAL.
    WalIo(String),
    /// Catch-all for invariant violations that indicate a bug.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableAlreadyExists(name) => {
                write!(f, "table '{name}' already exists")
            }
            StorageError::TableNotFound(name) => write!(f, "table '{name}' not found"),
            StorageError::ColumnNotFound { table, column } => {
                write!(f, "column '{column}' not found in table '{table}'")
            }
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, tuple has {actual}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column '{column}': expected {expected}, got {actual}"
            ),
            StorageError::NullViolation { column } => {
                write!(f, "NULL written to non-nullable column '{column}'")
            }
            StorageError::UniqueViolation { index, key } => {
                write!(
                    f,
                    "unique constraint violated on index '{index}' for key {key}"
                )
            }
            StorageError::RowNotFound(rid) => write!(f, "row id {rid} not found"),
            StorageError::IndexAlreadyExists(name) => {
                write!(f, "index '{name}' already exists")
            }
            StorageError::IndexNotFound(name) => write!(f, "index '{name}' not found"),
            StorageError::TransactionClosed => {
                write!(f, "transaction is already committed or aborted")
            }
            StorageError::WalCorrupt(msg) => write!(f, "WAL corrupt: {msg}"),
            StorageError::WalIo(msg) => write!(f, "WAL I/O error: {msg}"),
            StorageError::Internal(msg) => write!(f, "internal storage error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_human_readable() {
        let cases: Vec<(StorageError, &str)> = vec![
            (
                StorageError::TableAlreadyExists("Flights".into()),
                "table 'Flights' already exists",
            ),
            (
                StorageError::TableNotFound("Hotels".into()),
                "table 'Hotels' not found",
            ),
            (
                StorageError::ColumnNotFound {
                    table: "Flights".into(),
                    column: "dest".into(),
                },
                "column 'dest' not found in table 'Flights'",
            ),
            (
                StorageError::ArityMismatch {
                    expected: 3,
                    actual: 2,
                },
                "arity mismatch: schema has 3 columns, tuple has 2",
            ),
            (StorageError::RowNotFound(7), "row id 7 not found"),
            (
                StorageError::TransactionClosed,
                "transaction is already committed or aborted",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn type_mismatch_mentions_both_types() {
        let err = StorageError::TypeMismatch {
            column: "price".into(),
            expected: DataType::Float64,
            actual: DataType::Str,
        };
        let s = err.to_string();
        assert!(s.contains("price"));
        assert!(s.contains("FLOAT"));
        assert!(s.contains("STRING"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::TableNotFound("a".into()),
            StorageError::TableNotFound("a".into())
        );
        assert_ne!(
            StorageError::TableNotFound("a".into()),
            StorageError::TableNotFound("b".into())
        );
    }
}
