//! Secondary indexes over tables.
//!
//! Two physical forms are provided: a hash index for point lookups
//! (the common case for entangled-query candidate probes) and an ordered
//! index for range scans. Both map a key — the projection of a row onto
//! the indexed columns — to the set of row ids holding that key.

use std::collections::{BTreeMap, HashMap};

use crate::error::{StorageError, StorageResult};
use crate::table::RowId;
use crate::tuple::Tuple;
use crate::value::Value;

/// Physical index kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map; supports equality probes only.
    Hash,
    /// Ordered map; supports equality probes and range scans.
    Ordered,
}

/// An index key: the indexed columns' values, in index-column order.
pub type IndexKey = Vec<Value>;

#[derive(Debug, Clone)]
enum IndexStore {
    Hash(HashMap<IndexKey, Vec<RowId>>),
    Ordered(BTreeMap<IndexKey, Vec<RowId>>),
}

/// A secondary (or primary) index on a subset of a table's columns.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    columns: Vec<usize>,
    unique: bool,
    store: IndexStore,
}

impl Index {
    /// Creates an empty index over the given column positions.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Self {
        let store = match kind {
            IndexKind::Hash => IndexStore::Hash(HashMap::new()),
            IndexKind::Ordered => IndexStore::Ordered(BTreeMap::new()),
        };
        Index {
            name: name.into(),
            columns,
            unique,
            store,
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Whether the index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Physical kind of this index.
    pub fn kind(&self) -> IndexKind {
        match self.store {
            IndexStore::Hash(_) => IndexKind::Hash,
            IndexStore::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Extracts this index's key from a full row.
    pub fn key_of(&self, tuple: &Tuple) -> IndexKey {
        self.columns
            .iter()
            .map(|&i| tuple.values()[i].clone())
            .collect()
    }

    /// Number of distinct keys currently present.
    pub fn key_count(&self) -> usize {
        match &self.store {
            IndexStore::Hash(m) => m.len(),
            IndexStore::Ordered(m) => m.len(),
        }
    }

    /// Registers `rid` under the key extracted from `tuple`.
    pub fn insert(&mut self, tuple: &Tuple, rid: RowId) -> StorageResult<()> {
        let key = self.key_of(tuple);
        let entry = match &mut self.store {
            IndexStore::Hash(m) => m.entry(key.clone()).or_default(),
            IndexStore::Ordered(m) => m.entry(key.clone()).or_default(),
        };
        if self.unique && !entry.is_empty() {
            return Err(StorageError::UniqueViolation {
                index: self.name.clone(),
                key: format_key(&key),
            });
        }
        entry.push(rid);
        Ok(())
    }

    /// Removes `rid` from the posting list of `tuple`'s key.
    pub fn remove(&mut self, tuple: &Tuple, rid: RowId) {
        let key = self.key_of(tuple);
        let remove_from = |list: &mut Vec<RowId>| {
            list.retain(|&r| r != rid);
            list.is_empty()
        };
        match &mut self.store {
            IndexStore::Hash(m) => {
                if let Some(list) = m.get_mut(&key) {
                    if remove_from(list) {
                        m.remove(&key);
                    }
                }
            }
            IndexStore::Ordered(m) => {
                if let Some(list) = m.get_mut(&key) {
                    if remove_from(list) {
                        m.remove(&key);
                    }
                }
            }
        }
    }

    /// Row ids whose key equals `key` (empty slice if none).
    pub fn probe(&self, key: &[Value]) -> &[RowId] {
        match &self.store {
            IndexStore::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            IndexStore::Ordered(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Row ids whose key lies in `[low, high]` (inclusive both ends).
    /// Only supported on ordered indexes.
    pub fn range(&self, low: &[Value], high: &[Value]) -> StorageResult<Vec<RowId>> {
        match &self.store {
            IndexStore::Ordered(m) => {
                let mut out = Vec::new();
                for (_, rids) in m.range(low.to_vec()..=high.to_vec()) {
                    out.extend_from_slice(rids);
                }
                Ok(out)
            }
            IndexStore::Hash(_) => Err(StorageError::Internal(format!(
                "range scan on hash index '{}'",
                self.name
            ))),
        }
    }

    /// Clears all entries (used when a table is truncated / rebuilt).
    pub fn clear(&mut self) {
        match &mut self.store {
            IndexStore::Hash(m) => m.clear(),
            IndexStore::Ordered(m) => m.clear(),
        }
    }
}

fn format_key(key: &[Value]) -> String {
    let parts: Vec<String> = key.iter().map(|v| v.sql_literal()).collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(fno: i64, dest: &str) -> Tuple {
        Tuple::new(vec![Value::Int(fno), Value::from(dest)])
    }

    #[test]
    fn hash_index_probe() {
        let mut idx = Index::new("by_dest", vec![1], false, IndexKind::Hash);
        idx.insert(&row(122, "Paris"), RowId(1)).unwrap();
        idx.insert(&row(123, "Paris"), RowId(2)).unwrap();
        idx.insert(&row(136, "Rome"), RowId(3)).unwrap();
        let rids = idx.probe(&[Value::from("Paris")]);
        assert_eq!(rids, &[RowId(1), RowId(2)]);
        assert!(idx.probe(&[Value::from("Oslo")]).is_empty());
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = Index::new("pk", vec![0], true, IndexKind::Hash);
        idx.insert(&row(122, "Paris"), RowId(1)).unwrap();
        let err = idx.insert(&row(122, "Rome"), RowId(2)).unwrap_err();
        match err {
            StorageError::UniqueViolation { index, key } => {
                assert_eq!(index, "pk");
                assert_eq!(key, "(122)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_shrinks_posting_lists() {
        let mut idx = Index::new("by_dest", vec![1], false, IndexKind::Hash);
        idx.insert(&row(122, "Paris"), RowId(1)).unwrap();
        idx.insert(&row(123, "Paris"), RowId(2)).unwrap();
        idx.remove(&row(122, "Paris"), RowId(1));
        assert_eq!(idx.probe(&[Value::from("Paris")]), &[RowId(2)]);
        idx.remove(&row(123, "Paris"), RowId(2));
        assert_eq!(idx.key_count(), 0);
        // removing again is a no-op
        idx.remove(&row(123, "Paris"), RowId(2));
    }

    #[test]
    fn unique_key_can_be_reused_after_removal() {
        let mut idx = Index::new("pk", vec![0], true, IndexKind::Hash);
        idx.insert(&row(1, "a"), RowId(1)).unwrap();
        idx.remove(&row(1, "a"), RowId(1));
        idx.insert(&row(1, "b"), RowId(2)).unwrap();
        assert_eq!(idx.probe(&[Value::Int(1)]), &[RowId(2)]);
    }

    #[test]
    fn ordered_index_range_scan() {
        let mut idx = Index::new("by_fno", vec![0], false, IndexKind::Ordered);
        for (i, fno) in [122i64, 123, 134, 136].iter().enumerate() {
            idx.insert(&row(*fno, "x"), RowId(i as u64)).unwrap();
        }
        let rids = idx.range(&[Value::Int(123)], &[Value::Int(134)]).unwrap();
        assert_eq!(rids, vec![RowId(1), RowId(2)]);
        // full range
        let all = idx.range(&[Value::Int(0)], &[Value::Int(999)]).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn range_on_hash_index_errors() {
        let idx = Index::new("h", vec![0], false, IndexKind::Hash);
        assert!(idx.range(&[Value::Int(0)], &[Value::Int(1)]).is_err());
    }

    #[test]
    fn multi_column_keys() {
        let mut idx = Index::new("c", vec![0, 1], false, IndexKind::Hash);
        idx.insert(&row(1, "a"), RowId(1)).unwrap();
        idx.insert(&row(1, "b"), RowId(2)).unwrap();
        assert_eq!(idx.probe(&[Value::Int(1), Value::from("a")]), &[RowId(1)]);
        assert_eq!(idx.probe(&[Value::Int(1), Value::from("b")]), &[RowId(2)]);
        assert!(idx.probe(&[Value::Int(1)]).is_empty());
    }

    #[test]
    fn clear_empties_index() {
        let mut idx = Index::new("c", vec![0], false, IndexKind::Ordered);
        idx.insert(&row(1, "a"), RowId(1)).unwrap();
        idx.clear();
        assert_eq!(idx.key_count(), 0);
    }
}
