//! Tuples (rows) and their binary encoding.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::value::Value;

/// A row: an ordered sequence of [`Value`]s.
///
/// Tuples are schema-agnostic; validation against a schema happens in
/// [`crate::schema::Schema::validate`]. The same type carries rows in the
/// executor and answer tuples in the coordination layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty (zero-arity) tuple.
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Borrow the values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the owned values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at position `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replaces the value at `idx`; errors if out of range.
    pub fn set(&mut self, idx: usize, value: Value) -> StorageResult<()> {
        match self.values.get_mut(idx) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StorageError::Internal(format!(
                "tuple index {idx} out of range for arity {}",
                self.values.len()
            ))),
        }
    }

    /// Concatenates two tuples (used by join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projects the tuple onto the given positions.
    ///
    /// # Panics
    /// Panics when a position is out of range: projections are produced by
    /// the planner against a validated schema, so this indicates a bug.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Encodes the tuple into a length-prefixed binary frame
    /// (used by the WAL). The format is:
    /// `u32 arity` then per value a 1-byte tag followed by the payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.values.len() * 8);
        buf.put_u32(self.values.len() as u32);
        for v in &self.values {
            match v {
                Value::Null => buf.put_u8(0),
                Value::Bool(b) => {
                    buf.put_u8(1);
                    buf.put_u8(*b as u8);
                }
                Value::Int(i) => {
                    buf.put_u8(2);
                    buf.put_i64(*i);
                }
                Value::Float(f) => {
                    buf.put_u8(3);
                    buf.put_f64(*f);
                }
                Value::Str(s) => {
                    buf.put_u8(4);
                    buf.put_u32(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                Value::Bytes(b) => {
                    buf.put_u8(5);
                    buf.put_u32(b.len() as u32);
                    buf.put_slice(b);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a tuple previously produced by [`Tuple::encode`].
    pub fn decode(mut buf: &[u8]) -> StorageResult<Tuple> {
        fn need(buf: &[u8], n: usize) -> StorageResult<()> {
            if buf.remaining() < n {
                Err(StorageError::WalCorrupt(format!(
                    "tuple decode: needed {n} bytes, have {}",
                    buf.remaining()
                )))
            } else {
                Ok(())
            }
        }
        need(buf, 4)?;
        let arity = buf.get_u32() as usize;
        // every value costs at least its 1-byte tag, so an arity larger
        // than the remaining payload is corruption — reject it before
        // trusting it as an allocation size
        if arity > buf.remaining() {
            return Err(StorageError::WalCorrupt(format!(
                "tuple decode: arity {arity} exceeds {} payload bytes",
                buf.remaining()
            )));
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            need(buf, 1)?;
            let tag = buf.get_u8();
            let v = match tag {
                0 => Value::Null,
                1 => {
                    need(buf, 1)?;
                    Value::Bool(buf.get_u8() != 0)
                }
                2 => {
                    need(buf, 8)?;
                    Value::Int(buf.get_i64())
                }
                3 => {
                    need(buf, 8)?;
                    Value::Float(buf.get_f64())
                }
                4 => {
                    need(buf, 4)?;
                    let len = buf.get_u32() as usize;
                    need(buf, len)?;
                    let s = std::str::from_utf8(&buf[..len])
                        .map_err(|e| StorageError::WalCorrupt(format!("bad utf8: {e}")))?
                        .to_string();
                    buf.advance(len);
                    Value::Str(s)
                }
                5 => {
                    need(buf, 4)?;
                    let len = buf.get_u32() as usize;
                    need(buf, len)?;
                    let b = buf[..len].to_vec();
                    buf.advance(len);
                    Value::Bytes(b)
                }
                t => {
                    return Err(StorageError::WalCorrupt(format!("unknown value tag {t}")));
                }
            };
            values.push(v);
        }
        if buf.has_remaining() {
            return Err(StorageError::WalCorrupt(format!(
                "tuple decode: {} trailing bytes",
                buf.remaining()
            )));
        }
        Ok(Tuple { values })
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.sql_literal())?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.75),
            Value::from("Paris"),
            Value::Bytes(vec![0, 255, 7]),
        ])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let decoded = Tuple::decode(&t.encode()).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample().encode();
        for cut in [0usize, 3, 5, bytes.len() - 1] {
            let err = Tuple::decode(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = sample().encode().to_vec();
        bytes.push(9);
        assert!(matches!(
            Tuple::decode(&bytes),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(42);
        assert!(matches!(
            Tuple::decode(&buf),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::from("x")]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::from("x"), Value::Int(1)]);
    }

    #[test]
    fn set_and_get() {
        let mut t = Tuple::new(vec![Value::Int(1)]);
        t.set(0, Value::Int(9)).unwrap();
        assert_eq!(t.get(0), Some(&Value::Int(9)));
        assert!(t.set(5, Value::Null).is_err());
        assert!(t.get(5).is_none());
    }

    #[test]
    fn display_uses_sql_literals() {
        let t = Tuple::new(vec![Value::from("Kramer"), Value::Int(122)]);
        assert_eq!(t.to_string(), "('Kramer', 122)");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::Int).collect();
        assert_eq!(t.arity(), 3);
    }
}
