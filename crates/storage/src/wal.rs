//! Write-ahead (redo) log.
//!
//! Committed transactions append one frame per logical operation, so a
//! database can be rebuilt by replaying the log from the start
//! ([`crate::db::Database::recover`]). Frames are checksummed; a torn
//! final frame (crash mid-append) is tolerated and treated as EOF, but
//! corruption in the middle of the log is reported as an error.
//!
//! Frame layout: `u32 payload_len | u32 fnv1a(payload) | payload`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{StorageError, StorageResult};
use crate::schema::{Column, DataType, Schema};
use crate::tuple::Tuple;

/// One logical redo operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A table was created.
    CreateTable {
        /// Table name (display case).
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// A table was dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// A row was inserted.
    Insert {
        /// Table name.
        table: String,
        /// Row id the row was stored under.
        rid: u64,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// A row was updated in place.
    Update {
        /// Table name.
        table: String,
        /// Row id.
        rid: u64,
        /// The new tuple.
        tuple: Tuple,
    },
    /// A row was deleted.
    Delete {
        /// Table name.
        table: String,
        /// Row id.
        rid: u64,
    },
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.remaining() < 4 {
        return Err(StorageError::WalCorrupt("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(StorageError::WalCorrupt("truncated string body".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|e| StorageError::WalCorrupt(format!("bad utf8 in WAL: {e}")))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn put_tuple(buf: &mut BytesMut, t: &Tuple) {
    let enc = t.encode();
    buf.put_u32(enc.len() as u32);
    buf.put_slice(&enc);
}

fn get_tuple(buf: &mut &[u8]) -> StorageResult<Tuple> {
    if buf.remaining() < 4 {
        return Err(StorageError::WalCorrupt("truncated tuple length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(StorageError::WalCorrupt("truncated tuple body".into()));
    }
    let t = Tuple::decode(&buf[..len])?;
    buf.advance(len);
    Ok(t)
}

fn datatype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
        DataType::Bytes => 4,
    }
}

fn datatype_from_tag(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Str,
        4 => DataType::Bytes,
        t => {
            return Err(StorageError::WalCorrupt(format!(
                "unknown datatype tag {t}"
            )))
        }
    })
}

fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u16(schema.columns().len() as u16);
    for col in schema.columns() {
        put_str(buf, &col.name);
        buf.put_u8(datatype_tag(col.ty));
        buf.put_u8(col.nullable as u8);
    }
    buf.put_u16(schema.primary_key().len() as u16);
    for &pos in schema.primary_key() {
        buf.put_u16(pos as u16);
    }
}

fn get_schema(buf: &mut &[u8]) -> StorageResult<Schema> {
    if buf.remaining() < 2 {
        return Err(StorageError::WalCorrupt("truncated schema".into()));
    }
    let ncols = buf.get_u16() as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = get_str(buf)?;
        if buf.remaining() < 2 {
            return Err(StorageError::WalCorrupt("truncated column".into()));
        }
        let ty = datatype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        columns.push(Column { name, ty, nullable });
    }
    if buf.remaining() < 2 {
        return Err(StorageError::WalCorrupt("truncated pk count".into()));
    }
    let npk = buf.get_u16() as usize;
    let mut names: Vec<String> = Vec::with_capacity(npk);
    for _ in 0..npk {
        if buf.remaining() < 2 {
            return Err(StorageError::WalCorrupt("truncated pk entry".into()));
        }
        let pos = buf.get_u16() as usize;
        let col = columns
            .get(pos)
            .ok_or_else(|| StorageError::WalCorrupt(format!("pk position {pos} out of range")))?;
        names.push(col.name.clone());
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(Schema::with_primary_key(columns, &name_refs))
}

impl WalOp {
    fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalOp::CreateTable { name, schema } => {
                buf.put_u8(0);
                put_str(&mut buf, name);
                put_schema(&mut buf, schema);
            }
            WalOp::DropTable { name } => {
                buf.put_u8(1);
                put_str(&mut buf, name);
            }
            WalOp::Insert { table, rid, tuple } => {
                buf.put_u8(2);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
                put_tuple(&mut buf, tuple);
            }
            WalOp::Update { table, rid, tuple } => {
                buf.put_u8(3);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
                put_tuple(&mut buf, tuple);
            }
            WalOp::Delete { table, rid } => {
                buf.put_u8(4);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
            }
        }
        buf
    }

    fn decode(mut payload: &[u8]) -> StorageResult<WalOp> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(StorageError::WalCorrupt("empty frame".into()));
        }
        let tag = buf.get_u8();
        let op = match tag {
            0 => {
                let name = get_str(buf)?;
                let schema = get_schema(buf)?;
                WalOp::CreateTable { name, schema }
            }
            1 => WalOp::DropTable {
                name: get_str(buf)?,
            },
            2 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                let tuple = get_tuple(buf)?;
                WalOp::Insert { table, rid, tuple }
            }
            3 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                let tuple = get_tuple(buf)?;
                WalOp::Update { table, rid, tuple }
            }
            4 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                WalOp::Delete { table, rid }
            }
            t => return Err(StorageError::WalCorrupt(format!("unknown op tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(StorageError::WalCorrupt("trailing bytes in frame".into()));
        }
        Ok(op)
    }
}

/// The backing sink of a WAL: a real file or an in-memory buffer
/// (useful in tests and benches).
enum WalSink {
    File(File),
    Memory(Vec<u8>),
}

/// An append-only redo log.
pub struct Wal {
    sink: WalSink,
}

impl Wal {
    /// Opens (or creates) a file-backed WAL in append mode.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| StorageError::WalIo(e.to_string()))?;
        Ok(Wal {
            sink: WalSink::File(file),
        })
    }

    /// Creates an in-memory WAL.
    pub fn in_memory() -> Wal {
        Wal {
            sink: WalSink::Memory(Vec::new()),
        }
    }

    /// Appends one operation as a checksummed frame.
    pub fn append(&mut self, op: &WalOp) -> StorageResult<()> {
        let payload = op.encode();
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32(payload.len() as u32);
        frame.put_u32(fnv1a(&payload));
        frame.put_slice(&payload);
        match &mut self.sink {
            WalSink::File(f) => {
                f.write_all(&frame)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
            }
            WalSink::Memory(buf) => buf.extend_from_slice(&frame),
        }
        Ok(())
    }

    /// Flushes buffered bytes to stable storage (no-op for memory sinks).
    pub fn sync(&mut self) -> StorageResult<()> {
        if let WalSink::File(f) = &mut self.sink {
            f.sync_data()
                .map_err(|e| StorageError::WalIo(e.to_string()))?;
        }
        Ok(())
    }

    /// Discards all frames (used by checkpointing, which immediately
    /// re-appends a snapshot of the live state).
    pub fn reset(&mut self) -> StorageResult<()> {
        match &mut self.sink {
            WalSink::File(f) => {
                f.set_len(0)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                use std::io::Seek;
                f.seek(std::io::SeekFrom::Start(0))
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                Ok(())
            }
            WalSink::Memory(buf) => {
                buf.clear();
                Ok(())
            }
        }
    }

    /// Reads every complete frame currently in the log.
    ///
    /// A truncated *final* frame (torn write) ends replay silently; a
    /// checksum mismatch anywhere is an error.
    pub fn replay(&mut self) -> StorageResult<Vec<WalOp>> {
        let bytes = match &mut self.sink {
            WalSink::File(f) => {
                let mut v = Vec::new();
                use std::io::Seek;
                f.seek(std::io::SeekFrom::Start(0))
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                f.read_to_end(&mut v)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                v
            }
            WalSink::Memory(buf) => buf.clone(),
        };
        Self::decode_stream(&bytes)
    }

    /// Decodes a raw byte stream of frames (exposed for tests).
    pub fn decode_stream(mut bytes: &[u8]) -> StorageResult<Vec<WalOp>> {
        let mut ops = Vec::new();
        while bytes.remaining() >= 8 {
            let len = (&bytes[0..4]).get_u32() as usize;
            if bytes.remaining() < 8 + len {
                // torn final frame: stop replay here
                break;
            }
            let checksum = (&bytes[4..8]).get_u32();
            let payload = &bytes[8..8 + len];
            if fnv1a(payload) != checksum {
                return Err(StorageError::WalCorrupt("checksum mismatch".into()));
            }
            ops.push(WalOp::decode(payload)?);
            bytes.advance(8 + len);
        }
        Ok(ops)
    }

    /// Raw length in bytes (memory sinks only; for tests).
    pub fn raw_len(&self) -> Option<usize> {
        match &self.sink {
            WalSink::Memory(buf) => Some(buf.len()),
            WalSink::File(_) => None,
        }
    }

    /// Raw bytes (memory sinks only; for tests).
    pub fn raw_bytes(&self) -> Option<&[u8]> {
        match &self.sink {
            WalSink::Memory(buf) => Some(buf),
            WalSink::File(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_schema() -> Schema {
        Schema::with_primary_key(
            vec![
                Column::new("fno", DataType::Int64),
                Column::nullable("dest", DataType::Str),
            ],
            &["fno"],
        )
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateTable {
                name: "Flights".into(),
                schema: sample_schema(),
            },
            WalOp::Insert {
                table: "Flights".into(),
                rid: 0,
                tuple: Tuple::new(vec![Value::Int(122), Value::from("Paris")]),
            },
            WalOp::Update {
                table: "Flights".into(),
                rid: 0,
                tuple: Tuple::new(vec![Value::Int(122), Value::from("Rome")]),
            },
            WalOp::Delete {
                table: "Flights".into(),
                rid: 0,
            },
            WalOp::DropTable {
                name: "Flights".into(),
            },
        ]
    }

    #[test]
    fn memory_wal_roundtrip() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed, sample_ops());
    }

    #[test]
    fn file_wal_roundtrip() {
        let dir = std::env::temp_dir().join(format!("youtopia_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            wal.sync().unwrap();
        }
        // reopen and replay
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), sample_ops());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_frame_is_tolerated() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let bytes = wal.raw_bytes().unwrap().to_vec();
        // chop off the last 3 bytes: final frame is torn
        let truncated = &bytes[..bytes.len() - 3];
        let ops = Wal::decode_stream(truncated).unwrap();
        assert_eq!(ops.len(), sample_ops().len() - 1);
    }

    #[test]
    fn corruption_is_detected() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let mut bytes = wal.raw_bytes().unwrap().to_vec();
        // flip a byte inside the first frame's payload
        bytes[10] ^= 0xff;
        assert!(matches!(
            Wal::decode_stream(&bytes),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let mut wal = Wal::in_memory();
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn schema_with_pk_survives_roundtrip() {
        let mut wal = Wal::in_memory();
        wal.append(&WalOp::CreateTable {
            name: "T".into(),
            schema: sample_schema(),
        })
        .unwrap();
        match &wal.replay().unwrap()[0] {
            WalOp::CreateTable { schema, .. } => {
                assert_eq!(schema.primary_key(), &[0]);
                assert!(schema.columns()[1].nullable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
