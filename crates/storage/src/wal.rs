//! Write-ahead (redo) log.
//!
//! Committed transactions append one frame per logical operation, so a
//! database can be rebuilt by replaying the log from the start
//! ([`crate::db::Database::recover`]). Frames are checksummed; a torn
//! final frame (crash mid-append) is *truncated away* on replay so the
//! log recovers to its last consistent prefix, but corruption in the
//! middle of the log is reported as an error.
//!
//! The log carries two namespaces of records ([`WalRecord`]):
//!
//! * **storage operations** ([`WalOp`]) — table DML/DDL, replayed by
//!   [`crate::db::Database::recover`];
//! * **coordination frames** — opaque, length-prefixed payloads owned
//!   by the coordination layer (pending-query registrations, match
//!   commits). Storage treats them as pass-through bytes: they ride
//!   the same checksummed framing, group-commit with storage
//!   transactions, and survive checkpointing, but only the
//!   coordinator interprets them.
//!
//! Frame layout: `u32 payload_len | u32 fnv1a(payload_len ∥ payload) |
//! payload`; the payload's first byte is a record tag (`0..=4` storage
//! ops, `5` coordination, `6` commit boundary). The checksum covers
//! the length field so a corrupted length that still reads as
//! in-range is detected rather than mis-framing the rest of the log.
//!
//! # Commit boundaries (format v2)
//!
//! Every commit group — one transaction's redo records, or one batch
//! of coordination frames — is terminated by a one-byte
//! [`WalRecord::CommitBoundary`] marker frame before the group is
//! synced. The marker is the durability receipt the replay side keys
//! on: a suffix that does not end in a complete marker was never
//! acknowledged to anyone, so replay may discard it wholesale.
//!
//! This is a *logical* format version bump (v2) realized as a new
//! record tag rather than a file-header change: v2 readers replay v1
//! (pre-marker) logs unchanged — a log with no marker frames keeps the
//! v1 failure semantics below — while v1 readers fail loudly on the
//! unknown tag `6` instead of silently misreading a v2 log.
//!
//! # Failure model
//!
//! The model is *crash consistency*, not arbitrary bit rot: after a
//! crash the log holds every synced byte intact, plus an arbitrary
//! subset of the unsynced suffix's bytes (append tears, out-of-order
//! sector persistence within an unsynced multi-frame batch).
//!
//! With commit markers (v2 logs), recovery is automatic: the first
//! inconsistency — a partial final frame, a checksum failure, or a
//! clean end-of-log with no terminating marker — rolls the log back to
//! the **last complete commit boundary** and truncates everything
//! after it. That covers the multi-frame out-of-order tear (frame k
//! torn, frame k+1 landed — with or without the group's trailing
//! marker having landed) that v1 logs could only surface as
//! `WalCorrupt` needing manual truncation. Discarded bytes are always
//! un-acknowledged: acknowledgment happens only after the marker and
//! the sync, so a commit whose marker is durable survives, and a
//! commit whose marker is not was never promised to anyone.
//!
//! What stays deliberately loud:
//!
//! * **v1 (pre-marker) logs** keep the old rules — only a tear
//!   confined to the final frame is truncated; a mid-log checksum
//!   failure with frames after it is reported as `WalCorrupt`, because
//!   without markers it is indistinguishable from bit rot on synced
//!   data.
//! * **Corruption before the first marker** of a v2 log (nothing was
//!   ever committed, so there is no boundary to roll back to) is
//!   reported like a v1 mid-log failure.
//! * **A checksum-valid frame that fails record decode** is reported
//!   everywhere: a verified checksum means the bytes are exactly what
//!   was written, so the failure is a writer bug or bit rot, never a
//!   tear.
//!
//! The inherent ambiguity of length-prefixed framing remains: a
//! corrupted length field that claims more bytes than the log holds
//! reads as a partial final frame and recovers to the preceding
//! commit boundary.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::codec::{get_str, put_str};
use crate::error::{StorageError, StorageResult};
use crate::schema::{Column, DataType, Schema};
use crate::tuple::Tuple;

/// One logical redo operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A table was created.
    CreateTable {
        /// Table name (display case).
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// A table was dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// A row was inserted.
    Insert {
        /// Table name.
        table: String,
        /// Row id the row was stored under.
        rid: u64,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// A row was updated in place.
    Update {
        /// Table name.
        table: String,
        /// Row id.
        rid: u64,
        /// The new tuple.
        tuple: Tuple,
    },
    /// A row was deleted.
    Delete {
        /// Table name.
        table: String,
        /// Row id.
        rid: u64,
    },
}

/// Frame checksum: fnv1a over the big-endian length field followed by
/// the payload, so a bit flip in the length prefix fails verification
/// instead of silently re-framing the log.
fn frame_checksum(len: u32, payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for b in len.to_be_bytes().iter().chain(payload) {
        hash ^= *b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_tuple(buf: &mut BytesMut, t: &Tuple) {
    let enc = t.encode();
    buf.put_u32(enc.len() as u32);
    buf.put_slice(&enc);
}

fn get_tuple(buf: &mut &[u8]) -> StorageResult<Tuple> {
    if buf.remaining() < 4 {
        return Err(StorageError::WalCorrupt("truncated tuple length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(StorageError::WalCorrupt("truncated tuple body".into()));
    }
    let t = Tuple::decode(&buf[..len])?;
    buf.advance(len);
    Ok(t)
}

fn datatype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
        DataType::Bytes => 4,
    }
}

fn datatype_from_tag(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Str,
        4 => DataType::Bytes,
        t => {
            return Err(StorageError::WalCorrupt(format!(
                "unknown datatype tag {t}"
            )))
        }
    })
}

fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u16(schema.columns().len() as u16);
    for col in schema.columns() {
        put_str(buf, &col.name);
        buf.put_u8(datatype_tag(col.ty));
        buf.put_u8(col.nullable as u8);
    }
    buf.put_u16(schema.primary_key().len() as u16);
    for &pos in schema.primary_key() {
        buf.put_u16(pos as u16);
    }
}

fn get_schema(buf: &mut &[u8]) -> StorageResult<Schema> {
    if buf.remaining() < 2 {
        return Err(StorageError::WalCorrupt("truncated schema".into()));
    }
    let ncols = buf.get_u16() as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = get_str(buf)?;
        if buf.remaining() < 2 {
            return Err(StorageError::WalCorrupt("truncated column".into()));
        }
        let ty = datatype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        columns.push(Column { name, ty, nullable });
    }
    if buf.remaining() < 2 {
        return Err(StorageError::WalCorrupt("truncated pk count".into()));
    }
    let npk = buf.get_u16() as usize;
    let mut names: Vec<String> = Vec::with_capacity(npk);
    for _ in 0..npk {
        if buf.remaining() < 2 {
            return Err(StorageError::WalCorrupt("truncated pk entry".into()));
        }
        let pos = buf.get_u16() as usize;
        let col = columns
            .get(pos)
            .ok_or_else(|| StorageError::WalCorrupt(format!("pk position {pos} out of range")))?;
        names.push(col.name.clone());
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(Schema::with_primary_key(columns, &name_refs))
}

impl WalOp {
    fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalOp::CreateTable { name, schema } => {
                buf.put_u8(0);
                put_str(&mut buf, name);
                put_schema(&mut buf, schema);
            }
            WalOp::DropTable { name } => {
                buf.put_u8(1);
                put_str(&mut buf, name);
            }
            WalOp::Insert { table, rid, tuple } => {
                buf.put_u8(2);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
                put_tuple(&mut buf, tuple);
            }
            WalOp::Update { table, rid, tuple } => {
                buf.put_u8(3);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
                put_tuple(&mut buf, tuple);
            }
            WalOp::Delete { table, rid } => {
                buf.put_u8(4);
                put_str(&mut buf, table);
                buf.put_u64(*rid);
            }
        }
        buf
    }

    fn decode(mut payload: &[u8]) -> StorageResult<WalOp> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(StorageError::WalCorrupt("empty frame".into()));
        }
        let tag = buf.get_u8();
        let op = match tag {
            0 => {
                let name = get_str(buf)?;
                let schema = get_schema(buf)?;
                WalOp::CreateTable { name, schema }
            }
            1 => WalOp::DropTable {
                name: get_str(buf)?,
            },
            2 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                let tuple = get_tuple(buf)?;
                WalOp::Insert { table, rid, tuple }
            }
            3 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                let tuple = get_tuple(buf)?;
                WalOp::Update { table, rid, tuple }
            }
            4 => {
                let table = get_str(buf)?;
                if buf.remaining() < 8 {
                    return Err(StorageError::WalCorrupt("truncated rid".into()));
                }
                let rid = buf.get_u64();
                WalOp::Delete { table, rid }
            }
            t => return Err(StorageError::WalCorrupt(format!("unknown op tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(StorageError::WalCorrupt("trailing bytes in frame".into()));
        }
        Ok(op)
    }
}

/// Record tag for coordination frames (storage ops use `0..=4`).
const COORDINATION_TAG: u8 = 5;

/// Record tag for commit-boundary marker frames (format v2).
const COMMIT_BOUNDARY_TAG: u8 = 6;

/// One logical record of the log: a storage operation, an opaque
/// coordination payload, or a commit-boundary marker.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table DML/DDL operation.
    Storage(WalOp),
    /// An opaque coordination-layer payload (length-prefixed on disk).
    Coordination(Vec<u8>),
    /// The end marker of one commit group (format v2). Written after
    /// the group's records and before the group is synced; replay
    /// rolls a damaged or unterminated suffix back to the last one
    /// (see the module-level failure model).
    CommitBoundary,
}

impl WalRecord {
    fn encode(&self) -> BytesMut {
        match self {
            WalRecord::Storage(op) => op.encode(),
            WalRecord::Coordination(payload) => {
                let mut buf = BytesMut::with_capacity(payload.len() + 5);
                buf.put_u8(COORDINATION_TAG);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
                buf
            }
            WalRecord::CommitBoundary => {
                let mut buf = BytesMut::with_capacity(1);
                buf.put_u8(COMMIT_BOUNDARY_TAG);
                buf
            }
        }
    }

    fn decode(payload: &[u8]) -> StorageResult<WalRecord> {
        match payload.first() {
            Some(&COORDINATION_TAG) => {
                let mut buf = &payload[1..];
                if buf.remaining() < 4 {
                    return Err(StorageError::WalCorrupt(
                        "truncated coordination length".into(),
                    ));
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() != len {
                    return Err(StorageError::WalCorrupt(format!(
                        "coordination frame length {len} != body {}",
                        buf.remaining()
                    )));
                }
                Ok(WalRecord::Coordination(buf.to_vec()))
            }
            Some(&COMMIT_BOUNDARY_TAG) => {
                if payload.len() != 1 {
                    return Err(StorageError::WalCorrupt(
                        "trailing bytes in commit boundary".into(),
                    ));
                }
                Ok(WalRecord::CommitBoundary)
            }
            _ => WalOp::decode(payload).map(WalRecord::Storage),
        }
    }

    /// The storage op, if this is a storage record.
    pub fn storage(self) -> Option<WalOp> {
        match self {
            WalRecord::Storage(op) => Some(op),
            _ => None,
        }
    }

    /// The coordination payload, if this is a coordination record.
    pub fn coordination(self) -> Option<Vec<u8>> {
        match self {
            WalRecord::Coordination(p) => Some(p),
            _ => None,
        }
    }
}

/// The backing sink of a WAL: a real file or an in-memory buffer
/// (useful in tests and benches).
enum WalSink {
    File(File),
    Memory(Vec<u8>),
}

/// An append-only redo log.
pub struct Wal {
    sink: WalSink,
    /// Cached log length in bytes, maintained by every append, reset
    /// and tail truncation — so [`Wal::len_bytes`] (polled by the
    /// coordinator's auto-checkpoint threshold after every group
    /// commit) never needs a file-metadata syscall.
    len_hint: u64,
}

impl Wal {
    /// Opens (or creates) a file-backed WAL in append mode.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| StorageError::WalIo(e.to_string()))?;
        let len_hint = file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| StorageError::WalIo(e.to_string()))?;
        Ok(Wal {
            sink: WalSink::File(file),
            len_hint,
        })
    }

    /// Creates an in-memory WAL.
    pub fn in_memory() -> Wal {
        Wal {
            sink: WalSink::Memory(Vec::new()),
            len_hint: 0,
        }
    }

    /// Creates an in-memory WAL over existing log bytes (e.g. bytes
    /// salvaged from a "killed" process in crash-recovery tests).
    pub fn from_bytes(bytes: Vec<u8>) -> Wal {
        let len_hint = bytes.len() as u64;
        Wal {
            sink: WalSink::Memory(bytes),
            len_hint,
        }
    }

    /// Appends one storage operation as a checksummed frame.
    pub fn append(&mut self, op: &WalOp) -> StorageResult<()> {
        self.append_payload(&op.encode())
    }

    /// Appends one record (storage or coordination) as a checksummed
    /// frame.
    pub fn append_record(&mut self, record: &WalRecord) -> StorageResult<()> {
        self.append_payload(&record.encode())
    }

    /// Appends one opaque coordination payload as a checksummed frame.
    pub fn append_coordination(&mut self, payload: &[u8]) -> StorageResult<()> {
        self.append_record(&WalRecord::Coordination(payload.to_vec()))
    }

    /// Appends a commit-boundary marker frame, sealing everything
    /// since the previous marker as one commit group. Call before
    /// [`Wal::sync`]; replay rolls a damaged suffix back to the last
    /// complete marker.
    pub fn append_commit_boundary(&mut self) -> StorageResult<()> {
        self.append_record(&WalRecord::CommitBoundary)
    }

    fn append_payload(&mut self, payload: &[u8]) -> StorageResult<()> {
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32(payload.len() as u32);
        frame.put_u32(frame_checksum(payload.len() as u32, payload));
        frame.put_slice(payload);
        match &mut self.sink {
            WalSink::File(f) => {
                f.write_all(&frame)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
            }
            WalSink::Memory(buf) => buf.extend_from_slice(&frame),
        }
        self.len_hint += frame.len() as u64;
        Ok(())
    }

    /// Flushes buffered bytes to stable storage (no-op for memory sinks).
    pub fn sync(&mut self) -> StorageResult<()> {
        if let WalSink::File(f) = &mut self.sink {
            f.sync_data()
                .map_err(|e| StorageError::WalIo(e.to_string()))?;
        }
        Ok(())
    }

    /// Discards all frames (used by checkpointing, which immediately
    /// re-appends a snapshot of the live state).
    pub fn reset(&mut self) -> StorageResult<()> {
        match &mut self.sink {
            WalSink::File(f) => {
                f.set_len(0)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                use std::io::Seek;
                f.seek(std::io::SeekFrom::Start(0))
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
            }
            WalSink::Memory(buf) => buf.clear(),
        }
        self.len_hint = 0;
        Ok(())
    }

    /// Reads every complete storage operation currently in the log,
    /// skipping coordination frames (see [`Wal::replay_records`]).
    pub fn replay(&mut self) -> StorageResult<Vec<WalOp>> {
        Ok(self
            .replay_records()?
            .into_iter()
            .filter_map(WalRecord::storage)
            .collect())
    }

    /// Reads every complete record currently in the log.
    ///
    /// A torn *tail* (crash mid-append: a partial final frame, or a
    /// final frame whose checksum does not verify) is **truncated
    /// away**, so the log recovers to its last consistent prefix and
    /// subsequent appends produce a clean log again. Corruption
    /// *before* the final frame is reported as
    /// [`StorageError::WalCorrupt`].
    pub fn replay_records(&mut self) -> StorageResult<Vec<WalRecord>> {
        let bytes = match &mut self.sink {
            WalSink::File(f) => {
                let mut v = Vec::new();
                use std::io::Seek;
                f.seek(std::io::SeekFrom::Start(0))
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                f.read_to_end(&mut v)
                    .map_err(|e| StorageError::WalIo(e.to_string()))?;
                v
            }
            WalSink::Memory(buf) => buf.clone(),
        };
        let (records, consumed) = Self::decode_records(&bytes)?;
        if consumed < bytes.len() {
            // torn tail: drop the partial frame so future appends are
            // framed correctly (append mode writes at the physical end)
            match &mut self.sink {
                WalSink::File(f) => {
                    f.set_len(consumed as u64)
                        .map_err(|e| StorageError::WalIo(e.to_string()))?;
                    f.sync_data()
                        .map_err(|e| StorageError::WalIo(e.to_string()))?;
                }
                WalSink::Memory(buf) => buf.truncate(consumed),
            }
            self.len_hint = consumed as u64;
        }
        Ok(records)
    }

    /// Decodes a raw byte stream of frames into storage ops, skipping
    /// coordination frames (exposed for tests).
    pub fn decode_stream(bytes: &[u8]) -> StorageResult<Vec<WalOp>> {
        Ok(Self::decode_records(bytes)?
            .0
            .into_iter()
            .filter_map(WalRecord::storage)
            .collect())
    }

    /// Decodes a raw byte stream of frames, returning the records
    /// (commit-boundary markers elided — they are framing metadata,
    /// not logical records) and the length of the consumed
    /// (consistent) prefix.
    ///
    /// Marker logs (format v2, at least one [`WalRecord::CommitBoundary`]
    /// decoded): the first inconsistency — a partial final frame, a
    /// checksum failure anywhere after the marker, or a clean
    /// end-of-log whose trailing group lacks its marker — rolls the
    /// decode back to the **last complete commit boundary**, dropping
    /// even intact frames of the damaged group (a multi-frame batch
    /// persisted out of order is recovered, not reported).
    ///
    /// Pre-marker logs (no boundary decoded yet) keep the v1 rules: a
    /// tear confined to the final frame ends the decode at the
    /// preceding frame boundary; a checksum failure before the final
    /// frame is an error. A record-level decode failure on a
    /// checksum-valid frame is an error everywhere (a verified
    /// checksum means the bytes are what was written, so the failure
    /// is not a tear).
    pub fn decode_records(bytes: &[u8]) -> StorageResult<(Vec<WalRecord>, usize)> {
        let mut records = Vec::new();
        let mut offset = 0usize;
        // Last complete commit boundary seen so far: the byte offset
        // just past its frame and the record count at that point.
        // `None` until the first marker — that is what keeps v1 logs
        // on the legacy semantics.
        let mut boundary: Option<(usize, usize)> = None;
        let mut damaged = false;
        while bytes.len() - offset >= 8 {
            let len = (&bytes[offset..offset + 4]).get_u32() as usize;
            if bytes.len() - offset < 8 + len {
                // partial final frame: torn tail
                damaged = true;
                break;
            }
            let checksum = (&bytes[offset + 4..offset + 8]).get_u32();
            let payload = &bytes[offset + 8..offset + 8 + len];
            if frame_checksum(len as u32, payload) != checksum {
                damaged = true;
                if boundary.is_some() || offset + 8 + len == bytes.len() {
                    // After a commit boundary every checksum failure
                    // is an unsynced-suffix tear (crash model: synced
                    // bytes are intact). Without one, only a failure
                    // confined to the final frame is decidably a tear
                    // (e.g. out-of-order sector writes within it).
                    break;
                }
                return Err(StorageError::WalCorrupt("checksum mismatch".into()));
            }
            let record = WalRecord::decode(payload)?;
            offset += 8 + len;
            if matches!(record, WalRecord::CommitBoundary) {
                boundary = Some((offset, records.len()));
            } else {
                records.push(record);
            }
        }
        // trailing bytes too short for a frame header are a tear too
        damaged |= offset < bytes.len();
        if let Some((end, count)) = boundary {
            if damaged || offset > end {
                // marker log with a damaged or unterminated suffix:
                // roll back to the last complete commit
                records.truncate(count);
                return Ok((records, end));
            }
        }
        Ok((records, offset))
    }

    /// Raw length in bytes (memory sinks only; for tests).
    pub fn raw_len(&self) -> Option<usize> {
        match &self.sink {
            WalSink::Memory(buf) => Some(buf.len()),
            WalSink::File(_) => None,
        }
    }

    /// Current log size in bytes, for both sinks — served from the
    /// maintained length cache, so polling it (the coordinator's
    /// auto-checkpoint threshold checks after every group commit)
    /// costs no syscall.
    pub fn len_bytes(&self) -> StorageResult<u64> {
        #[cfg(debug_assertions)]
        {
            // cross-check the cache against the sink's real length —
            // for file sinks via a metadata syscall (debug builds
            // only; skipped if the syscall itself fails)
            let actual = match &self.sink {
                WalSink::Memory(buf) => Some(buf.len() as u64),
                WalSink::File(f) => f.metadata().ok().map(|m| m.len()),
            };
            if let Some(actual) = actual {
                debug_assert_eq!(self.len_hint, actual, "len_hint out of sync with sink");
            }
        }
        Ok(self.len_hint)
    }

    /// Raw bytes (memory sinks only; for tests).
    pub fn raw_bytes(&self) -> Option<&[u8]> {
        match &self.sink {
            WalSink::Memory(buf) => Some(buf),
            WalSink::File(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_schema() -> Schema {
        Schema::with_primary_key(
            vec![
                Column::new("fno", DataType::Int64),
                Column::nullable("dest", DataType::Str),
            ],
            &["fno"],
        )
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateTable {
                name: "Flights".into(),
                schema: sample_schema(),
            },
            WalOp::Insert {
                table: "Flights".into(),
                rid: 0,
                tuple: Tuple::new(vec![Value::Int(122), Value::from("Paris")]),
            },
            WalOp::Update {
                table: "Flights".into(),
                rid: 0,
                tuple: Tuple::new(vec![Value::Int(122), Value::from("Rome")]),
            },
            WalOp::Delete {
                table: "Flights".into(),
                rid: 0,
            },
            WalOp::DropTable {
                name: "Flights".into(),
            },
        ]
    }

    #[test]
    fn memory_wal_roundtrip() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed, sample_ops());
    }

    #[test]
    fn file_wal_roundtrip() {
        let dir = std::env::temp_dir().join(format!("youtopia_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            wal.sync().unwrap();
        }
        // reopen and replay
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), sample_ops());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_frame_is_tolerated() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let bytes = wal.raw_bytes().unwrap().to_vec();
        // chop off the last 3 bytes: final frame is torn
        let truncated = &bytes[..bytes.len() - 3];
        let ops = Wal::decode_stream(truncated).unwrap();
        assert_eq!(ops.len(), sample_ops().len() - 1);
    }

    #[test]
    fn corruption_is_detected() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let mut bytes = wal.raw_bytes().unwrap().to_vec();
        // flip a byte inside the first frame's payload
        bytes[10] ^= 0xff;
        assert!(matches!(
            Wal::decode_stream(&bytes),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let mut wal = Wal::in_memory();
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn coordination_frames_roundtrip_and_interleave() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_ops()[0]).unwrap();
        wal.append_coordination(b"register q1").unwrap();
        wal.append(&sample_ops()[1]).unwrap();
        wal.append_coordination(b"").unwrap(); // empty payloads are legal
        let records = wal.replay_records().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[1], WalRecord::Coordination(b"register q1".to_vec()));
        assert_eq!(records[3], WalRecord::Coordination(Vec::new()));
        // storage-only replay skips the coordination frames
        assert_eq!(wal.replay().unwrap(), sample_ops()[..2].to_vec());
    }

    #[test]
    fn torn_tail_is_truncated_so_appends_recover() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let mut bytes = wal.raw_bytes().unwrap().to_vec();
        bytes.truncate(bytes.len() - 3); // tear the final frame
        let mut torn = Wal::from_bytes(bytes);
        let ops = torn.replay().unwrap();
        assert_eq!(ops.len(), sample_ops().len() - 1);
        // the torn bytes are gone: appending after replay yields a
        // clean log instead of mid-frame garbage
        torn.append(&sample_ops()[0]).unwrap();
        let ops = torn.replay().unwrap();
        assert_eq!(ops.len(), sample_ops().len());
    }

    #[test]
    fn corrupt_final_frame_is_treated_as_torn() {
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let mut bytes = wal.raw_bytes().unwrap().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // checksum failure confined to the tail
        let mut torn = Wal::from_bytes(bytes);
        assert_eq!(torn.replay().unwrap().len(), sample_ops().len() - 1);
    }

    /// A marker log of two commit groups. Returns the bytes, the
    /// offset just past group 1's marker, and the offset of each
    /// frame of group 2 (including its marker frame).
    fn two_group_log() -> (Vec<u8>, usize, Vec<usize>) {
        let mut wal = Wal::in_memory();
        // group 1: create + one insert, sealed
        wal.append(&sample_ops()[0]).unwrap();
        wal.append(&sample_ops()[1]).unwrap();
        wal.append_commit_boundary().unwrap();
        let group1_end = wal.raw_len().unwrap();
        // group 2: a multi-frame batch, sealed
        let mut frame_starts = Vec::new();
        for op in &sample_ops()[2..4] {
            frame_starts.push(wal.raw_len().unwrap());
            wal.append(op).unwrap();
        }
        frame_starts.push(wal.raw_len().unwrap());
        wal.append_commit_boundary().unwrap();
        (wal.raw_bytes().unwrap().to_vec(), group1_end, frame_starts)
    }

    #[test]
    fn commit_boundaries_are_elided_from_replay() {
        let (bytes, _, _) = two_group_log();
        let (records, consumed) = Wal::decode_records(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        let ops: Vec<WalOp> = records.into_iter().filter_map(WalRecord::storage).collect();
        assert_eq!(ops, sample_ops()[..4].to_vec());
    }

    #[test]
    fn out_of_order_tear_rolls_back_to_last_commit() {
        // frame k of group 2 torn (checksum fails), frame k+1 and the
        // group's marker landed intact: the v1 residual gap. Replay
        // must recover to the end of group 1, not report WalCorrupt.
        let (mut bytes, group1_end, frame_starts) = two_group_log();
        bytes[frame_starts[0] + 8] ^= 0xff;
        let (records, consumed) = Wal::decode_records(&bytes).unwrap();
        assert_eq!(consumed, group1_end);
        assert_eq!(
            records
                .into_iter()
                .filter_map(WalRecord::storage)
                .collect::<Vec<_>>(),
            sample_ops()[..2].to_vec()
        );
        // and the truncated log is appendable again
        let mut wal = Wal::from_bytes(bytes);
        assert_eq!(wal.replay().unwrap().len(), 2);
        assert_eq!(wal.raw_len(), Some(group1_end));
        wal.append(&sample_ops()[4]).unwrap();
        wal.append_commit_boundary().unwrap();
        assert_eq!(wal.replay().unwrap().len(), 3);
    }

    #[test]
    fn unterminated_suffix_rolls_back_to_last_commit() {
        // a commit group whose marker never landed (clean frames, no
        // boundary, e.g. a commit interrupted between append and
        // marker) is discarded on replay
        let (bytes, group1_end, frame_starts) = two_group_log();
        let unterminated = &bytes[..frame_starts[2]]; // group 2 minus its marker
        let (records, consumed) = Wal::decode_records(unterminated).unwrap();
        assert_eq!(consumed, group1_end);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn corruption_before_the_first_boundary_is_still_loud() {
        let (mut bytes, _, _) = two_group_log();
        bytes[8] ^= 0xff; // first frame, before any marker
        assert!(matches!(
            Wal::decode_records(&bytes),
            Err(StorageError::WalCorrupt(_))
        ));
    }

    #[test]
    fn pre_marker_logs_still_replay() {
        // a v1 log (no markers anywhere) keeps its full contents and
        // the legacy tear semantics
        let mut wal = Wal::in_memory();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        let bytes = wal.raw_bytes().unwrap().to_vec();
        let (records, consumed) = Wal::decode_records(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(records.len(), sample_ops().len());
    }

    #[test]
    fn reopened_torn_file_log_reconciles_len_bytes() {
        let dir = std::env::temp_dir().join(format!("youtopia_wal_len_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_len.wal");
        let (bytes, group1_end, _) = two_group_log();
        // a prior process crashed mid-batch: tear the last 5 bytes
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut wal = Wal::open(&path).unwrap();
        // open reconciles the hint with the on-disk length as-is
        assert_eq!(wal.len_bytes().unwrap(), (bytes.len() - 5) as u64);
        // replay truncates the damaged group and the hint follows
        wal.replay_records().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), group1_end as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            group1_end as u64,
            "truncation reached the disk"
        );
        drop(wal);
        // a later process observes the reconciled length directly
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.len_bytes().unwrap(), group1_end as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_with_pk_survives_roundtrip() {
        let mut wal = Wal::in_memory();
        wal.append(&WalOp::CreateTable {
            name: "T".into(),
            schema: sample_schema(),
        })
        .unwrap();
        match &wal.replay().unwrap()[0] {
            WalOp::CreateTable { schema, .. } => {
                assert_eq!(schema.primary_key(), &[0]);
                assert!(schema.columns()[1].nullable);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
