//! The catalog: the named collection of tables in one database.
//!
//! Table names are case-insensitive (`Flights` and `flights` are the same
//! table) but the display case of the first definition is preserved.

use std::collections::HashMap;

use crate::error::{StorageError, StorageResult};
use crate::schema::Schema;
use crate::table::Table;

/// A case-insensitive table namespace.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    /// Keyed by lowercase name.
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Creates a table; fails if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<()> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableAlreadyExists(name.to_string()));
        }
        self.tables.insert(key, Table::new(name, schema));
        Ok(())
    }

    /// Registers an already-built table (undo/replay paths).
    pub(crate) fn restore_table(&mut self, table: Table) -> StorageResult<()> {
        let key = Self::key(table.name());
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableAlreadyExists(table.name().to_string()));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Drops a table; returns it (for undo logging).
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Immutable table lookup.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// True when a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// Display names of all tables, sorted for deterministic output.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name().to_string()).collect();
        names.sort();
        names
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("a", DataType::Int64)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut cat = Catalog::new();
        cat.create_table("Flights", schema()).unwrap();
        assert!(cat.has_table("flights"));
        assert!(cat.has_table("FLIGHTS"));
        assert_eq!(cat.table("fLiGhTs").unwrap().name(), "Flights");
    }

    #[test]
    fn duplicate_names_rejected_even_across_case() {
        let mut cat = Catalog::new();
        cat.create_table("Flights", schema()).unwrap();
        assert!(matches!(
            cat.create_table("FLIGHTS", schema()),
            Err(StorageError::TableAlreadyExists(_))
        ));
    }

    #[test]
    fn drop_returns_the_table() {
        let mut cat = Catalog::new();
        cat.create_table("T", schema()).unwrap();
        let t = cat.drop_table("t").unwrap();
        assert_eq!(t.name(), "T");
        assert!(!cat.has_table("T"));
        assert!(matches!(
            cat.drop_table("T"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn restore_puts_table_back() {
        let mut cat = Catalog::new();
        cat.create_table("T", schema()).unwrap();
        let t = cat.drop_table("T").unwrap();
        cat.restore_table(t).unwrap();
        assert!(cat.has_table("T"));
    }

    #[test]
    fn table_names_sorted() {
        let mut cat = Catalog::new();
        for name in ["Zeta", "Alpha", "Motel"] {
            cat.create_table(name, schema()).unwrap();
        }
        assert_eq!(cat.table_names(), vec!["Alpha", "Motel", "Zeta"]);
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
    }

    #[test]
    fn missing_table_error_carries_name() {
        let cat = Catalog::new();
        assert_eq!(
            cat.table("ghost").unwrap_err(),
            StorageError::TableNotFound("ghost".into())
        );
    }
}
