//! Property-based tests for the storage core data structures:
//! value ordering is a lawful total order, tuple encoding round-trips,
//! and table/index state stays consistent under random operation
//! sequences.

use proptest::prelude::*;

use youtopia_storage::{Column, DataType, Schema, Table, Tuple, Value, Wal, WalOp};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 '%_]{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..8).prop_map(Tuple::new)
}

proptest! {
    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            // Equal ordering must agree with Eq (lawful Ord)
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn value_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let ab = a.total_cmp(&b);
        let bc = b.total_cmp(&c);
        if ab == Less && bc == Less {
            prop_assert_eq!(a.total_cmp(&c), Less);
        }
        if ab == Equal && bc == Equal {
            prop_assert_eq!(a.total_cmp(&c), Equal);
        }
    }

    #[test]
    fn value_hash_agrees_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn sql_eq_is_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.sql_eq(&b), b.sql_eq(&a));
    }

    #[test]
    fn null_never_sql_equals_anything(a in arb_value()) {
        prop_assert!(!Value::Null.sql_eq(&a));
        prop_assert!(!a.sql_eq(&Value::Null));
    }

    #[test]
    fn tuple_encode_decode_roundtrip(t in arb_tuple()) {
        let decoded = Tuple::decode(&t.encode()).unwrap();
        prop_assert_eq!(t, decoded);
    }

    #[test]
    fn tuple_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // must return Ok or Err, never panic
        let _ = Tuple::decode(&bytes);
    }

    #[test]
    fn sorted_values_via_ord_match_total_cmp(mut vs in proptest::collection::vec(arb_value(), 0..20)) {
        let mut by_total = vs.clone();
        by_total.sort_by(|a, b| a.total_cmp(b));
        vs.sort();
        prop_assert_eq!(vs, by_total);
    }
}

// WAL robustness: arbitrary byte streams never panic the decoder, and
// any encoded op sequence survives a round trip (and any prefix
// truncation decodes a prefix of the ops).
fn arb_wal_op() -> impl Strategy<Value = WalOp> {
    let table = "[A-Z][a-z]{0,6}";
    prop_oneof![
        (
            table,
            proptest::collection::vec(arb_value(), 0..4),
            any::<u64>()
        )
            .prop_map(|(t, vals, rid)| WalOp::Insert {
                table: t,
                rid,
                tuple: Tuple::new(vals)
            }),
        (table, any::<u64>()).prop_map(|(t, rid)| WalOp::Delete { table: t, rid }),
        (
            table,
            proptest::collection::vec(arb_value(), 0..4),
            any::<u64>()
        )
            .prop_map(|(t, vals, rid)| WalOp::Update {
                table: t,
                rid,
                tuple: Tuple::new(vals)
            }),
        table.prop_map(|t| WalOp::DropTable { name: t }),
    ]
}

proptest! {
    #[test]
    fn wal_roundtrips_arbitrary_op_sequences(ops in proptest::collection::vec(arb_wal_op(), 0..20)) {
        let mut wal = Wal::in_memory();
        for op in &ops {
            wal.append(op).unwrap();
        }
        prop_assert_eq!(wal.replay().unwrap(), ops);
    }

    #[test]
    fn wal_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Wal::decode_stream(&bytes);
    }

    #[test]
    fn wal_tolerates_any_tail_truncation(
        ops in proptest::collection::vec(arb_wal_op(), 1..10),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wal = Wal::in_memory();
        for op in &ops {
            wal.append(op).unwrap();
        }
        let bytes = wal.raw_bytes().unwrap();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // a truncated log either decodes a prefix of the ops or reports
        // corruption; it must never panic or invent ops
        if let Ok(decoded) = Wal::decode_stream(&bytes[..cut]) {
            prop_assert!(decoded.len() <= ops.len());
            prop_assert_eq!(&decoded[..], &ops[..decoded.len()]);
        }
    }
}

/// Random table workloads: insert/delete/update sequences keep the
/// primary-key index in exact agreement with a model HashMap.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, String),
    DeleteKey(i64),
    UpdateVal(i64, String),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..20, "[a-z]{1,6}").prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..20).prop_map(Op::DeleteKey),
        (0i64..20, "[a-z]{1,6}").prop_map(|(k, v)| Op::UpdateVal(k, v)),
    ]
}

proptest! {
    #[test]
    // the explicit pre-check against the model is the point of the test;
    // the entry() API clippy suggests would bypass the assertion
    #[allow(clippy::map_entry)]
    fn table_agrees_with_model_under_random_ops(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let schema = Schema::with_primary_key(
            vec![Column::new("k", DataType::Int64), Column::new("v", DataType::Str)],
            &["k"],
        );
        let mut table = Table::new("T", schema);
        let mut model: std::collections::HashMap<i64, String> = std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let result = table.insert(Tuple::new(vec![Value::Int(k), Value::Str(v.clone())]));
                    if model.contains_key(&k) {
                        prop_assert!(result.is_err(), "duplicate pk must fail");
                    } else {
                        prop_assert!(result.is_ok());
                        model.insert(k, v);
                    }
                }
                Op::DeleteKey(k) => {
                    let rids = table.rows_where_eq(0, &Value::Int(k));
                    if model.remove(&k).is_some() {
                        prop_assert_eq!(rids.len(), 1);
                        table.delete(rids[0]).unwrap();
                    } else {
                        prop_assert!(rids.is_empty());
                    }
                }
                Op::UpdateVal(k, v) => {
                    let rids = table.rows_where_eq(0, &Value::Int(k));
                    if model.contains_key(&k) {
                        prop_assert_eq!(rids.len(), 1);
                        table
                            .update(rids[0], Tuple::new(vec![Value::Int(k), Value::Str(v.clone())]))
                            .unwrap();
                        model.insert(k, v);
                    } else {
                        prop_assert!(rids.is_empty());
                    }
                }
            }
        }

        // final state agreement
        prop_assert_eq!(table.len(), model.len());
        for (k, v) in &model {
            let rids = table.rows_where_eq(0, &Value::Int(*k));
            prop_assert_eq!(rids.len(), 1);
            let row = table.get(rids[0]).unwrap();
            prop_assert_eq!(row.values()[1].as_str(), Some(v.as_str()));
        }
        // pk index has exactly one posting per live key
        let pk = table.index("T_pk").unwrap();
        prop_assert_eq!(pk.key_count(), model.len());
    }
}
