//! Torn-tail corpus: a crash can cut the WAL at *any* byte offset
//! (append-mode writes land as a prefix of the frame). Replay must
//! recover the longest consistent prefix, truncate the torn bytes
//! away, and leave the log appendable — never report `WalCorrupt` for
//! a tail-only tear, and never mis-frame a subsequent append.

use youtopia_storage::{
    Column, DataType, Schema, StorageError, Tuple, Value, Wal, WalOp, WalRecord,
};

fn schema() -> Schema {
    Schema::with_primary_key(
        vec![
            Column::new("fno", DataType::Int64),
            Column::new("dest", DataType::Str),
        ],
        &["fno"],
    )
}

/// A coordination payload shaped like the core layer's registration
/// events: `tag`, two u32-length-prefixed strings, qid and seq as
/// big-endian u64, and — for the v2 (deadline-carrying) shape, tag 5 —
/// a trailing deadline u64. Storage treats payloads as opaque; these
/// shapes keep the truncation corpus representative of real logs,
/// v1 (pre-deadline) and v2 alike.
fn registration_payload(tag: u8, owner: &str, sql: &str, deadline: Option<u64>) -> Vec<u8> {
    let mut buf = vec![tag];
    for s in [owner, sql] {
        buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    buf.extend_from_slice(&7u64.to_be_bytes()); // qid
    buf.extend_from_slice(&3u64.to_be_bytes()); // seq
    if let Some(d) = deadline {
        buf.extend_from_slice(&d.to_be_bytes());
    }
    buf
}

/// A mixed log: DDL + DML storage frames interleaved with coordination
/// frames of several sizes (including empty, and both registration
/// event shapes).
fn corpus_records() -> Vec<WalRecord> {
    let mut records = vec![WalRecord::Storage(WalOp::CreateTable {
        name: "Flights".into(),
        schema: schema(),
    })];
    for i in 0..4 {
        records.push(WalRecord::Storage(WalOp::Insert {
            table: "Flights".into(),
            rid: i,
            tuple: Tuple::new(vec![Value::Int(100 + i as i64), Value::from("Paris")]),
        }));
        records.push(WalRecord::Coordination(vec![i as u8; i as usize * 7]));
    }
    records.push(WalRecord::Coordination(registration_payload(
        0,
        "kramer",
        "SELECT 'K', fno INTO ANSWER R CHOOSE 1",
        None,
    )));
    records.push(WalRecord::Coordination(registration_payload(
        5,
        "newman",
        "SELECT 'N', fno INTO ANSWER R CHOOSE 1",
        Some(123_456),
    )));
    records.push(WalRecord::Storage(WalOp::Delete {
        table: "Flights".into(),
        rid: 2,
    }));
    records
}

fn corpus_bytes() -> (Vec<u8>, Vec<usize>) {
    let mut wal = Wal::in_memory();
    let mut boundaries = vec![0usize];
    for record in corpus_records() {
        wal.append_record(&record).unwrap();
        boundaries.push(wal.raw_len().unwrap());
    }
    (wal.raw_bytes().unwrap().to_vec(), boundaries)
}

/// How many whole frames fit into a prefix of `cut` bytes.
fn frames_below(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().filter(|&&b| b != 0 && b <= cut).count()
}

#[test]
fn truncation_at_every_offset_recovers_the_longest_prefix() {
    let (bytes, boundaries) = corpus_bytes();
    let records = corpus_records();
    for cut in 0..=bytes.len() {
        let (decoded, consumed) =
            Wal::decode_records(&bytes[..cut]).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let expect = frames_below(&boundaries, cut);
        assert_eq!(decoded.len(), expect, "cut at {cut}");
        assert_eq!(consumed, boundaries[expect], "cut at {cut}");
        assert_eq!(decoded, records[..expect], "cut at {cut}");
    }
}

#[test]
fn truncated_memory_wal_is_appendable_after_replay() {
    let (bytes, boundaries) = corpus_bytes();
    let last_start = boundaries[boundaries.len() - 2];
    // byte-level truncations at every offset of the last frame
    for cut in last_start..bytes.len() {
        let mut wal = Wal::from_bytes(bytes[..cut].to_vec());
        let recovered = wal.replay_records().unwrap();
        assert_eq!(recovered.len(), corpus_records().len() - 1, "cut at {cut}");
        assert_eq!(wal.raw_len(), Some(last_start), "torn bytes truncated");
        // the log is clean again: appending and replaying roundtrips
        wal.append_coordination(b"post-crash").unwrap();
        let replayed = wal.replay_records().unwrap();
        assert_eq!(replayed.len(), corpus_records().len());
        assert_eq!(
            replayed.last().unwrap(),
            &WalRecord::Coordination(b"post-crash".to_vec())
        );
    }
}

#[test]
fn truncated_file_wal_is_truncated_on_disk_and_appendable() {
    let dir = std::env::temp_dir().join(format!("youtopia_torn_tail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (bytes, boundaries) = corpus_bytes();
    let last_start = boundaries[boundaries.len() - 2];
    // sample a handful of offsets inside the last frame (full sweep is
    // the memory test's job; file IO is slower)
    let offsets: Vec<usize> = (last_start..bytes.len()).step_by(3).collect();
    for (i, &cut) in offsets.iter().enumerate() {
        let path = dir.join(format!("torn_{i}.wal"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            let recovered = wal.replay_records().unwrap();
            assert_eq!(recovered.len(), corpus_records().len() - 1, "cut at {cut}");
            // the torn bytes are gone from disk
            assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, last_start);
            wal.append(&WalOp::Delete {
                table: "Flights".into(),
                rid: 0,
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // a later process sees a clean log including the new append
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.replay_records().unwrap().len(),
            corpus_records().len(),
            "cut at {cut}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

/// A marker-format (v2) log: the corpus records split into two commit
/// groups, each sealed by a [`WalRecord::CommitBoundary`] frame.
/// Returns the bytes, the end of group 1 (just past its marker), and
/// the frame-start offsets of group 2: frame k, frame k+1, marker.
fn marker_corpus() -> (Vec<u8>, usize, Vec<usize>) {
    let mut group1 = corpus_records();
    let group2 = group1.split_off(group1.len() - 2);
    let mut wal = Wal::in_memory();
    for record in &group1 {
        wal.append_record(record).unwrap();
    }
    wal.append_commit_boundary().unwrap();
    let group1_end = wal.raw_len().unwrap();
    let mut starts = Vec::new();
    for record in &group2 {
        starts.push(wal.raw_len().unwrap());
        wal.append_record(record).unwrap();
    }
    starts.push(wal.raw_len().unwrap());
    wal.append_commit_boundary().unwrap();
    (wal.raw_bytes().unwrap().to_vec(), group1_end, starts)
}

#[test]
fn multi_frame_tear_rolls_back_to_the_last_commit_marker() {
    let (bytes, group1_end, starts) = marker_corpus();
    let all = corpus_records();
    let group1 = &all[..all.len() - 2];
    // A multi-frame commit group persisted out of order: frame k torn
    // while frame k+1 (and possibly the group's trailing marker) made
    // it to disk — and vice versa. Every shape must roll back to the
    // last complete commit, dropping even the intact frames of the
    // damaged group, and leave the log appendable.
    for (shape, cut) in [
        ("marker landed", bytes.len()),
        ("marker missing", starts[2]),
    ] {
        for &frame in &starts[..2] {
            let mut torn = bytes[..cut].to_vec();
            torn[frame + 8] ^= 0xff; // first payload byte of the frame
            let mut wal = Wal::from_bytes(torn);
            let recovered = wal
                .replay_records()
                .unwrap_or_else(|e| panic!("{shape}, torn frame at {frame}: {e}"));
            assert_eq!(recovered, group1, "{shape}, torn frame at {frame}");
            assert_eq!(
                wal.raw_len(),
                Some(group1_end),
                "{shape}: truncated to the last commit boundary"
            );
            // a subsequent (marker-sealed, as the group-commit writer
            // always writes) append produces a clean log again
            wal.append_coordination(b"post-crash").unwrap();
            wal.append_commit_boundary().unwrap();
            let replayed = wal.replay_records().unwrap();
            assert_eq!(replayed.len(), group1.len() + 1);
            assert_eq!(
                replayed.last().unwrap(),
                &WalRecord::Coordination(b"post-crash".to_vec())
            );
        }
    }
}

#[test]
fn unsynced_group_without_its_marker_rolls_back_cleanly() {
    // no tear at all: both frames of group 2 are intact but the crash
    // cut the log before the group's marker — the group was never
    // acknowledged, so replay must drop it whole
    let (bytes, group1_end, starts) = marker_corpus();
    let all = corpus_records();
    let mut wal = Wal::from_bytes(bytes[..starts[2]].to_vec());
    let recovered = wal.replay_records().unwrap();
    assert_eq!(recovered, all[..all.len() - 2]);
    assert_eq!(wal.raw_len(), Some(group1_end));
}

#[test]
fn corrupt_final_frame_with_trailing_garbage_recovers_on_marker_logs() {
    // The byte pattern that escaped the legacy tear path: the final
    // frame is corrupt AND followed by trailing garbage, so the
    // failure is not confined to exact end-of-buffer. With commit
    // markers the case is decidable — everything past the last marker
    // is unsynced, so roll back to it.
    let (bytes, group1_end, starts) = marker_corpus();
    let all = corpus_records();
    let mut damaged = bytes.clone();
    damaged[starts[2] + 8] ^= 0xff; // corrupt group 2's marker frame
    damaged.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x0d]);
    let mut wal = Wal::from_bytes(damaged);
    let recovered = wal.replay_records().unwrap();
    assert_eq!(recovered, all[..all.len() - 2]);
    assert_eq!(wal.raw_len(), Some(group1_end));

    // the same pattern on a legacy (marker-free) log stays loud: with
    // no boundary to roll back to it is indistinguishable from
    // mid-log corruption
    let (legacy, boundaries) = corpus_bytes();
    let mut damaged = legacy.clone();
    damaged[boundaries[boundaries.len() - 2] + 8] ^= 0xff;
    damaged.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x0d]);
    assert!(matches!(
        Wal::decode_records(&damaged),
        Err(StorageError::WalCorrupt(_))
    ));
}

#[test]
fn corruption_of_synced_groups_is_still_detected_on_marker_logs() {
    // corruption *before* the last commit boundary is synced-data
    // damage, not an unsynced-suffix tear: it must stay loud
    let (bytes, _group1_end, _starts) = marker_corpus();
    let mut corrupted = bytes.clone();
    corrupted[8] ^= 0xff; // first payload byte of the first frame
    assert!(matches!(
        Wal::decode_records(&corrupted),
        Err(StorageError::WalCorrupt(_))
    ));
}

#[test]
fn mid_log_corruption_is_still_detected() {
    let (bytes, boundaries) = corpus_bytes();
    // flip a payload byte in every frame *except the last*: corruption
    // before the tail must be reported, never silently truncated
    for w in boundaries[..boundaries.len() - 2].windows(2) {
        let (start, _end) = (w[0], w[1]);
        let mut corrupted = bytes.clone();
        corrupted[start + 8] ^= 0xff; // first payload byte of the frame
        assert!(
            matches!(
                Wal::decode_records(&corrupted),
                Err(StorageError::WalCorrupt(_))
            ),
            "corruption at frame starting {start} must be detected"
        );
    }
}
