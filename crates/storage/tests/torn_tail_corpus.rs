//! Torn-tail corpus: a crash can cut the WAL at *any* byte offset
//! (append-mode writes land as a prefix of the frame). Replay must
//! recover the longest consistent prefix, truncate the torn bytes
//! away, and leave the log appendable — never report `WalCorrupt` for
//! a tail-only tear, and never mis-frame a subsequent append.

use youtopia_storage::{
    Column, DataType, Schema, StorageError, Tuple, Value, Wal, WalOp, WalRecord,
};

fn schema() -> Schema {
    Schema::with_primary_key(
        vec![
            Column::new("fno", DataType::Int64),
            Column::new("dest", DataType::Str),
        ],
        &["fno"],
    )
}

/// A coordination payload shaped like the core layer's registration
/// events: `tag`, two u32-length-prefixed strings, qid and seq as
/// big-endian u64, and — for the v2 (deadline-carrying) shape, tag 5 —
/// a trailing deadline u64. Storage treats payloads as opaque; these
/// shapes keep the truncation corpus representative of real logs,
/// v1 (pre-deadline) and v2 alike.
fn registration_payload(tag: u8, owner: &str, sql: &str, deadline: Option<u64>) -> Vec<u8> {
    let mut buf = vec![tag];
    for s in [owner, sql] {
        buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    buf.extend_from_slice(&7u64.to_be_bytes()); // qid
    buf.extend_from_slice(&3u64.to_be_bytes()); // seq
    if let Some(d) = deadline {
        buf.extend_from_slice(&d.to_be_bytes());
    }
    buf
}

/// A mixed log: DDL + DML storage frames interleaved with coordination
/// frames of several sizes (including empty, and both registration
/// event shapes).
fn corpus_records() -> Vec<WalRecord> {
    let mut records = vec![WalRecord::Storage(WalOp::CreateTable {
        name: "Flights".into(),
        schema: schema(),
    })];
    for i in 0..4 {
        records.push(WalRecord::Storage(WalOp::Insert {
            table: "Flights".into(),
            rid: i,
            tuple: Tuple::new(vec![Value::Int(100 + i as i64), Value::from("Paris")]),
        }));
        records.push(WalRecord::Coordination(vec![i as u8; i as usize * 7]));
    }
    records.push(WalRecord::Coordination(registration_payload(
        0,
        "kramer",
        "SELECT 'K', fno INTO ANSWER R CHOOSE 1",
        None,
    )));
    records.push(WalRecord::Coordination(registration_payload(
        5,
        "newman",
        "SELECT 'N', fno INTO ANSWER R CHOOSE 1",
        Some(123_456),
    )));
    records.push(WalRecord::Storage(WalOp::Delete {
        table: "Flights".into(),
        rid: 2,
    }));
    records
}

fn corpus_bytes() -> (Vec<u8>, Vec<usize>) {
    let mut wal = Wal::in_memory();
    let mut boundaries = vec![0usize];
    for record in corpus_records() {
        wal.append_record(&record).unwrap();
        boundaries.push(wal.raw_len().unwrap());
    }
    (wal.raw_bytes().unwrap().to_vec(), boundaries)
}

/// How many whole frames fit into a prefix of `cut` bytes.
fn frames_below(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().filter(|&&b| b != 0 && b <= cut).count()
}

#[test]
fn truncation_at_every_offset_recovers_the_longest_prefix() {
    let (bytes, boundaries) = corpus_bytes();
    let records = corpus_records();
    for cut in 0..=bytes.len() {
        let (decoded, consumed) =
            Wal::decode_records(&bytes[..cut]).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let expect = frames_below(&boundaries, cut);
        assert_eq!(decoded.len(), expect, "cut at {cut}");
        assert_eq!(consumed, boundaries[expect], "cut at {cut}");
        assert_eq!(decoded, records[..expect], "cut at {cut}");
    }
}

#[test]
fn truncated_memory_wal_is_appendable_after_replay() {
    let (bytes, boundaries) = corpus_bytes();
    let last_start = boundaries[boundaries.len() - 2];
    // byte-level truncations at every offset of the last frame
    for cut in last_start..bytes.len() {
        let mut wal = Wal::from_bytes(bytes[..cut].to_vec());
        let recovered = wal.replay_records().unwrap();
        assert_eq!(recovered.len(), corpus_records().len() - 1, "cut at {cut}");
        assert_eq!(wal.raw_len(), Some(last_start), "torn bytes truncated");
        // the log is clean again: appending and replaying roundtrips
        wal.append_coordination(b"post-crash").unwrap();
        let replayed = wal.replay_records().unwrap();
        assert_eq!(replayed.len(), corpus_records().len());
        assert_eq!(
            replayed.last().unwrap(),
            &WalRecord::Coordination(b"post-crash".to_vec())
        );
    }
}

#[test]
fn truncated_file_wal_is_truncated_on_disk_and_appendable() {
    let dir = std::env::temp_dir().join(format!("youtopia_torn_tail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (bytes, boundaries) = corpus_bytes();
    let last_start = boundaries[boundaries.len() - 2];
    // sample a handful of offsets inside the last frame (full sweep is
    // the memory test's job; file IO is slower)
    let offsets: Vec<usize> = (last_start..bytes.len()).step_by(3).collect();
    for (i, &cut) in offsets.iter().enumerate() {
        let path = dir.join(format!("torn_{i}.wal"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            let recovered = wal.replay_records().unwrap();
            assert_eq!(recovered.len(), corpus_records().len() - 1, "cut at {cut}");
            // the torn bytes are gone from disk
            assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, last_start);
            wal.append(&WalOp::Delete {
                table: "Flights".into(),
                rid: 0,
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // a later process sees a clean log including the new append
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.replay_records().unwrap().len(),
            corpus_records().len(),
            "cut at {cut}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn mid_log_corruption_is_still_detected() {
    let (bytes, boundaries) = corpus_bytes();
    // flip a payload byte in every frame *except the last*: corruption
    // before the tail must be reported, never silently truncated
    for w in boundaries[..boundaries.len() - 2].windows(2) {
        let (start, _end) = (w[0], w[1]);
        let mut corrupted = bytes.clone();
        corrupted[start + 8] ^= 0xff; // first payload byte of the frame
        assert!(
            matches!(
                Wal::decode_records(&corrupted),
                Err(StorageError::WalCorrupt(_))
            ),
            "corruption at frame starting {start} must be detected"
        );
    }
}
