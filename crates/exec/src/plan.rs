//! `EXPLAIN` for `SELECT` statements: renders the plan the
//! operator-at-a-time executor will follow, including the access path
//! chosen for each base table. The output mirrors
//! [`crate::select::execute_select_with_scopes`]'s actual stages, so
//! what EXPLAIN shows is what runs.

use std::fmt::Write as _;

use youtopia_sql::{JoinKind, Select, SelectItem};
use youtopia_storage::Catalog;

use crate::error::{ExecError, ExecResult};
use crate::eval::contains_aggregate;
use crate::select::{choose_access_path, AccessPath};

/// Renders the execution plan of `select` as an indented tree, leaves
/// (table accesses) innermost.
pub fn explain_select(catalog: &Catalog, select: &Select) -> ExecResult<String> {
    let mut stages: Vec<String> = Vec::new();

    // outermost stages first; each line is one stage, later indented
    if let Some(limit) = select.limit {
        let mut s = format!("Limit {limit}");
        if let Some(offset) = select.offset {
            let _ = write!(s, " OFFSET {offset}");
        }
        stages.push(s);
    } else if let Some(offset) = select.offset {
        stages.push(format!("Offset {offset}"));
    }
    if !select.order_by.is_empty() {
        let keys: Vec<String> = select
            .order_by
            .iter()
            .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { "" }))
            .collect();
        stages.push(format!("Sort [{}]", keys.join(", ")));
    }
    if select.distinct {
        stages.push("Distinct".to_string());
    }

    let is_aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            SelectItem::Wildcard => false,
        })
        || select.having.as_ref().is_some_and(contains_aggregate);

    let items: Vec<String> = select.items.iter().map(|i| i.to_string()).collect();
    if is_aggregate {
        let mut s = format!("Aggregate [{}]", items.join(", "));
        if !select.group_by.is_empty() {
            let keys: Vec<String> = select.group_by.iter().map(|g| g.to_string()).collect();
            let _ = write!(s, " GROUP BY [{}]", keys.join(", "));
        }
        if let Some(h) = &select.having {
            let _ = write!(s, " HAVING {h}");
        }
        stages.push(s);
    } else {
        stages.push(format!("Project [{}]", items.join(", ")));
    }

    if let Some(w) = &select.where_clause {
        stages.push(format!("Filter {w}"));
    }

    // FROM: one line per table-with-joins chain, cross products between
    let mut from_lines: Vec<String> = Vec::new();
    if select.from.is_empty() {
        from_lines.push("Values (one empty row)".to_string());
    } else {
        for twj in &select.from {
            let mut line = access_line(catalog, &twj.base.name, twj.base.alias.as_deref(), select)?;
            for join in &twj.joins {
                let right = access_line(
                    catalog,
                    &join.table.name,
                    join.table.alias.as_deref(),
                    select,
                )?;
                let kind = match join.kind {
                    JoinKind::Inner => "NestedLoopJoin",
                    JoinKind::Left => "NestedLoopLeftJoin",
                };
                line = format!("{kind} ON {} [{line} ⨯ {right}]", join.on);
            }
            from_lines.push(line);
        }
    }
    let from_stage = if from_lines.len() == 1 {
        from_lines.pop().expect("one line")
    } else {
        format!("CrossProduct [{}]", from_lines.join(" ⨯ "))
    };
    stages.push(from_stage);

    let mut out = String::new();
    for (depth, stage) in stages.iter().enumerate() {
        let _ = writeln!(out, "{}{stage}", "  ".repeat(depth));
    }
    // drop the trailing newline
    out.pop();
    Ok(out)
}

fn access_line(
    catalog: &Catalog,
    table_name: &str,
    alias: Option<&str>,
    select: &Select,
) -> ExecResult<String> {
    let table = catalog
        .table(table_name)
        .map_err(|_| ExecError::UnknownTable(table_name.to_string()))?;
    let qualifier = alias.unwrap_or(table_name);
    let suffix = if alias.is_some() {
        format!(" AS {qualifier}")
    } else {
        String::new()
    };
    Ok(
        match choose_access_path(table, qualifier, select.where_clause.as_ref()) {
            AccessPath::FullScan => {
                format!("SeqScan {table_name}{suffix} ({} rows)", table.len())
            }
            AccessPath::IndexProbe { index, key } => {
                let keys: Vec<String> = key.iter().map(|v| v.sql_literal()).collect();
                format!(
                    "IndexProbe {table_name}{suffix} via {index} key ({})",
                    keys.join(", ")
                )
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_exec_test_util::*;

    // local fixture helpers (no cross-crate test utils needed)
    mod youtopia_exec_test_util {
        pub use youtopia_sql::{parse_statement, Statement};
        pub use youtopia_storage::Database;

        pub fn fixture() -> Database {
            let db = Database::new();
            for sql in [
                "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING, price FLOAT)",
                "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (136, 'Rome', 300.0)",
                "CREATE TABLE Airlines (fno INT, airline STRING)",
                "CREATE INDEX airlines_by_fno ON Airlines (fno)",
            ] {
                youtopia_exec_run(&db, sql);
            }
            db
        }

        pub fn youtopia_exec_run(db: &Database, sql: &str) {
            crate::engine::run_sql(db, sql).unwrap();
        }

        pub fn plan_of(db: &Database, sql: &str) -> String {
            let Statement::Select(sel) = parse_statement(sql).unwrap() else {
                panic!("not a select")
            };
            let read = db.read();
            super::explain_select(read.catalog(), &sel).unwrap()
        }
    }

    #[test]
    fn seq_scan_plan() {
        let db = fixture();
        let plan = plan_of(&db, "SELECT * FROM Flights");
        assert_eq!(plan, "Project [*]\n  SeqScan Flights (2 rows)");
    }

    #[test]
    fn index_probe_appears_for_pk_equality() {
        let db = fixture();
        let plan = plan_of(&db, "SELECT dest FROM Flights WHERE fno = 122");
        assert!(plan.contains("Filter fno = 122"), "{plan}");
        assert!(
            plan.contains("IndexProbe Flights via Flights_pk key (122)"),
            "{plan}"
        );
    }

    #[test]
    fn full_stage_stack_renders_in_order() {
        let db = fixture();
        let plan = plan_of(
            &db,
            "SELECT DISTINCT dest FROM Flights WHERE price > 100 \
             ORDER BY dest DESC LIMIT 5 OFFSET 1",
        );
        let lines: Vec<&str> = plan.lines().map(str::trim_start).collect();
        assert_eq!(
            lines,
            vec![
                "Limit 5 OFFSET 1",
                "Sort [dest DESC]",
                "Distinct",
                "Project [dest]",
                "Filter price > 100",
                "SeqScan Flights (2 rows)",
            ],
            "{plan}"
        );
    }

    #[test]
    fn aggregate_plan() {
        let db = fixture();
        let plan = plan_of(
            &db,
            "SELECT dest, COUNT(*) FROM Flights GROUP BY dest HAVING COUNT(*) > 1",
        );
        assert!(
            plan.contains("Aggregate [dest, COUNT(*)] GROUP BY [dest] HAVING COUNT(*) > 1"),
            "{plan}"
        );
    }

    #[test]
    fn join_plan_names_both_sides() {
        let db = fixture();
        let plan = plan_of(
            &db,
            "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno WHERE f.fno = 122",
        );
        assert!(plan.contains("NestedLoopJoin ON f.fno = a.fno"), "{plan}");
        assert!(
            plan.contains("IndexProbe Flights AS f via Flights_pk"),
            "{plan}"
        );
        // the join side has an index on fno but the probe key must come
        // from a literal conjunct mentioning it; `f.fno = a.fno` is a
        // join predicate, so Airlines is scanned
        assert!(plan.contains("SeqScan Airlines AS a"), "{plan}");
    }

    #[test]
    fn cross_product_and_no_from() {
        let db = fixture();
        let plan = plan_of(&db, "SELECT f.fno, a.fno FROM Flights f, Airlines a");
        assert!(plan.contains("CrossProduct ["), "{plan}");
        let plan2 = plan_of(&db, "SELECT 1 + 1");
        assert!(plan2.contains("Values (one empty row)"), "{plan2}");
    }

    #[test]
    fn unknown_table_errors() {
        let db = fixture();
        let youtopia_sql::Statement::Select(sel) =
            youtopia_sql::parse_statement("SELECT * FROM Ghost").unwrap()
        else {
            panic!()
        };
        let read = db.read();
        assert!(matches!(
            explain_select(read.catalog(), &sel),
            Err(ExecError::UnknownTable(_))
        ));
    }
}
