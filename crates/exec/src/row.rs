//! Relation schemas used during execution: how column references in
//! expressions resolve to positions in the tuples flowing through the
//! operators.

use youtopia_storage::Table;

use crate::error::{ExecError, ExecResult};

/// One output column of an operator: an optional qualifier (table name
/// or alias) plus the column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// The qualifier under which the column is addressable (`f` in
    /// `f.fno`). `None` for computed columns.
    pub qualifier: Option<String>,
    /// Column (or alias) name.
    pub name: String,
}

impl ColRef {
    /// Unqualified column.
    pub fn bare(name: impl Into<String>) -> ColRef {
        ColRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified column.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColRef {
        ColRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

/// The schema of the tuples produced by one operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelSchema {
    cols: Vec<ColRef>,
}

impl RelSchema {
    /// Builds a schema from columns.
    pub fn new(cols: Vec<ColRef>) -> RelSchema {
        RelSchema { cols }
    }

    /// Schema exposing a stored table's columns under `qualifier`
    /// (the table's alias, or its name).
    pub fn from_table(table: &Table, qualifier: &str) -> RelSchema {
        RelSchema {
            cols: table
                .schema()
                .columns()
                .iter()
                .map(|c| ColRef::qualified(qualifier, &c.name))
                .collect(),
        }
    }

    /// The columns.
    pub fn cols(&self) -> &[ColRef] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Concatenation (for joins).
    pub fn concat(&self, other: &RelSchema) -> RelSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RelSchema { cols }
    }

    /// Resolves a column reference to its position.
    ///
    /// Qualified references must match the qualifier (case-insensitive);
    /// unqualified references must match exactly one column name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> ExecResult<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && match qualifier {
                        Some(q) => c
                            .qualifier
                            .as_deref()
                            .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(ExecError::UnknownColumn {
                table: qualifier.map(str::to_string),
                name: name.to_string(),
            }),
            _ => Err(ExecError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Like [`RelSchema::resolve`] but returns `None` instead of the
    /// unknown-column error (ambiguity is still an error). Used for
    /// scope-chain lookups where an outer scope may hold the column.
    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> ExecResult<Option<usize>> {
        match self.resolve(qualifier, name) {
            Ok(i) => Ok(Some(i)),
            Err(ExecError::UnknownColumn { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{Column, DataType, Schema, Table};

    fn schema() -> RelSchema {
        RelSchema::new(vec![
            ColRef::qualified("f", "fno"),
            ColRef::qualified("f", "dest"),
            ColRef::qualified("a", "fno"),
            ColRef::bare("total"),
        ])
    }

    #[test]
    fn qualified_resolution() {
        let s = schema();
        assert_eq!(s.resolve(Some("f"), "fno").unwrap(), 0);
        assert_eq!(s.resolve(Some("a"), "fno").unwrap(), 2);
        assert_eq!(s.resolve(Some("F"), "FNO").unwrap(), 0); // case-insensitive
    }

    #[test]
    fn unqualified_resolution() {
        let s = schema();
        assert_eq!(s.resolve(None, "dest").unwrap(), 1);
        assert_eq!(s.resolve(None, "total").unwrap(), 3);
        assert!(matches!(
            s.resolve(None, "fno"),
            Err(ExecError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            s.resolve(None, "ghost"),
            Err(ExecError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn try_resolve_soft_fails() {
        let s = schema();
        assert_eq!(s.try_resolve(None, "ghost").unwrap(), None);
        assert_eq!(s.try_resolve(None, "dest").unwrap(), Some(1));
        assert!(s.try_resolve(None, "fno").is_err()); // ambiguity is hard
    }

    #[test]
    fn from_table_uses_qualifier() {
        let t = Table::new(
            "Flights",
            Schema::new(vec![
                Column::new("fno", DataType::Int64),
                Column::new("dest", DataType::Str),
            ]),
        );
        let s = RelSchema::from_table(&t, "fl");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.resolve(Some("fl"), "dest").unwrap(), 1);
        assert!(s.resolve(Some("Flights"), "dest").is_err());
    }

    #[test]
    fn concat_offsets() {
        let a = RelSchema::new(vec![ColRef::bare("x")]);
        let b = RelSchema::new(vec![ColRef::bare("y")]);
        let c = a.concat(&b);
        assert_eq!(c.resolve(None, "y").unwrap(), 1);
    }
}
