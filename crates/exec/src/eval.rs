//! Expression evaluation with SQL three-valued logic.
//!
//! NULL is represented by [`Value::Null`] and plays the role of
//! *unknown*: comparisons against it yield NULL, `AND`/`OR` follow
//! Kleene logic, and a `WHERE` predicate only accepts rows for which the
//! predicate evaluates to exactly `TRUE`
//! ([`EvalContext::eval_predicate`]).
//!
//! The evaluator carries a *scope chain* so correlated subqueries can
//! reference columns of enclosing queries.

use youtopia_sql::{BinaryOp, Expr, UnaryOp};
use youtopia_storage::{Catalog, Tuple, Value};

use crate::error::{ExecError, ExecResult};
use crate::row::RelSchema;
use crate::select::execute_select_with_scopes;

/// One binding level: a row and the schema describing it.
#[derive(Clone, Copy)]
pub struct Scope<'a> {
    /// Schema of `row`.
    pub schema: &'a RelSchema,
    /// The current tuple.
    pub row: &'a Tuple,
}

/// Evaluation context: catalog access (for subqueries) plus the scope
/// chain, innermost scope last.
pub struct EvalContext<'a> {
    /// Catalog used to execute subqueries.
    pub catalog: &'a Catalog,
    /// Scope chain; lookups search from the innermost (last) outward.
    pub scopes: Vec<Scope<'a>>,
}

impl<'a> EvalContext<'a> {
    /// A context with no row bindings (constant expressions and
    /// uncorrelated subqueries only).
    pub fn bare(catalog: &'a Catalog) -> EvalContext<'a> {
        EvalContext {
            catalog,
            scopes: Vec::new(),
        }
    }

    /// A context with a single row scope.
    pub fn with_row(
        catalog: &'a Catalog,
        schema: &'a RelSchema,
        row: &'a Tuple,
    ) -> EvalContext<'a> {
        EvalContext {
            catalog,
            scopes: vec![Scope { schema, row }],
        }
    }

    /// Resolves a column through the scope chain.
    fn lookup(&self, table: Option<&str>, name: &str) -> ExecResult<Value> {
        for scope in self.scopes.iter().rev() {
            if let Some(pos) = scope.schema.try_resolve(table, name)? {
                return Ok(scope.row.values()[pos].clone());
            }
        }
        Err(ExecError::UnknownColumn {
            table: table.map(str::to_string),
            name: name.to_string(),
        })
    }

    /// Evaluates an expression to a value (NULL models *unknown*).
    pub fn eval(&self, expr: &Expr) -> ExecResult<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, name } => self.lookup(table.as_deref(), name),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                eval_unary(*op, v)
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right),
            Expr::Function { name, args, star } => self.eval_function(name, args, *star),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = self.eval(expr)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = self.eval(item)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if needle.sql_eq(&v) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::InSubquery {
                exprs,
                query,
                negated,
            } => {
                let needle: Vec<Value> = exprs
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<ExecResult<_>>()?;
                let result = execute_select_with_scopes(self.catalog, query, &self.scopes)?;
                if result.schema.arity() != needle.len() {
                    return Err(ExecError::SubqueryArity {
                        expected: needle.len(),
                        actual: result.schema.arity(),
                    });
                }
                if needle.iter().any(Value::is_null) {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for row in &result.rows {
                    let mut all_eq = true;
                    let mut row_null = false;
                    for (n, v) in needle.iter().zip(row.values()) {
                        if v.is_null() {
                            row_null = true;
                        } else if !n.sql_eq(v) {
                            all_eq = false;
                            break;
                        }
                    }
                    if all_eq && !row_null {
                        return Ok(Value::Bool(!*negated));
                    }
                    if all_eq && row_null {
                        saw_null = true;
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Exists { query, negated } => {
                let result = execute_select_with_scopes(self.catalog, query, &self.scopes)?;
                Ok(Value::Bool(result.rows.is_empty() == *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr)?;
                let lo = self.eval(low)?;
                let hi = self.eval(high)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = compare(&v, &lo)? >= std::cmp::Ordering::Equal
                    && compare(&v, &hi)? <= std::cmp::Ordering::Equal;
                Ok(Value::Bool(inside != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr)?;
                let p = self.eval(pattern)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(&s, &pat) != *negated))
                    }
                    _ => Err(ExecError::Type("LIKE requires string operands".into())),
                }
            }
            Expr::InAnswer { .. } => Err(ExecError::Unsupported(
                "IN ANSWER constraints are resolved by the coordination layer, \
                 not the SQL executor"
                    .into(),
            )),
            Expr::Tuple(_) => Err(ExecError::Unsupported(
                "a bare tuple is only allowed in front of IN".into(),
            )),
        }
    }

    fn eval_binary(&self, left: &Expr, op: BinaryOp, right: &Expr) -> ExecResult<Value> {
        // Kleene logic needs laziness only for error semantics; we keep
        // strict evaluation (both sides) for simplicity and determinism.
        match op {
            BinaryOp::And => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                return kleene_and(l, r);
            }
            BinaryOp::Or => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                return kleene_or(l, r);
            }
            _ => {}
        }
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        match op {
            BinaryOp::Eq => Ok(Value::Bool(l.sql_eq(&r))),
            BinaryOp::NotEq => Ok(Value::Bool(!l.sql_eq(&r))),
            BinaryOp::Lt => Ok(Value::Bool(compare(&l, &r)? == std::cmp::Ordering::Less)),
            BinaryOp::LtEq => Ok(Value::Bool(compare(&l, &r)? != std::cmp::Ordering::Greater)),
            BinaryOp::Gt => Ok(Value::Bool(compare(&l, &r)? == std::cmp::Ordering::Greater)),
            BinaryOp::GtEq => Ok(Value::Bool(compare(&l, &r)? != std::cmp::Ordering::Less)),
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                arith(op, l, r)
            }
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_function(&self, name: &str, args: &[Expr], star: bool) -> ExecResult<Value> {
        if is_aggregate_name(name) {
            return Err(ExecError::Aggregate(format!(
                "aggregate {name}() is not valid in this position"
            )));
        }
        if star {
            return Err(ExecError::Unsupported(format!("{name}(*)")));
        }
        let vals: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<ExecResult<_>>()?;
        match (name, vals.as_slice()) {
            ("LOWER", [Value::Str(s)]) => Ok(Value::Str(s.to_lowercase())),
            ("UPPER", [Value::Str(s)]) => Ok(Value::Str(s.to_uppercase())),
            ("LENGTH", [Value::Str(s)]) => Ok(Value::Int(s.chars().count() as i64)),
            ("ABS", [Value::Int(i)]) => Ok(Value::Int(
                i.checked_abs()
                    .ok_or_else(|| ExecError::Type("ABS overflow".into()))?,
            )),
            ("ABS", [Value::Float(x)]) => Ok(Value::Float(x.abs())),
            ("LOWER" | "UPPER" | "LENGTH" | "ABS", [Value::Null]) => Ok(Value::Null),
            ("COALESCE", vals) => {
                for v in vals {
                    if !v.is_null() {
                        return Ok(v.clone());
                    }
                }
                Ok(Value::Null)
            }
            (other, _) => Err(ExecError::Unsupported(format!(
                "function {other}() with {} argument(s)",
                args.len()
            ))),
        }
    }

    /// Evaluates a predicate: rows pass only on exactly `TRUE`.
    pub fn eval_predicate(&self, expr: &Expr) -> ExecResult<bool> {
        match self.eval(expr)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(ExecError::Type(format!(
                "predicate evaluated to non-boolean {other:?}"
            ))),
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> ExecResult<Value> {
    match (op, v) {
        (_, Value::Null) => Ok(Value::Null),
        (UnaryOp::Neg, Value::Int(i)) => i
            .checked_neg()
            .map(Value::Int)
            .ok_or_else(|| ExecError::Type("negation overflow".into())),
        (UnaryOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
        (UnaryOp::Neg, other) => Err(ExecError::Type(format!("cannot negate {other:?}"))),
        (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnaryOp::Not, other) => Err(ExecError::Type(format!("NOT applied to {other:?}"))),
    }
}

fn kleene_and(l: Value, r: Value) -> ExecResult<Value> {
    match (bool3(l)?, bool3(r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
        (Some(true), Some(true)) => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

fn kleene_or(l: Value, r: Value) -> ExecResult<Value> {
    match (bool3(l)?, bool3(r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
        (Some(false), Some(false)) => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

fn bool3(v: Value) -> ExecResult<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(ExecError::Type(format!("expected boolean, got {other:?}"))),
    }
}

/// Ordered comparison for the comparison operators; requires comparable
/// (same-class) operands.
fn compare(l: &Value, r: &Value) -> ExecResult<std::cmp::Ordering> {
    use Value::*;
    let ok = matches!(
        (l, r),
        (Int(_), Int(_))
            | (Int(_), Float(_))
            | (Float(_), Int(_))
            | (Float(_), Float(_))
            | (Str(_), Str(_))
            | (Bool(_), Bool(_))
            | (Bytes(_), Bytes(_))
    );
    if !ok {
        return Err(ExecError::Type(format!("cannot compare {l:?} with {r:?}")));
    }
    Ok(l.total_cmp(r))
}

fn arith(op: BinaryOp, l: Value, r: Value) -> ExecResult<Value> {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => {
            let out = match op {
                BinaryOp::Add => a.checked_add(b),
                BinaryOp::Sub => a.checked_sub(b),
                BinaryOp::Mul => a.checked_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    a.checked_div(b)
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Int)
                .ok_or_else(|| ExecError::Type("integer overflow".into()))
        }
        (a, b) => {
            let (x, y) = match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(ExecError::Type(format!(
                        "arithmetic on non-numeric operands ({} {})",
                        a.sql_literal(),
                        b.sql_literal()
                    )))
                }
            };
            let out = match op {
                BinaryOp::Add => x + y,
                BinaryOp::Sub => x - y,
                BinaryOp::Mul => x * y,
                BinaryOp::Div => {
                    if y == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    x / y
                }
                BinaryOp::Mod => {
                    if y == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Float(out))
        }
    }
}

/// SQL `LIKE` matching: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try consuming 0..=len chars
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

/// True when `name` is one of the supported aggregate functions.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// True when the expression tree contains an aggregate call.
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, args, .. } => {
            is_aggregate_name(name) || args.iter().any(contains_aggregate)
        }
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::Tuple(list) => list.iter().any(contains_aggregate),
        Expr::InSubquery { exprs, .. } => exprs.iter().any(contains_aggregate),
        Expr::InAnswer { exprs, .. } => exprs.iter().any(contains_aggregate),
        Expr::Literal(_) | Expr::Column { .. } | Expr::Exists { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::ColRef;
    use youtopia_sql::parse_expr;

    fn ctx_catalog() -> Catalog {
        Catalog::new()
    }

    fn eval_const(sql: &str) -> ExecResult<Value> {
        let catalog = ctx_catalog();
        let ctx = EvalContext::bare(&catalog);
        ctx.eval(&parse_expr(sql).unwrap())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_const("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_const("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_const("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval_const("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval_const("-(2 + 3)").unwrap(), Value::Int(-5));
        assert_eq!(eval_const("1 / 0").unwrap_err(), ExecError::DivisionByZero);
        assert_eq!(eval_const("1 % 0").unwrap_err(), ExecError::DivisionByZero);
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(matches!(
            eval_const("9223372036854775807 + 1"),
            Err(ExecError::Type(_))
        ));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_const("1 < 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("2 <= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("'a' < 'b'").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("1 = 1.0").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("1 <> 2").unwrap(), Value::Bool(true));
        assert!(matches!(eval_const("1 < 'a'"), Err(ExecError::Type(_))));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_const("NULL = 1").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("NULL OR FALSE").unwrap(), Value::Null);
        assert_eq!(eval_const("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("1 IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_with_nulls() {
        assert_eq!(eval_const("1 IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("3 IN (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("3 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const("1 IN (1, NULL)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("NULL IN (1, 2)").unwrap(), Value::Null);
        assert_eq!(eval_const("3 NOT IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("3 NOT IN (1, NULL)").unwrap(), Value::Null);
    }

    #[test]
    fn between_and_like() {
        assert_eq!(eval_const("2 BETWEEN 1 AND 3").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("0 BETWEEN 1 AND 3").unwrap(), Value::Bool(false));
        assert_eq!(
            eval_const("2 NOT BETWEEN 1 AND 3").unwrap(),
            Value::Bool(false)
        );
        assert_eq!(eval_const("NULL BETWEEN 1 AND 3").unwrap(), Value::Null);
        assert_eq!(eval_const("'Jerry' LIKE 'J%'").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_const("'Jerry' LIKE '_erry'").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_const("'Jerry' NOT LIKE 'K%'").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_const("'Jerry' LIKE NULL").unwrap(), Value::Null);
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%b%"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("a%b", "a%b")); // literal traversal via %
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_const("LOWER('Paris')").unwrap(), Value::from("paris"));
        assert_eq!(eval_const("UPPER('ab')").unwrap(), Value::from("AB"));
        assert_eq!(eval_const("LENGTH('abc')").unwrap(), Value::Int(3));
        assert_eq!(eval_const("ABS(-4)").unwrap(), Value::Int(4));
        assert_eq!(eval_const("ABS(-4.5)").unwrap(), Value::Float(4.5));
        assert_eq!(eval_const("COALESCE(NULL, 2, 3)").unwrap(), Value::Int(2));
        assert_eq!(eval_const("COALESCE(NULL, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const("LOWER(NULL)").unwrap(), Value::Null);
        assert!(matches!(
            eval_const("NOSUCH(1)"),
            Err(ExecError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregates_rejected_in_scalar_position() {
        assert!(matches!(
            eval_const("COUNT(*)"),
            Err(ExecError::Aggregate(_))
        ));
        assert!(matches!(eval_const("SUM(1)"), Err(ExecError::Aggregate(_))));
    }

    #[test]
    fn in_answer_rejected_by_executor() {
        let catalog = ctx_catalog();
        let ctx = EvalContext::bare(&catalog);
        let e = parse_expr("('J', 1) IN ANSWER R").unwrap();
        assert!(matches!(ctx.eval(&e), Err(ExecError::Unsupported(_))));
    }

    #[test]
    fn column_lookup_through_scopes() {
        let catalog = ctx_catalog();
        let outer_schema = RelSchema::new(vec![ColRef::qualified("o", "x")]);
        let outer_row = Tuple::new(vec![Value::Int(10)]);
        let inner_schema = RelSchema::new(vec![ColRef::qualified("i", "y")]);
        let inner_row = Tuple::new(vec![Value::Int(20)]);
        let ctx = EvalContext {
            catalog: &catalog,
            scopes: vec![
                Scope {
                    schema: &outer_schema,
                    row: &outer_row,
                },
                Scope {
                    schema: &inner_schema,
                    row: &inner_row,
                },
            ],
        };
        assert_eq!(ctx.eval(&Expr::qcol("o", "x")).unwrap(), Value::Int(10));
        assert_eq!(ctx.eval(&Expr::qcol("i", "y")).unwrap(), Value::Int(20));
        assert_eq!(ctx.eval(&Expr::col("y")).unwrap(), Value::Int(20));
        assert!(ctx.eval(&Expr::col("ghost")).is_err());
    }

    #[test]
    fn predicate_null_is_false() {
        let catalog = ctx_catalog();
        let ctx = EvalContext::bare(&catalog);
        assert!(!ctx
            .eval_predicate(&parse_expr("NULL = 1").unwrap())
            .unwrap());
        assert!(ctx.eval_predicate(&parse_expr("1 = 1").unwrap()).unwrap());
        assert!(ctx.eval_predicate(&parse_expr("5").unwrap()).is_err());
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        assert!(contains_aggregate(&parse_expr("COUNT(*)").unwrap()));
        assert!(contains_aggregate(&parse_expr("1 + SUM(x)").unwrap()));
        assert!(contains_aggregate(
            &parse_expr("MAX(x) BETWEEN 1 AND 2").unwrap()
        ));
        assert!(!contains_aggregate(&parse_expr("x + 1").unwrap()));
        assert!(!contains_aggregate(&parse_expr("LOWER(x)").unwrap()));
    }
}
