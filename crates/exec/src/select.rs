//! Execution of `SELECT` queries.
//!
//! The engine is operator-at-a-time: each stage (FROM with joins, WHERE,
//! grouping/aggregation, projection, DISTINCT, ORDER BY, LIMIT)
//! materializes its output. An access-path chooser uses hash indexes for
//! equality predicates on base tables ([`choose_access_path`]), which
//! the matcher relies on when evaluating entangled database predicates.

use std::collections::HashMap;

use youtopia_sql::{
    BinaryOp, Expr, JoinKind, OrderByItem, Select, SelectItem, TableAtom, TableWithJoins,
};
use youtopia_storage::{Catalog, Table, Tuple, Value};

use crate::error::{ExecError, ExecResult};
use crate::eval::{contains_aggregate, is_aggregate_name, EvalContext, Scope};
use crate::row::{ColRef, RelSchema};

/// A fully materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Schema of the result columns.
    pub schema: RelSchema,
    /// The result rows.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Column display names.
    pub fn column_names(&self) -> Vec<String> {
        self.schema.cols().iter().map(|c| c.name.clone()).collect()
    }
}

/// Executes a `SELECT` with no outer (correlation) scopes.
pub fn execute_select(catalog: &Catalog, select: &Select) -> ExecResult<ResultSet> {
    execute_select_with_scopes(catalog, select, &[])
}

/// Executes a `SELECT`; `outer` provides correlation scopes for
/// subqueries (innermost last).
pub fn execute_select_with_scopes(
    catalog: &Catalog,
    select: &Select,
    outer: &[Scope<'_>],
) -> ExecResult<ResultSet> {
    // 1. FROM
    let (input_schema, mut input_rows) = execute_from(catalog, select, outer)?;

    // 2. WHERE
    if let Some(pred) = &select.where_clause {
        let mut kept = Vec::with_capacity(input_rows.len());
        for row in input_rows {
            let mut scopes = outer.to_vec();
            scopes.push(Scope {
                schema: &input_schema,
                row: &row,
            });
            let ctx = EvalContext { catalog, scopes };
            if ctx.eval_predicate(pred)? {
                kept.push(row);
            }
        }
        input_rows = kept;
    }

    // 3. aggregation or plain projection
    let is_aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            SelectItem::Wildcard => false,
        })
        || select.having.as_ref().is_some_and(contains_aggregate);

    let (out_schema, mut out_rows, in_rows_for_sort) = if is_aggregate {
        let (schema, rows) = execute_aggregate(catalog, select, &input_schema, &input_rows, outer)?;
        (schema, rows, None)
    } else {
        if select.having.is_some() {
            return Err(ExecError::Aggregate(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        let (schema, rows) = project(catalog, select, &input_schema, &input_rows, outer)?;
        (schema, rows, Some(input_rows))
    };

    // 4. DISTINCT
    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept_out = Vec::with_capacity(out_rows.len());
        for (i, row) in out_rows.iter().enumerate() {
            if seen.insert(row.clone()) {
                kept_out.push((i, row.clone()));
            }
        }
        // DISTINCT breaks the out-row/in-row correspondence for sorting by
        // input columns; restrict ORDER BY to output columns in that case.
        out_rows = kept_out.into_iter().map(|(_, r)| r).collect();
        return finish(catalog, select, out_schema, out_rows, None, outer);
    }

    finish(
        catalog,
        select,
        out_schema,
        out_rows,
        in_rows_for_sort.map(|r| (input_schema, r)),
        outer,
    )
}

/// ORDER BY + LIMIT/OFFSET.
fn finish(
    catalog: &Catalog,
    select: &Select,
    out_schema: RelSchema,
    out_rows: Vec<Tuple>,
    input: Option<(RelSchema, Vec<Tuple>)>,
    outer: &[Scope<'_>],
) -> ExecResult<ResultSet> {
    let mut rows = out_rows;
    if !select.order_by.is_empty() {
        rows = order_rows(
            catalog,
            &select.order_by,
            &out_schema,
            rows,
            input.as_ref(),
            outer,
        )?;
    }
    let offset = select.offset.unwrap_or(0) as usize;
    if offset > 0 {
        rows = rows.into_iter().skip(offset).collect();
    }
    if let Some(limit) = select.limit {
        rows.truncate(limit as usize);
    }
    Ok(ResultSet {
        schema: out_schema,
        rows,
    })
}

// --------------------------------------------------------------------- //
// FROM clause
// --------------------------------------------------------------------- //

fn execute_from(
    catalog: &Catalog,
    select: &Select,
    outer: &[Scope<'_>],
) -> ExecResult<(RelSchema, Vec<Tuple>)> {
    if select.from.is_empty() {
        // `SELECT 1`: one empty input row.
        return Ok((RelSchema::default(), vec![Tuple::empty()]));
    }
    let mut schema: Option<RelSchema> = None;
    let mut rows: Vec<Tuple> = Vec::new();
    for (i, twj) in select.from.iter().enumerate() {
        let (s, r) = execute_table_with_joins(catalog, twj, select, outer)?;
        if i == 0 {
            schema = Some(s);
            rows = r;
        } else {
            // cross product with previously accumulated rows
            let prev_schema = schema.take().expect("set on first iteration");
            schema = Some(prev_schema.concat(&s));
            let mut combined = Vec::with_capacity(rows.len() * r.len());
            for left in &rows {
                for right in &r {
                    combined.push(left.concat(right));
                }
            }
            rows = combined;
        }
    }
    Ok((schema.expect("from is non-empty"), rows))
}

fn execute_table_with_joins(
    catalog: &Catalog,
    twj: &TableWithJoins,
    select: &Select,
    outer: &[Scope<'_>],
) -> ExecResult<(RelSchema, Vec<Tuple>)> {
    let (mut schema, mut rows) = scan_atom(catalog, &twj.base, select)?;
    for join in &twj.joins {
        let (right_schema, right_rows) = scan_atom(catalog, &join.table, select)?;
        let joined_schema = schema.concat(&right_schema);
        let mut joined = Vec::new();
        for left in &rows {
            let mut matched = false;
            for right in &right_rows {
                let candidate = left.concat(right);
                let mut scopes = outer.to_vec();
                scopes.push(Scope {
                    schema: &joined_schema,
                    row: &candidate,
                });
                let ctx = EvalContext { catalog, scopes };
                if ctx.eval_predicate(&join.on)? {
                    matched = true;
                    joined.push(candidate);
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let nulls = Tuple::new(vec![Value::Null; right_schema.arity()]);
                joined.push(left.concat(&nulls));
            }
        }
        schema = joined_schema;
        rows = joined;
    }
    Ok((schema, rows))
}

/// The access path chosen for a base-table scan.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full table scan.
    FullScan,
    /// Probe of the named index with the given key.
    IndexProbe {
        /// Index name (for EXPLAIN-style output).
        index: String,
        /// Probe key values.
        key: Vec<Value>,
    },
}

/// Chooses an access path for scanning `atom` given the query's WHERE
/// clause: a single-column hash/ordered index whose column appears in a
/// `col = literal` conjunct is probed instead of scanning.
///
/// This is deliberately conservative (single conjunct, literal only,
/// no join predicates): the full WHERE clause is still applied
/// afterwards, so the probe is purely a prefilter and never changes
/// results.
pub fn choose_access_path(
    table: &Table,
    qualifier: &str,
    where_clause: Option<&Expr>,
) -> AccessPath {
    let Some(pred) = where_clause else {
        return AccessPath::FullScan;
    };
    for conjunct in pred.conjuncts() {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = conjunct
        else {
            continue;
        };
        // col = literal, in either order
        let (col, lit) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column { table: q, name }, Expr::Literal(v)) => ((q, name), v),
            (Expr::Literal(v), Expr::Column { table: q, name }) => ((q, name), v),
            _ => continue,
        };
        if let Some(q) = col.0 {
            if !q.eq_ignore_ascii_case(qualifier) {
                continue;
            }
        } else {
            // Unqualified: only safe when the column name is unique to
            // this table in simple single-table queries; we accept it if
            // the table has the column (the residual filter stays on).
        }
        let Some(pos) = table.schema().column_index(col.1) else {
            continue;
        };
        if let Some(idx) = table.find_index_on(&[pos]) {
            return AccessPath::IndexProbe {
                index: idx.name().to_string(),
                key: vec![lit.clone()],
            };
        }
    }
    AccessPath::FullScan
}

fn scan_atom(
    catalog: &Catalog,
    atom: &TableAtom,
    select: &Select,
) -> ExecResult<(RelSchema, Vec<Tuple>)> {
    let table = catalog
        .table(&atom.name)
        .map_err(|_| ExecError::UnknownTable(atom.name.clone()))?;
    let qualifier = atom.alias.clone().unwrap_or_else(|| atom.name.clone());
    let schema = RelSchema::from_table(table, &qualifier);
    // Index-probe only helps for the single-table case; with joins the
    // predicate may reference other tables, but since the residual WHERE
    // is always re-applied, a probe keyed on this table's own literal
    // conjuncts is still sound.
    let rows = match choose_access_path(table, &qualifier, select.where_clause.as_ref()) {
        AccessPath::IndexProbe { index, key } => {
            let idx = table
                .index(&index)
                .expect("chooser returned existing index");
            idx.probe(&key)
                .iter()
                .filter_map(|rid| table.get(*rid))
                .cloned()
                .collect()
        }
        AccessPath::FullScan => table.scan().map(|(_, t)| t.clone()).collect(),
    };
    Ok((schema, rows))
}

// --------------------------------------------------------------------- //
// Projection
// --------------------------------------------------------------------- //

fn output_col_for_item(item: &SelectItem) -> ColRef {
    match item {
        SelectItem::Wildcard => unreachable!("wildcard expanded before naming"),
        SelectItem::Expr {
            expr,
            alias: Some(a),
        } => {
            let _ = expr;
            ColRef::bare(a.clone())
        }
        SelectItem::Expr {
            expr: Expr::Column { table, name },
            alias: None,
        } => ColRef {
            qualifier: table.clone(),
            name: name.clone(),
        },
        SelectItem::Expr { expr, alias: None } => ColRef::bare(expr.to_string()),
    }
}

fn project(
    catalog: &Catalog,
    select: &Select,
    input_schema: &RelSchema,
    input_rows: &[Tuple],
    outer: &[Scope<'_>],
) -> ExecResult<(RelSchema, Vec<Tuple>)> {
    // Build output schema (wildcards expand to the full input schema).
    let mut out_cols: Vec<ColRef> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => out_cols.extend(input_schema.cols().iter().cloned()),
            other => out_cols.push(output_col_for_item(other)),
        }
    }
    let out_schema = RelSchema::new(out_cols);

    let mut out_rows = Vec::with_capacity(input_rows.len());
    for row in input_rows {
        let mut values = Vec::with_capacity(out_schema.arity());
        for item in &select.items {
            match item {
                SelectItem::Wildcard => values.extend(row.values().iter().cloned()),
                SelectItem::Expr { expr, .. } => {
                    let mut scopes = outer.to_vec();
                    scopes.push(Scope {
                        schema: input_schema,
                        row,
                    });
                    let ctx = EvalContext { catalog, scopes };
                    values.push(ctx.eval(expr)?);
                }
            }
        }
        out_rows.push(Tuple::new(values));
    }
    Ok((out_schema, out_rows))
}

// --------------------------------------------------------------------- //
// Aggregation
// --------------------------------------------------------------------- //

struct GroupEvaluator<'a> {
    catalog: &'a Catalog,
    group_exprs: &'a [Expr],
    /// Values of the group expressions for this group.
    group_key: &'a [Value],
    rows: &'a [Tuple],
    schema: &'a RelSchema,
    outer: &'a [Scope<'a>],
}

impl GroupEvaluator<'_> {
    fn eval(&self, expr: &Expr) -> ExecResult<Value> {
        // A select/having expression equal to a GROUP BY expression takes
        // the group's key value.
        if let Some(pos) = self.group_exprs.iter().position(|g| g == expr) {
            return Ok(self.group_key[pos].clone());
        }
        match expr {
            Expr::Function { name, args, star } if is_aggregate_name(name) => {
                self.eval_aggregate(name, args, *star)
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Unary { op, expr } => {
                let inner = self.eval(expr)?;
                // reuse scalar machinery via a tiny context on a dummy row
                let tmp_schema = RelSchema::default();
                let tmp_row = Tuple::empty();
                let ctx = EvalContext::with_row(self.catalog, &tmp_schema, &tmp_row);
                ctx.eval(&Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(inner)),
                })
            }
            Expr::Binary { left, op, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let tmp_schema = RelSchema::default();
                let tmp_row = Tuple::empty();
                let ctx = EvalContext::with_row(self.catalog, &tmp_schema, &tmp_row);
                ctx.eval(&Expr::Binary {
                    left: Box::new(Expr::Literal(l)),
                    op: *op,
                    right: Box::new(Expr::Literal(r)),
                })
            }
            Expr::Column { table, name } => Err(ExecError::Aggregate(format!(
                "column '{}' must appear in GROUP BY or inside an aggregate",
                match table {
                    Some(t) => format!("{t}.{name}"),
                    None => name.clone(),
                }
            ))),
            other => Err(ExecError::Aggregate(format!(
                "unsupported expression in aggregate query: {other}"
            ))),
        }
    }

    fn eval_aggregate(&self, name: &str, args: &[Expr], star: bool) -> ExecResult<Value> {
        if star {
            if name != "COUNT" {
                return Err(ExecError::Aggregate(format!("{name}(*) is not defined")));
            }
            return Ok(Value::Int(self.rows.len() as i64));
        }
        if args.len() != 1 {
            return Err(ExecError::Aggregate(format!(
                "{name}() takes exactly one argument"
            )));
        }
        // Evaluate the argument per row (NULLs are skipped, SQL-style).
        let mut vals = Vec::with_capacity(self.rows.len());
        for row in self.rows {
            let mut scopes = self.outer.to_vec();
            scopes.push(Scope {
                schema: self.schema,
                row,
            });
            let ctx = EvalContext {
                catalog: self.catalog,
                scopes,
            };
            let v = ctx.eval(&args[0])?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        match name {
            "COUNT" => Ok(Value::Int(vals.len() as i64)),
            "MIN" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
            "MAX" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
            "SUM" | "AVG" => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                let n = vals.len();
                if all_int && name == "SUM" {
                    let mut acc: i64 = 0;
                    for v in &vals {
                        acc = acc
                            .checked_add(v.as_int().expect("all ints"))
                            .ok_or_else(|| ExecError::Type("SUM overflow".into()))?;
                    }
                    Ok(Value::Int(acc))
                } else {
                    let mut acc = 0.0;
                    for v in &vals {
                        acc += v.as_float().ok_or_else(|| {
                            ExecError::Type(format!("{name}() over non-numeric value"))
                        })?;
                    }
                    if name == "AVG" {
                        Ok(Value::Float(acc / n as f64))
                    } else {
                        Ok(Value::Float(acc))
                    }
                }
            }
            other => Err(ExecError::Aggregate(format!("unknown aggregate {other}()"))),
        }
    }
}

fn execute_aggregate(
    catalog: &Catalog,
    select: &Select,
    input_schema: &RelSchema,
    input_rows: &[Tuple],
    outer: &[Scope<'_>],
) -> ExecResult<(RelSchema, Vec<Tuple>)> {
    // group rows by the GROUP BY key
    let mut groups: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in input_rows {
        let mut key = Vec::with_capacity(select.group_by.len());
        for g in &select.group_by {
            let mut scopes = outer.to_vec();
            scopes.push(Scope {
                schema: input_schema,
                row,
            });
            let ctx = EvalContext { catalog, scopes };
            key.push(ctx.eval(g)?);
        }
        match index.get(&key) {
            Some(&i) => groups[i].1.push(row.clone()),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row.clone()]));
            }
        }
    }
    // With no GROUP BY, aggregates run over all rows as one group (even
    // when empty).
    if select.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut out_cols = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                return Err(ExecError::Aggregate(
                    "'*' is not allowed with GROUP BY".into(),
                ))
            }
            other => out_cols.push(output_col_for_item(other)),
        }
    }
    let out_schema = RelSchema::new(out_cols);

    let mut out_rows = Vec::with_capacity(groups.len());
    for (key, rows) in &groups {
        let ge = GroupEvaluator {
            catalog,
            group_exprs: &select.group_by,
            group_key: key,
            rows,
            schema: input_schema,
            outer,
        };
        if let Some(having) = &select.having {
            match ge.eval(having)? {
                Value::Bool(true) => {}
                Value::Bool(false) | Value::Null => continue,
                other => {
                    return Err(ExecError::Type(format!(
                        "HAVING evaluated to non-boolean {other:?}"
                    )))
                }
            }
        }
        let mut values = Vec::with_capacity(select.items.len());
        for item in &select.items {
            let SelectItem::Expr { expr, .. } = item else {
                unreachable!()
            };
            values.push(ge.eval(expr)?);
        }
        out_rows.push(Tuple::new(values));
    }
    Ok((out_schema, out_rows))
}

// --------------------------------------------------------------------- //
// ORDER BY
// --------------------------------------------------------------------- //

fn order_rows(
    catalog: &Catalog,
    order_by: &[OrderByItem],
    out_schema: &RelSchema,
    out_rows: Vec<Tuple>,
    input: Option<&(RelSchema, Vec<Tuple>)>,
    outer: &[Scope<'_>],
) -> ExecResult<Vec<Tuple>> {
    // Compute sort keys: each ORDER BY expression is evaluated against
    // the output row first (covers aliases); if it doesn't resolve there
    // and the input rows are still aligned with the output, fall back to
    // the input row (covers sorting by non-projected columns).
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(out_rows.len());
    for (i, row) in out_rows.into_iter().enumerate() {
        let mut key = Vec::with_capacity(order_by.len());
        for item in order_by {
            let ctx = EvalContext::with_row(catalog, out_schema, &row);
            let v = match ctx.eval(&item.expr) {
                Ok(v) => v,
                Err(ExecError::UnknownColumn { .. }) => {
                    let Some((in_schema, in_rows)) = input else {
                        return Err(ExecError::UnknownColumn {
                            table: None,
                            name: item.expr.to_string(),
                        });
                    };
                    let in_row = &in_rows[i];
                    let mut scopes = outer.to_vec();
                    scopes.push(Scope {
                        schema: in_schema,
                        row: in_row,
                    });
                    let ctx = EvalContext { catalog, scopes };
                    ctx.eval(&item.expr)?
                }
                Err(e) => return Err(e),
            };
            key.push(v);
        }
        keyed.push((key, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (item, (a, b)) in order_by.iter().zip(ka.iter().zip(kb.iter())) {
            let ord = a.total_cmp(b);
            let ord = if item.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_sql::parse_statement;
    use youtopia_storage::{Column, DataType, Database, Schema};

    fn fixture() -> Database {
        let db = Database::new();
        db.with_txn(|txn| {
            txn.create_table(
                "Flights",
                Schema::with_primary_key(
                    vec![
                        Column::new("fno", DataType::Int64),
                        Column::new("dest", DataType::Str),
                        Column::nullable("price", DataType::Float64),
                    ],
                    &["fno"],
                ),
            )?;
            for (fno, dest, price) in [
                (122, "Paris", Some(450.0)),
                (123, "Paris", Some(500.0)),
                (134, "Paris", None),
                (136, "Rome", Some(300.0)),
            ] {
                txn.insert(
                    "Flights",
                    Tuple::new(vec![
                        Value::Int(fno),
                        Value::from(dest),
                        price.map(Value::Float).unwrap_or(Value::Null),
                    ]),
                )?;
            }
            txn.create_table(
                "Airlines",
                Schema::new(vec![
                    Column::new("fno", DataType::Int64),
                    Column::new("airline", DataType::Str),
                ]),
            )?;
            for (fno, airline) in [
                (122, "United"),
                (123, "United"),
                (134, "Lufthansa"),
                (136, "Alitalia"),
            ] {
                txn.insert(
                    "Airlines",
                    Tuple::new(vec![Value::Int(fno), Value::from(airline)]),
                )?;
            }
            Ok(())
        })
        .unwrap();
        db
    }

    fn run(db: &Database, sql: &str) -> ResultSet {
        let stmt = parse_statement(sql).unwrap();
        let youtopia_sql::Statement::Select(sel) = stmt else {
            panic!("not a select")
        };
        let read = db.read();
        execute_select(read.catalog(), &sel).unwrap_or_else(|e| panic!("exec '{sql}': {e}"))
    }

    fn run_err(db: &Database, sql: &str) -> ExecError {
        let stmt = parse_statement(sql).unwrap();
        let youtopia_sql::Statement::Select(sel) = stmt else {
            panic!("not a select")
        };
        let read = db.read();
        execute_select(read.catalog(), &sel).unwrap_err()
    }

    fn ints(rs: &ResultSet, col: usize) -> Vec<i64> {
        rs.rows
            .iter()
            .map(|r| r.values()[col].as_int().unwrap())
            .collect()
    }

    #[test]
    fn select_star() {
        let db = fixture();
        let rs = run(&db, "SELECT * FROM Flights");
        assert_eq!(rs.rows.len(), 4);
        assert_eq!(rs.schema.arity(), 3);
        assert_eq!(rs.column_names(), vec!["fno", "dest", "price"]);
    }

    #[test]
    fn where_filter() {
        let db = fixture();
        let rs = run(&db, "SELECT fno FROM Flights WHERE dest = 'Paris'");
        assert_eq!(ints(&rs, 0), vec![122, 123, 134]);
    }

    #[test]
    fn where_with_null_price_is_excluded_from_comparisons() {
        let db = fixture();
        let rs = run(&db, "SELECT fno FROM Flights WHERE price < 10000");
        // flight 134 has NULL price: excluded (3VL)
        assert_eq!(ints(&rs, 0), vec![122, 123, 136]);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT fno + 1000 AS big, UPPER(dest) FROM Flights WHERE fno = 122",
        );
        assert_eq!(rs.column_names()[0], "big");
        assert_eq!(rs.rows[0].values()[0], Value::Int(1122));
        assert_eq!(rs.rows[0].values()[1], Value::from("PARIS"));
    }

    #[test]
    fn inner_join() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT f.fno, a.airline FROM Flights f JOIN Airlines a ON f.fno = a.fno \
             WHERE f.dest = 'Paris' ORDER BY f.fno",
        );
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0].values()[1], Value::from("United"));
        assert_eq!(rs.rows[2].values()[1], Value::from("Lufthansa"));
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = fixture();
        db.with_txn(|txn| {
            txn.insert(
                "Flights",
                Tuple::new(vec![Value::Int(200), Value::from("Oslo"), Value::Null]),
            )
            .map(|_| ())
        })
        .unwrap();
        let rs = run(
            &db,
            "SELECT f.fno, a.airline FROM Flights f LEFT JOIN Airlines a ON f.fno = a.fno \
             ORDER BY f.fno",
        );
        assert_eq!(rs.rows.len(), 5);
        let oslo = rs
            .rows
            .iter()
            .find(|r| r.values()[0] == Value::Int(200))
            .unwrap();
        assert_eq!(oslo.values()[1], Value::Null);
    }

    #[test]
    fn cross_product_from_list() {
        let db = fixture();
        let rs = run(&db, "SELECT f.fno, a.airline FROM Flights f, Airlines a");
        assert_eq!(rs.rows.len(), 16);
    }

    #[test]
    fn aggregates_whole_table() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT COUNT(*), COUNT(price), SUM(price), MIN(price), MAX(price), AVG(price) \
             FROM Flights",
        );
        let r = &rs.rows[0];
        assert_eq!(r.values()[0], Value::Int(4));
        assert_eq!(r.values()[1], Value::Int(3)); // NULL price skipped
        assert_eq!(r.values()[2], Value::Float(1250.0));
        assert_eq!(r.values()[3], Value::Float(300.0));
        assert_eq!(r.values()[4], Value::Float(500.0));
        match &r.values()[5] {
            Value::Float(avg) => assert!((avg - 1250.0 / 3.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_on_empty_input() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT COUNT(*), SUM(price) FROM Flights WHERE dest = 'Nowhere'",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0].values()[0], Value::Int(0));
        assert_eq!(rs.rows[0].values()[1], Value::Null);
    }

    #[test]
    fn group_by_with_having() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT dest, COUNT(*) AS n FROM Flights GROUP BY dest HAVING COUNT(*) > 1 \
             ORDER BY n DESC",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0].values()[0], Value::from("Paris"));
        assert_eq!(rs.rows[0].values()[1], Value::Int(3));
    }

    #[test]
    fn group_by_exposes_key_column() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT dest, SUM(price) FROM Flights GROUP BY dest ORDER BY dest",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0].values()[0], Value::from("Paris"));
        assert_eq!(rs.rows[0].values()[1], Value::Float(950.0));
        assert_eq!(rs.rows[1].values()[0], Value::from("Rome"));
    }

    #[test]
    fn non_grouped_column_is_an_error() {
        let db = fixture();
        let err = run_err(&db, "SELECT fno, COUNT(*) FROM Flights GROUP BY dest");
        assert!(matches!(err, ExecError::Aggregate(_)));
    }

    #[test]
    fn distinct() {
        let db = fixture();
        let rs = run(&db, "SELECT DISTINCT dest FROM Flights ORDER BY dest");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_by_limit_offset() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT fno FROM Flights ORDER BY fno DESC LIMIT 2 OFFSET 1",
        );
        assert_eq!(ints(&rs, 0), vec![134, 123]);
    }

    #[test]
    fn order_by_non_projected_column() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT dest FROM Flights WHERE price IS NOT NULL ORDER BY price",
        );
        assert_eq!(
            rs.rows
                .iter()
                .map(|r| r.values()[0].as_str().unwrap().to_string())
                .collect::<Vec<_>>(),
            vec!["Rome", "Paris", "Paris"]
        );
    }

    #[test]
    fn uncorrelated_in_subquery() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT fno FROM Flights WHERE fno IN (SELECT fno FROM Airlines WHERE airline = 'United') \
             ORDER BY fno",
        );
        assert_eq!(ints(&rs, 0), vec![122, 123]);
    }

    #[test]
    fn correlated_exists_subquery() {
        let db = fixture();
        let rs = run(
            &db,
            "SELECT f.fno FROM Flights f WHERE EXISTS \
             (SELECT 1 FROM Airlines a WHERE a.fno = f.fno AND a.airline = 'Alitalia')",
        );
        assert_eq!(ints(&rs, 0), vec![136]);
    }

    #[test]
    fn not_exists() {
        let db = fixture();
        db.with_txn(|txn| {
            txn.insert(
                "Flights",
                Tuple::new(vec![Value::Int(200), Value::from("Oslo"), Value::Null]),
            )
            .map(|_| ())
        })
        .unwrap();
        let rs = run(
            &db,
            "SELECT f.fno FROM Flights f WHERE NOT EXISTS \
             (SELECT 1 FROM Airlines a WHERE a.fno = f.fno)",
        );
        assert_eq!(ints(&rs, 0), vec![200]);
    }

    #[test]
    fn select_without_from() {
        let db = fixture();
        let rs = run(&db, "SELECT 1 + 1, 'x'");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0].values()[0], Value::Int(2));
    }

    #[test]
    fn index_probe_is_chosen_for_pk_equality() {
        let db = fixture();
        let read = db.read();
        let table = read.table("Flights").unwrap();
        let stmt = parse_statement("SELECT * FROM Flights WHERE fno = 122").unwrap();
        let youtopia_sql::Statement::Select(sel) = stmt else {
            panic!()
        };
        let path = choose_access_path(table, "Flights", sel.where_clause.as_ref());
        assert_eq!(
            path,
            AccessPath::IndexProbe {
                index: "Flights_pk".into(),
                key: vec![Value::Int(122)]
            }
        );
        // and the query result is right
        drop(read);
        let rs = run(&db, "SELECT dest FROM Flights WHERE fno = 122");
        assert_eq!(rs.rows[0].values()[0], Value::from("Paris"));
    }

    #[test]
    fn full_scan_when_no_index_matches() {
        let db = fixture();
        let read = db.read();
        let table = read.table("Flights").unwrap();
        let stmt = parse_statement("SELECT * FROM Flights WHERE dest = 'Paris'").unwrap();
        let youtopia_sql::Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(
            choose_access_path(table, "Flights", sel.where_clause.as_ref()),
            AccessPath::FullScan
        );
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = fixture();
        assert!(matches!(
            run_err(&db, "SELECT * FROM Ghost"),
            ExecError::UnknownTable(_)
        ));
        assert!(matches!(
            run_err(&db, "SELECT ghost FROM Flights"),
            ExecError::UnknownColumn { .. }
        ));
        assert!(matches!(
            run_err(&db, "SELECT 1 FROM Flights HAVING 1 = 1"),
            ExecError::Aggregate(_)
        ));
    }

    #[test]
    fn ambiguous_column_detected() {
        let db = fixture();
        let err = run_err(
            &db,
            "SELECT fno FROM Flights f JOIN Airlines a ON f.fno = a.fno",
        );
        assert!(matches!(err, ExecError::AmbiguousColumn(_)));
    }
}
