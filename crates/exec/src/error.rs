//! Error types for the execution engine.

use std::fmt;

use youtopia_storage::StorageError;

/// Errors produced while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A storage-layer failure.
    Storage(StorageError),
    /// A column reference did not resolve.
    UnknownColumn {
        /// Qualifier, if given.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A column reference matched more than one column.
    AmbiguousColumn(String),
    /// A table alias/name in FROM did not resolve.
    UnknownTable(String),
    /// A type error during evaluation (e.g. `'x' + 1`).
    Type(String),
    /// An unsupported or malformed construct reached the executor.
    Unsupported(String),
    /// Division (or modulo) by zero.
    DivisionByZero,
    /// An aggregate was used where it is not allowed, or a non-grouped
    /// column leaked through GROUP BY.
    Aggregate(String),
    /// A subquery used in a row-membership position returned the wrong
    /// number of columns.
    SubqueryArity {
        /// Columns the outer tuple has.
        expected: usize,
        /// Columns the subquery produced.
        actual: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::UnknownColumn {
                table: Some(t),
                name,
            } => {
                write!(f, "unknown column '{t}.{name}'")
            }
            ExecError::UnknownColumn { table: None, name } => {
                write!(f, "unknown column '{name}'")
            }
            ExecError::AmbiguousColumn(name) => write!(f, "ambiguous column '{name}'"),
            ExecError::UnknownTable(name) => write!(f, "unknown table or alias '{name}'"),
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::Aggregate(msg) => write!(f, "aggregate error: {msg}"),
            ExecError::SubqueryArity { expected, actual } => {
                write!(f, "subquery returns {actual} columns, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Result alias for the execution crate.
pub type ExecResult<T> = Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            ExecError::UnknownColumn {
                table: Some("f".into()),
                name: "x".into()
            }
            .to_string(),
            "unknown column 'f.x'"
        );
        assert_eq!(
            ExecError::UnknownColumn {
                table: None,
                name: "x".into()
            }
            .to_string(),
            "unknown column 'x'"
        );
        assert_eq!(ExecError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(
            ExecError::SubqueryArity {
                expected: 2,
                actual: 3
            }
            .to_string(),
            "subquery returns 3 columns, expected 2"
        );
    }

    #[test]
    fn storage_error_converts() {
        let e: ExecError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, ExecError::Storage(_)));
    }
}
