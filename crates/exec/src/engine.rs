//! The statement dispatcher: one entry point that takes SQL text or an
//! AST statement and runs it against a [`Database`].
//!
//! Entangled statements are *not* handled here — the engine hands them
//! back to the caller ([`StatementOutcome::Entangled`]) so the
//! coordination layer (`youtopia-core`) can register them. This mirrors
//! the paper's Figure 2: the query compiler routes entangled queries to
//! the coordination component, everything else to the execution engine.

use youtopia_sql::{parse_statement, EntangledSelect, Statement};
use youtopia_storage::Database;

use crate::dml::{
    execute_create_index, execute_create_table, execute_delete, execute_insert, execute_update,
};
use crate::error::{ExecError, ExecResult};
use crate::select::{execute_select, ResultSet};

/// The outcome of running one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// A query produced rows.
    Rows(ResultSet),
    /// A DML statement affected this many rows.
    Affected(usize),
    /// A DDL statement completed.
    Done,
    /// The table names in the catalog (`SHOW TABLES`).
    TableNames(Vec<String>),
    /// An entangled query: the engine does not evaluate these; the
    /// caller must submit it to the coordinator.
    Entangled(EntangledSelect),
    /// `SHOW PENDING`: only meaningful with a coordinator attached; the
    /// bare engine reports it back for the caller to service.
    ShowPending,
    /// `EXPLAIN SELECT ...`: the rendered plan.
    Plan(String),
}

/// Parses and runs one SQL statement against `db`.
pub fn run_sql(db: &Database, sql: &str) -> ExecResult<StatementOutcome> {
    let stmt =
        parse_statement(sql).map_err(|e| ExecError::Unsupported(format!("parse error: {e}")))?;
    run_statement(db, &stmt)
}

/// Runs one parsed statement against `db`.
pub fn run_statement(db: &Database, stmt: &Statement) -> ExecResult<StatementOutcome> {
    match stmt {
        Statement::CreateTable(ct) => {
            db.with_txn(|txn| {
                execute_create_table(txn, ct).map_err(exec_to_storage)?;
                Ok(())
            })
            .map_err(ExecError::Storage)?;
            Ok(StatementOutcome::Done)
        }
        Statement::DropTable { name } => {
            db.with_txn(|txn| txn.drop_table(name))
                .map_err(ExecError::Storage)?;
            Ok(StatementOutcome::Done)
        }
        Statement::CreateIndex(ci) => {
            db.with_txn(|txn| {
                execute_create_index(txn, ci).map_err(exec_to_storage)?;
                Ok(())
            })
            .map_err(ExecError::Storage)?;
            Ok(StatementOutcome::Done)
        }
        Statement::Insert(ins) => {
            let n = run_dml(db, |txn| execute_insert(txn, ins))?;
            Ok(StatementOutcome::Affected(n))
        }
        Statement::Update(up) => {
            let n = run_dml(db, |txn| execute_update(txn, up))?;
            Ok(StatementOutcome::Affected(n))
        }
        Statement::Delete(del) => {
            let n = run_dml(db, |txn| execute_delete(txn, del))?;
            Ok(StatementOutcome::Affected(n))
        }
        Statement::Select(sel) => {
            let read = db.read();
            let rs = execute_select(read.catalog(), sel)?;
            Ok(StatementOutcome::Rows(rs))
        }
        Statement::Entangled(ent) => Ok(StatementOutcome::Entangled(ent.clone())),
        Statement::ShowTables => {
            let read = db.read();
            Ok(StatementOutcome::TableNames(read.catalog().table_names()))
        }
        Statement::ShowPending => Ok(StatementOutcome::ShowPending),
        Statement::Explain(inner) => match inner.as_ref() {
            Statement::Select(sel) => {
                let read = db.read();
                let plan = crate::plan::explain_select(read.catalog(), sel)?;
                Ok(StatementOutcome::Plan(plan))
            }
            // entangled EXPLAIN is the coordination layer's job; hand the
            // statement back like a bare entangled query
            Statement::Entangled(ent) => Ok(StatementOutcome::Entangled(ent.clone())),
            other => Err(ExecError::Unsupported(format!(
                "EXPLAIN {other} (only SELECT and entangled queries)"
            ))),
        },
    }
}

/// Runs a DML closure in a transaction, translating the error type so
/// `with_txn` can roll back on failure.
fn run_dml(
    db: &Database,
    f: impl FnOnce(&mut youtopia_storage::Transaction) -> ExecResult<usize>,
) -> ExecResult<usize> {
    let mut txn = db.begin();
    match f(&mut txn) {
        Ok(n) => {
            txn.commit().map_err(ExecError::Storage)?;
            Ok(n)
        }
        Err(e) => {
            txn.abort();
            Err(e)
        }
    }
}

/// Squeezes an ExecError into a StorageError for `with_txn` plumbing;
/// non-storage errors become `Internal` (they are re-raised verbatim in
/// the message).
fn exec_to_storage(e: ExecError) -> youtopia_storage::StorageError {
    match e {
        ExecError::Storage(s) => s,
        other => youtopia_storage::StorageError::Internal(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    fn setup() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL, price FLOAT)",
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), \
             (136, 'Rome', 300.0)",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    #[test]
    fn full_sql_pipeline() {
        let db = setup();
        let StatementOutcome::Rows(rs) = run_sql(
            &db,
            "SELECT fno FROM Flights WHERE dest = 'Paris' ORDER BY fno",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0].values()[0], Value::Int(122));
    }

    #[test]
    fn dml_outcomes_report_counts() {
        let db = setup();
        let StatementOutcome::Affected(n) =
            run_sql(&db, "UPDATE Flights SET price = 0.0 WHERE dest = 'Paris'").unwrap()
        else {
            panic!()
        };
        assert_eq!(n, 2);
        let StatementOutcome::Affected(n) =
            run_sql(&db, "DELETE FROM Flights WHERE fno = 136").unwrap()
        else {
            panic!()
        };
        assert_eq!(n, 1);
    }

    #[test]
    fn show_tables() {
        let db = setup();
        let StatementOutcome::TableNames(names) = run_sql(&db, "SHOW TABLES").unwrap() else {
            panic!()
        };
        assert_eq!(names, vec!["Flights"]);
    }

    #[test]
    fn entangled_statements_are_handed_back() {
        let db = setup();
        let out = run_sql(
            &db,
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
        assert!(matches!(out, StatementOutcome::Entangled(_)));
    }

    #[test]
    fn show_pending_is_delegated() {
        let db = setup();
        assert_eq!(
            run_sql(&db, "SHOW PENDING").unwrap(),
            StatementOutcome::ShowPending
        );
    }

    #[test]
    fn failed_dml_rolls_back() {
        let db = setup();
        // second row violates the primary key: nothing must stick
        let err = run_sql(
            &db,
            "INSERT INTO Flights VALUES (200, 'Oslo', 1.0), (122, 'Dup', 2.0)",
        );
        assert!(err.is_err());
        let StatementOutcome::Rows(rs) = run_sql(&db, "SELECT COUNT(*) FROM Flights").unwrap()
        else {
            panic!()
        };
        assert_eq!(rs.rows[0].values()[0], Value::Int(3));
    }

    #[test]
    fn parse_errors_are_reported() {
        let db = setup();
        assert!(matches!(
            run_sql(&db, "SELEC 1"),
            Err(ExecError::Unsupported(_))
        ));
    }

    #[test]
    fn explain_select_via_engine() {
        let db = setup();
        let StatementOutcome::Plan(plan) =
            run_sql(&db, "EXPLAIN SELECT dest FROM Flights WHERE fno = 122").unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("IndexProbe Flights via Flights_pk"), "{plan}");
        // entangled EXPLAIN is delegated like a bare entangled statement
        assert!(matches!(
            run_sql(&db, "EXPLAIN SELECT 'K', x INTO ANSWER R CHOOSE 1").unwrap(),
            StatementOutcome::Entangled(_)
        ));
    }

    #[test]
    fn ddl_via_engine() {
        let db = Database::new();
        run_sql(&db, "CREATE TABLE t (a INT)").unwrap();
        run_sql(&db, "CREATE INDEX i ON t (a)").unwrap();
        run_sql(&db, "DROP TABLE t").unwrap();
        let StatementOutcome::TableNames(names) = run_sql(&db, "SHOW TABLES").unwrap() else {
            panic!()
        };
        assert!(names.is_empty());
    }
}
