//! Execution of DDL and DML statements inside a storage transaction.

use youtopia_sql::{CreateIndex, CreateTable, Delete, Expr, Insert, Update};
use youtopia_storage::{Column, IndexKind, RowId, Schema, StorageError, Transaction, Tuple, Value};

use crate::error::{ExecError, ExecResult};
use crate::eval::EvalContext;
use crate::row::RelSchema;

/// Executes `CREATE TABLE`.
pub fn execute_create_table(txn: &mut Transaction, stmt: &CreateTable) -> ExecResult<()> {
    let columns: Vec<Column> = stmt
        .columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            ty: c.ty,
            nullable: c.nullable,
        })
        .collect();
    let schema = if stmt.primary_key.is_empty() {
        Schema::new(columns)
    } else {
        // Validate the key columns exist before the panicking constructor.
        for key in &stmt.primary_key {
            if !columns.iter().any(|c| c.name.eq_ignore_ascii_case(key)) {
                return Err(ExecError::Storage(StorageError::ColumnNotFound {
                    table: stmt.name.clone(),
                    column: key.clone(),
                }));
            }
        }
        let refs: Vec<&str> = stmt.primary_key.iter().map(String::as_str).collect();
        Schema::with_primary_key(columns, &refs)
    };
    txn.create_table(&stmt.name, schema)?;
    Ok(())
}

/// Executes `CREATE [UNIQUE] INDEX` (hash index; ordered indexes are
/// created through the storage API directly).
pub fn execute_create_index(txn: &mut Transaction, stmt: &CreateIndex) -> ExecResult<()> {
    let cols: Vec<&str> = stmt.columns.iter().map(String::as_str).collect();
    txn.create_index(&stmt.table, &stmt.name, &cols, stmt.unique, IndexKind::Hash)?;
    Ok(())
}

/// Executes `INSERT`; returns the number of rows inserted.
pub fn execute_insert(txn: &mut Transaction, stmt: &Insert) -> ExecResult<usize> {
    // Resolve the column list to positions once.
    let (arity, positions) = {
        let table = txn.table(&stmt.table)?;
        let schema = table.schema();
        let positions: Option<Vec<usize>> = match &stmt.columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| StorageError::ColumnNotFound {
                                table: stmt.table.clone(),
                                column: c.clone(),
                            })
                    })
                    .collect::<Result<_, _>>()?,
            ),
        };
        (schema.arity(), positions)
    };

    let empty_schema = RelSchema::default();
    let empty_row = Tuple::empty();
    let mut count = 0;
    for row_exprs in &stmt.rows {
        // INSERT expressions are constant (no row context).
        let values: Vec<Value> = {
            let catalog = txn.catalog();
            let ctx = EvalContext::with_row(catalog, &empty_schema, &empty_row);
            row_exprs
                .iter()
                .map(|e| ctx.eval(e))
                .collect::<ExecResult<_>>()?
        };
        let tuple = match &positions {
            None => Tuple::new(values),
            Some(pos) => {
                if pos.len() != values.len() {
                    return Err(ExecError::Storage(StorageError::ArityMismatch {
                        expected: pos.len(),
                        actual: values.len(),
                    }));
                }
                let mut full = vec![Value::Null; arity];
                for (&p, v) in pos.iter().zip(values) {
                    full[p] = v;
                }
                Tuple::new(full)
            }
        };
        txn.insert(&stmt.table, tuple)?;
        count += 1;
    }
    Ok(count)
}

/// Collects the row ids matching a DML `WHERE` clause.
fn matching_rows(
    txn: &Transaction,
    table_name: &str,
    where_clause: Option<&Expr>,
) -> ExecResult<Vec<(RowId, Tuple)>> {
    let table = txn.table(table_name)?;
    let schema = RelSchema::from_table(table, table_name);
    let catalog = txn.catalog();
    let mut out = Vec::new();
    for (rid, tuple) in table.scan() {
        let keep = match where_clause {
            None => true,
            Some(pred) => {
                let ctx = EvalContext::with_row(catalog, &schema, tuple);
                ctx.eval_predicate(pred)?
            }
        };
        if keep {
            out.push((rid, tuple.clone()));
        }
    }
    Ok(out)
}

/// Executes `UPDATE`; returns the number of rows changed.
pub fn execute_update(txn: &mut Transaction, stmt: &Update) -> ExecResult<usize> {
    let targets = matching_rows(txn, &stmt.table, stmt.where_clause.as_ref())?;
    // Resolve SET column positions.
    let set_positions: Vec<(usize, &Expr)> = {
        let table = txn.table(&stmt.table)?;
        let schema = table.schema();
        stmt.sets
            .iter()
            .map(|(col, expr)| {
                schema.column_index(col).map(|p| (p, expr)).ok_or_else(|| {
                    StorageError::ColumnNotFound {
                        table: stmt.table.clone(),
                        column: col.clone(),
                    }
                })
            })
            .collect::<Result<_, _>>()?
    };
    let rel_schema = {
        let table = txn.table(&stmt.table)?;
        RelSchema::from_table(table, &stmt.table)
    };
    let mut count = 0;
    for (rid, old) in targets {
        let new_tuple = {
            let catalog = txn.catalog();
            let ctx = EvalContext::with_row(catalog, &rel_schema, &old);
            let mut values = old.values().to_vec();
            for (pos, expr) in &set_positions {
                values[*pos] = ctx.eval(expr)?;
            }
            Tuple::new(values)
        };
        txn.update(&stmt.table, rid, new_tuple)?;
        count += 1;
    }
    Ok(count)
}

/// Executes `DELETE`; returns the number of rows removed.
pub fn execute_delete(txn: &mut Transaction, stmt: &Delete) -> ExecResult<usize> {
    let targets = matching_rows(txn, &stmt.table, stmt.where_clause.as_ref())?;
    let mut count = 0;
    for (rid, _) in targets {
        txn.delete(&stmt.table, rid)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_sql::{parse_statement, Statement};
    use youtopia_storage::Database;

    fn setup() -> Database {
        let db = Database::new();
        let mut txn = db.begin();
        let Statement::CreateTable(ct) = parse_statement(
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL, price FLOAT)",
        )
        .unwrap() else {
            panic!()
        };
        execute_create_table(&mut txn, &ct).unwrap();
        txn.commit().unwrap();
        db
    }

    fn insert(db: &Database, sql: &str) -> ExecResult<usize> {
        let Statement::Insert(ins) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let mut txn = db.begin();
        let n = execute_insert(&mut txn, &ins)?;
        txn.commit().unwrap();
        Ok(n)
    }

    #[test]
    fn create_table_and_insert() {
        let db = setup();
        let n = insert(
            &db,
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (136, 'Rome', 300.0)",
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.read().table("Flights").unwrap().len(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = setup();
        insert(&db, "INSERT INTO Flights (dest, fno) VALUES ('Oslo', 1)").unwrap();
        let read = db.read();
        let t = read.table("Flights").unwrap();
        let (_, row) = t.scan().next().unwrap();
        assert_eq!(row.values()[0], Value::Int(1));
        assert_eq!(row.values()[1], Value::from("Oslo"));
        assert_eq!(row.values()[2], Value::Null);
    }

    #[test]
    fn insert_expression_values() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO Flights VALUES (100 + 22, LOWER('PARIS'), 4.5 * 100)",
        )
        .unwrap();
        let read = db.read();
        let (_, row) = read.table("Flights").unwrap().scan().next().unwrap();
        assert_eq!(row.values()[0], Value::Int(122));
        assert_eq!(row.values()[1], Value::from("paris"));
        assert_eq!(row.values()[2], Value::Float(450.0));
    }

    #[test]
    fn insert_arity_mismatch_with_columns() {
        let db = setup();
        let err = insert(&db, "INSERT INTO Flights (fno, dest) VALUES (1)").unwrap_err();
        assert!(matches!(
            err,
            ExecError::Storage(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn insert_unknown_column() {
        let db = setup();
        let err = insert(&db, "INSERT INTO Flights (ghost) VALUES (1)").unwrap_err();
        assert!(matches!(
            err,
            ExecError::Storage(StorageError::ColumnNotFound { .. })
        ));
    }

    #[test]
    fn update_with_where_and_expressions() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (136, 'Rome', 300.0)",
        )
        .unwrap();
        let Statement::Update(up) =
            parse_statement("UPDATE Flights SET price = price * 2 WHERE dest = 'Paris'").unwrap()
        else {
            panic!()
        };
        let mut txn = db.begin();
        let n = execute_update(&mut txn, &up).unwrap();
        txn.commit().unwrap();
        assert_eq!(n, 1);
        let read = db.read();
        let t = read.table("Flights").unwrap();
        let paris = t
            .scan()
            .find(|(_, r)| r.values()[1] == Value::from("Paris"))
            .unwrap()
            .1;
        assert_eq!(paris.values()[2], Value::Float(900.0));
        let rome = t
            .scan()
            .find(|(_, r)| r.values()[1] == Value::from("Rome"))
            .unwrap()
            .1;
        assert_eq!(rome.values()[2], Value::Float(300.0));
    }

    #[test]
    fn update_without_where_touches_all() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO Flights VALUES (1, 'A', 1.0), (2, 'B', 2.0)",
        )
        .unwrap();
        let Statement::Update(up) = parse_statement("UPDATE Flights SET price = 0.0").unwrap()
        else {
            panic!()
        };
        let mut txn = db.begin();
        assert_eq!(execute_update(&mut txn, &up).unwrap(), 2);
        txn.commit().unwrap();
    }

    #[test]
    fn delete_with_where() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO Flights VALUES (1, 'A', 1.0), (2, 'B', 2.0)",
        )
        .unwrap();
        let Statement::Delete(del) = parse_statement("DELETE FROM Flights WHERE fno = 1").unwrap()
        else {
            panic!()
        };
        let mut txn = db.begin();
        assert_eq!(execute_delete(&mut txn, &del).unwrap(), 1);
        txn.commit().unwrap();
        assert_eq!(db.read().table("Flights").unwrap().len(), 1);
    }

    #[test]
    fn create_index_via_sql() {
        let db = setup();
        let Statement::CreateIndex(ci) =
            parse_statement("CREATE INDEX by_dest ON Flights (dest)").unwrap()
        else {
            panic!()
        };
        let mut txn = db.begin();
        execute_create_index(&mut txn, &ci).unwrap();
        txn.commit().unwrap();
        let read = db.read();
        assert!(read.table("Flights").unwrap().index("by_dest").is_some());
    }

    #[test]
    fn create_table_rejects_bad_pk() {
        let db = Database::new();
        let Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INT, PRIMARY KEY (b))").unwrap()
        else {
            panic!()
        };
        let mut txn = db.begin();
        let err = execute_create_table(&mut txn, &ct).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Storage(StorageError::ColumnNotFound { .. })
        ));
        txn.abort();
    }
}
