//! # youtopia-exec
//!
//! The query execution engine of the Youtopia reproduction: expression
//! evaluation with SQL three-valued logic, an operator-at-a-time
//! `SELECT` executor with joins / grouping / subqueries and
//! index-assisted scans, and DDL/DML execution inside storage
//! transactions.
//!
//! The engine deliberately does *not* evaluate entangled constructs:
//! `IN ANSWER` constraints are the coordination layer's job
//! (`youtopia-core`), matching the architecture of the paper's Figure 2
//! where the execution engine "evaluates queries on the database as
//! required by the coordination component".
//!
//! ```
//! use youtopia_storage::Database;
//! use youtopia_exec::{run_sql, StatementOutcome};
//!
//! let db = Database::new();
//! run_sql(&db, "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)").unwrap();
//! run_sql(&db, "INSERT INTO Flights VALUES (122, 'Paris')").unwrap();
//! let StatementOutcome::Rows(rs) =
//!     run_sql(&db, "SELECT fno FROM Flights WHERE dest = 'Paris'").unwrap()
//! else { unreachable!() };
//! assert_eq!(rs.rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod dml;
pub mod engine;
pub mod error;
pub mod eval;
pub mod plan;
pub mod row;
pub mod select;

pub use dml::{
    execute_create_index, execute_create_table, execute_delete, execute_insert, execute_update,
};
pub use engine::{run_sql, run_statement, StatementOutcome};
pub use error::{ExecError, ExecResult};
pub use eval::{contains_aggregate, is_aggregate_name, like_match, EvalContext, Scope};
pub use plan::explain_select;
pub use row::{ColRef, RelSchema};
pub use select::{
    choose_access_path, execute_select, execute_select_with_scopes, AccessPath, ResultSet,
};
