//! SQL conformance battery: a golden-result sweep over the dialect the
//! executor supports. Each case is one query plus its expected rows,
//! exercising a distinct language behaviour (operators, NULL handling,
//! joins, grouping, subqueries, ordering, limits, DML interactions).

use youtopia_exec::{run_sql, StatementOutcome};
use youtopia_storage::{Database, Value};

/// Runs `sql` and renders each row as `a|b|c` with NULL for nulls.
fn rows(db: &Database, sql: &str) -> Vec<String> {
    match run_sql(db, sql).unwrap_or_else(|e| panic!("exec '{sql}': {e}")) {
        StatementOutcome::Rows(rs) => rs
            .rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| match v {
                        Value::Null => "NULL".to_string(),
                        other => other.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect(),
        other => panic!("'{sql}' did not produce rows: {other:?}"),
    }
}

fn fixture() -> Database {
    let db = Database::new();
    for sql in [
        "CREATE TABLE emp (id INT PRIMARY KEY, name STRING NOT NULL, dept STRING, \
         salary FLOAT, boss INT)",
        "INSERT INTO emp VALUES \
         (1, 'ada', 'eng', 100.0, NULL), \
         (2, 'bob', 'eng', 80.0, 1), \
         (3, 'cat', 'ops', 60.0, 1), \
         (4, 'dan', 'ops', 60.0, 3), \
         (5, 'eve', NULL, NULL, 1)",
        "CREATE TABLE dept (name STRING PRIMARY KEY, city STRING NOT NULL)",
        "INSERT INTO dept VALUES ('eng', 'Ithaca'), ('ops', 'Lausanne'), ('hr', 'Nowhere')",
    ] {
        run_sql(&db, sql).unwrap();
    }
    db
}

#[test]
fn comparison_operators() {
    let db = fixture();
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE salary > 60 ORDER BY id"),
        ["1", "2"]
    );
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE salary >= 60 ORDER BY id"),
        ["1", "2", "3", "4"]
    );
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE salary <> 60 ORDER BY id"),
        ["1", "2"]
    );
    assert_eq!(rows(&db, "SELECT id FROM emp WHERE name = 'ada'"), ["1"]);
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE name < 'c' ORDER BY id"),
        ["1", "2"]
    );
}

#[test]
fn null_semantics_in_where() {
    let db = fixture();
    // eve's NULL salary never passes a comparison
    assert_eq!(
        rows(
            &db,
            "SELECT COUNT(*) FROM emp WHERE salary > 0 OR salary <= 0"
        ),
        ["4"]
    );
    assert_eq!(rows(&db, "SELECT id FROM emp WHERE salary IS NULL"), ["5"]);
    assert_eq!(rows(&db, "SELECT id FROM emp WHERE dept IS NULL"), ["5"]);
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE dept IS NOT NULL ORDER BY id"),
        ["1", "2", "3", "4"]
    );
    // NULL boss: NOT (boss = 1) is unknown for ada (NULL boss), false for 2/5
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE NOT (boss = 1) ORDER BY id"),
        ["4"]
    );
}

#[test]
fn arithmetic_and_functions_in_projection() {
    let db = fixture();
    assert_eq!(
        rows(&db, "SELECT salary * 2 + 1 FROM emp WHERE id = 2"),
        ["161"]
    );
    assert_eq!(
        rows(&db, "SELECT UPPER(name) FROM emp WHERE id = 1"),
        ["ADA"]
    );
    assert_eq!(
        rows(&db, "SELECT LENGTH(name) FROM emp WHERE id = 3"),
        ["3"]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT COALESCE(dept, 'unassigned') FROM emp WHERE id = 5"
        ),
        ["unassigned"]
    );
    assert_eq!(rows(&db, "SELECT ABS(0 - 5)"), ["5"]);
}

#[test]
fn between_like_inlist() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT id FROM emp WHERE salary BETWEEN 60 AND 80 ORDER BY id"
        ),
        ["2", "3", "4"]
    );
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE name LIKE '%a%' ORDER BY id"),
        ["1", "3", "4"]
    );
    assert_eq!(rows(&db, "SELECT id FROM emp WHERE name LIKE '_ob'"), ["2"]);
    assert_eq!(
        rows(&db, "SELECT id FROM emp WHERE id IN (1, 3, 9) ORDER BY id"),
        ["1", "3"]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT id FROM emp WHERE id NOT IN (1, 2, 3, 4) ORDER BY id"
        ),
        ["5"]
    );
}

#[test]
fn inner_join_and_qualified_stars() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.name \
             WHERE d.city = 'Ithaca' ORDER BY e.name"
        ),
        ["ada|Ithaca", "bob|Ithaca"]
    );
    // NULL dept never joins
    assert_eq!(
        rows(
            &db,
            "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.name"
        ),
        ["4"]
    );
}

#[test]
fn left_join_preserves_unmatched() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT e.name, d.city FROM emp e LEFT JOIN dept d ON e.dept = d.name \
             WHERE e.id = 5"
        ),
        ["eve|NULL"]
    );
    // dept side: hr has no employees
    assert_eq!(
        rows(
            &db,
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept = d.name \
             WHERE d.name = 'hr'"
        ),
        ["hr|NULL"]
    );
}

#[test]
fn self_join_boss_relation() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.id ORDER BY e.id"
        ),
        ["bob|ada", "cat|ada", "dan|cat", "eve|ada"]
    );
}

#[test]
fn aggregates_and_groups() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM emp \
             WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept"
        ),
        ["eng|2|180|80|100", "ops|2|120|60|60"]
    );
    // AVG skips NULLs; group of eve alone (NULL dept) keys on NULL
    assert_eq!(rows(&db, "SELECT AVG(salary) FROM emp"), ["75"]);
    assert_eq!(
        rows(&db, "SELECT COUNT(salary), COUNT(*) FROM emp"),
        ["4|5"]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) = 2 ORDER BY dept"
        ),
        ["eng", "ops"]
    );
}

#[test]
fn distinct_and_order_combinations() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT DISTINCT salary FROM emp WHERE salary IS NOT NULL ORDER BY salary"
        ),
        ["60", "80", "100"]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT name FROM emp ORDER BY salary DESC, name LIMIT 3"
        ),
        // NULL sorts first ascending, therefore LAST descending; top 3
        // salaries are 100, 80, 60(cat before dan by name)
        ["ada", "bob", "cat"]
    );
    assert_eq!(
        rows(&db, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2"),
        ["3", "4"]
    );
}

#[test]
fn subqueries_in_and_exists() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT name FROM emp WHERE dept IN \
             (SELECT name FROM dept WHERE city = 'Lausanne') ORDER BY name"
        ),
        ["cat", "dan"]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT d.name FROM dept d WHERE NOT EXISTS \
             (SELECT 1 FROM emp e WHERE e.dept = d.name)"
        ),
        ["hr"]
    );
    // correlated: employees earning their department's max
    assert_eq!(
        rows(
            &db,
            "SELECT e.name FROM emp e WHERE e.salary IS NOT NULL AND NOT EXISTS \
             (SELECT 1 FROM emp x WHERE x.dept = e.dept AND x.salary > e.salary) \
             ORDER BY e.name"
        ),
        ["ada", "cat", "dan"]
    );
}

#[test]
fn tuple_in_subquery() {
    let db = fixture();
    assert_eq!(
        rows(
            &db,
            "SELECT id FROM emp WHERE (dept, salary) IN \
             (SELECT dept, MIN(salary) FROM emp WHERE dept IS NOT NULL GROUP BY dept) \
             ORDER BY id"
        ),
        ["2", "3", "4"]
    );
}

#[test]
fn dml_update_delete_visibility() {
    let db = fixture();
    let StatementOutcome::Affected(n) = run_sql(
        &db,
        "UPDATE emp SET salary = salary + 10 WHERE dept = 'ops'",
    )
    .unwrap() else {
        panic!()
    };
    assert_eq!(n, 2);
    assert_eq!(rows(&db, "SELECT salary FROM emp WHERE id = 3"), ["70"]);

    let StatementOutcome::Affected(n) = run_sql(&db, "DELETE FROM emp WHERE boss = 3").unwrap()
    else {
        panic!()
    };
    assert_eq!(n, 1);
    assert_eq!(rows(&db, "SELECT COUNT(*) FROM emp"), ["4"]);
}

#[test]
fn insert_after_delete_reuses_nothing() {
    let db = fixture();
    run_sql(&db, "DELETE FROM emp WHERE id = 5").unwrap();
    run_sql(&db, "INSERT INTO emp VALUES (6, 'fay', 'hr', 50.0, NULL)").unwrap();
    assert_eq!(
        rows(&db, "SELECT id FROM emp ORDER BY id"),
        ["1", "2", "3", "4", "6"]
    );
    // primary key still enforced after churn
    assert!(run_sql(&db, "INSERT INTO emp VALUES (6, 'dup', NULL, NULL, NULL)").is_err());
}

#[test]
fn boolean_columns_and_literals() {
    let db = Database::new();
    run_sql(&db, "CREATE TABLE t (id INT PRIMARY KEY, flag BOOL)").unwrap();
    run_sql(&db, "INSERT INTO t VALUES (1, TRUE), (2, FALSE), (3, NULL)").unwrap();
    assert_eq!(rows(&db, "SELECT id FROM t WHERE flag ORDER BY id"), ["1"]);
    assert_eq!(rows(&db, "SELECT id FROM t WHERE NOT flag"), ["2"]);
    assert_eq!(rows(&db, "SELECT id FROM t WHERE flag IS NULL"), ["3"]);
}

#[test]
fn int_float_bridging_in_storage_and_queries() {
    let db = Database::new();
    run_sql(&db, "CREATE TABLE t (x FLOAT)").unwrap();
    run_sql(&db, "INSERT INTO t VALUES (1), (2.5)").unwrap(); // int widens
    assert_eq!(rows(&db, "SELECT x FROM t WHERE x = 1"), ["1"]);
    assert_eq!(rows(&db, "SELECT SUM(x) FROM t"), ["3.5"]);
}

#[test]
fn order_by_is_stable_for_equal_keys() {
    let db = fixture();
    // cat and dan share salary 60; ties keep a deterministic order
    // thanks to the secondary key
    assert_eq!(
        rows(
            &db,
            "SELECT name FROM emp WHERE salary = 60 ORDER BY salary, name"
        ),
        ["cat", "dan"]
    );
}

#[test]
fn explain_matches_execution_shape() {
    let db = fixture();
    let StatementOutcome::Plan(plan) =
        run_sql(&db, "EXPLAIN SELECT name FROM emp WHERE id = 1").unwrap()
    else {
        panic!()
    };
    assert!(plan.contains("IndexProbe emp via emp_pk key (1)"), "{plan}");
    let StatementOutcome::Plan(plan2) = run_sql(
        &db,
        "EXPLAIN SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept LIMIT 1",
    )
    .unwrap() else {
        panic!()
    };
    for needle in ["Limit 1", "Sort [dept]", "Aggregate", "SeqScan emp"] {
        assert!(plan2.contains(needle), "missing {needle} in {plan2}");
    }
}

#[test]
fn show_tables_reflects_ddl() {
    let db = fixture();
    let StatementOutcome::TableNames(names) = run_sql(&db, "SHOW TABLES").unwrap() else {
        panic!()
    };
    assert_eq!(names, ["dept", "emp"]);
    run_sql(&db, "DROP TABLE dept").unwrap();
    let StatementOutcome::TableNames(names) = run_sql(&db, "SHOW TABLES").unwrap() else {
        panic!()
    };
    assert_eq!(names, ["emp"]);
}
