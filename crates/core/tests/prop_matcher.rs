//! Property-based tests for the coordination machinery:
//!
//! * unification soundness (a successful unifier really unifies);
//! * the registry's candidate index is a sound overapproximation;
//! * matcher soundness — every produced match satisfies every
//!   constraint of every member against the actual database;
//! * the incremental matcher and the exhaustive baseline agree on
//!   matchability for random scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use youtopia_core::matcher::baseline::match_query_naive;
use youtopia_core::matcher::search::match_query;
use youtopia_core::{
    compile_sql, Atom, GroupMatch, MatchConfig, MatchStats, Pending, QueryId, Registry, Subst,
    Term, Var,
};
use youtopia_exec::run_sql;
use youtopia_storage::{Database, Value};

// --------------------------------------------------------------------- //
// Unification properties
// --------------------------------------------------------------------- //

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..4).prop_map(|i| Term::Const(Value::Int(i))),
        "[ab]".prop_map(|s| Term::Const(Value::Str(s))),
        (0u8..4).prop_map(|i| Term::Var(Var::new(format!("v{i}")))),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    ("[RS]", proptest::collection::vec(arb_term(), 1..4))
        .prop_map(|(rel, terms)| Atom::new(rel, terms))
}

proptest! {
    #[test]
    fn unifier_really_unifies(a in arb_atom(), b in arb_atom()) {
        let mut s = Subst::new();
        if s.unify_atoms(&a, &b) {
            // applying the substitution must make the atoms identical
            // up to remaining (shared) variables
            let ra = s.apply_atom(&a);
            let rb = s.apply_atom(&b);
            prop_assert_eq!(ra.relation.to_lowercase(), rb.relation.to_lowercase());
            for (ta, tb) in ra.terms.iter().zip(&rb.terms) {
                match (ta, tb) {
                    (Term::Const(x), Term::Const(y)) => {
                        prop_assert!(x.sql_eq(y) || x == y, "{x:?} vs {y:?}")
                    }
                    (Term::Var(x), Term::Var(y)) => prop_assert_eq!(x, y),
                    other => prop_assert!(false, "mixed resolution {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unification_is_symmetric(a in arb_atom(), b in arb_atom()) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        prop_assert_eq!(s1.unify_atoms(&a, &b), s2.unify_atoms(&b, &a));
    }

    #[test]
    fn binding_then_union_equals_union_then_binding(
        v in 0i64..5,
    ) {
        let (x, y) = (Var::new("x"), Var::new("y"));
        let mut s1 = Subst::new();
        assert!(s1.bind(&x, Value::Int(v)));
        assert!(s1.union(&x, &y));
        let mut s2 = Subst::new();
        assert!(s2.union(&x, &y));
        assert!(s2.bind(&x, Value::Int(v)));
        prop_assert_eq!(s1.lookup(&y), s2.lookup(&y));
        prop_assert_eq!(s1.lookup(&y), Some(&Value::Int(v)));
    }
}

// --------------------------------------------------------------------- //
// Scenario generation: random pair/ring coordination requests over a
// small name pool, so matches actually occur.
// --------------------------------------------------------------------- //

#[derive(Debug, Clone)]
struct Scenario {
    /// (me, friend, dest) — each becomes a pair request.
    requests: Vec<(String, String, String)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    proptest::collection::vec((name.clone(), name, dest), 1..6).prop_map(|reqs| Scenario {
        requests: reqs
            .into_iter()
            .map(|(a, b, d)| (a.to_string(), b.to_string(), d.to_string()))
            .collect(),
    })
}

fn scenario_db() -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Rome')",
    )
    .unwrap();
    db
}

fn pair_sql(me: &str, friend: &str, dest: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
         AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
    )
}

fn registry_for(scenario: &Scenario) -> Registry {
    let mut reg = Registry::new();
    for (i, (me, friend, dest)) in scenario.requests.iter().enumerate() {
        let id = QueryId(i as u64 + 1);
        let q = compile_sql(&pair_sql(me, friend, dest))
            .unwrap()
            .namespaced(id);
        reg.insert(Pending {
            id,
            owner: me.clone(),
            query: q,
            seq: id.0,
            deadline: None,
        });
    }
    reg
}

/// Checks the match against the scenario's semantics: per member, the
/// head is ground, names are right, the flight satisfies the member's
/// own destination predicate, and the member's constraint is satisfied
/// by some answer in the group.
fn assert_match_sound(scenario: &Scenario, m: &GroupMatch) {
    // all answers, flattened
    let all: Vec<(&str, &[Value])> = m
        .answers
        .values()
        .flatten()
        .map(|(rel, t)| (rel.as_str(), t.values()))
        .collect();
    for &qid in &m.members {
        let (me, friend, dest) = &scenario.requests[(qid.0 - 1) as usize];
        let my_answers = &m.answers[&qid];
        assert_eq!(my_answers.len(), 1, "CHOOSE 1: one answer per query");
        let (rel, tuple) = &my_answers[0];
        assert_eq!(rel, "Reservation");
        assert_eq!(tuple.values()[0].as_str(), Some(me.as_str()));
        let fno = tuple.values()[1].as_int().expect("ground flight number");
        // membership: fno is a flight to my dest
        let eligible: &[i64] = if dest == "Paris" { &[1, 2] } else { &[3] };
        assert!(
            eligible.contains(&fno),
            "{me}'s flight {fno} must go to {dest}"
        );
        // constraint: (friend, fno) is among the group's answers
        let satisfied = all.iter().any(|(r, vals)| {
            *r == "Reservation"
                && vals[0].as_str() == Some(friend.as_str())
                && vals[1].as_int() == Some(fno)
        });
        assert!(
            satisfied,
            "{me}'s constraint ('{friend}', {fno}) must be satisfied by the group"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_are_sound(scenario in arb_scenario(), seed in 0u64..1000) {
        let db = scenario_db();
        let reg = registry_for(&scenario);
        let read = db.read();
        let config = MatchConfig::default();
        for trigger in 1..=scenario.requests.len() as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stats = MatchStats::default();
            if let Some(m) = match_query(
                &reg,
                read.catalog(),
                QueryId(trigger),
                &config,
                &mut rng,
                &mut stats,
            )
            .unwrap()
            {
                prop_assert!(m.members.contains(&QueryId(trigger)));
                assert_match_sound(&scenario, &m);
            }
        }
    }

    #[test]
    fn incremental_and_naive_agree_on_matchability(
        scenario in arb_scenario(),
        seed in 0u64..100,
    ) {
        let db = scenario_db();
        let reg = registry_for(&scenario);
        let read = db.read();
        let config = MatchConfig { randomize: false, ..MatchConfig::default() };
        for trigger in 1..=scenario.requests.len() as u64 {
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed);
            let mut s1 = MatchStats::default();
            let mut s2 = MatchStats::default();
            let incr = match_query(
                &reg, read.catalog(), QueryId(trigger), &config, &mut rng1, &mut s1,
            )
            .unwrap();
            let naive = match_query_naive(
                &reg, read.catalog(), QueryId(trigger), &config, &mut rng2, &mut s2,
            )
            .unwrap();
            prop_assert_eq!(
                incr.is_some(),
                naive.is_some(),
                "disagreement on trigger {} in {:?}",
                trigger,
                &scenario
            );
            if let Some(m) = &naive {
                assert_match_sound(&scenario, m);
            }
        }
    }

    #[test]
    fn registry_candidates_are_a_superset_of_unifiable_heads(
        scenario in arb_scenario(),
        constraint in arb_constraint(),
    ) {
        let reg = registry_for(&scenario);
        let candidates = reg.candidates_for(&constraint);
        // brute force: every pending head that unifies must be listed
        for pending in reg.iter() {
            for (head_idx, head) in pending.query.heads.iter().enumerate() {
                let mut s = Subst::new();
                if s.unify_atoms(&constraint, head) {
                    let href = youtopia_core::HeadRef { qid: pending.id, head_idx };
                    prop_assert!(
                        candidates.contains(&href),
                        "index dropped unifiable head {head} for constraint {constraint}"
                    );
                }
            }
        }
    }
}

// --------------------------------------------------------------------- //
// Matcher ablation: the staged pipeline (batched candidate resolution,
// pooled scratch, index-first trigger pruning) must be observationally
// identical to the exhaustive baseline — same matchability, same
// members, same answers — on multi-relation workloads, with the
// candidate index both on and off.
// --------------------------------------------------------------------- //

#[derive(Debug, Clone)]
struct MultiScenario {
    /// (me, friend, dest, answer-relation) — pair requests spread over
    /// several answer relations, so the per-relation index actually
    /// partitions the registry.
    requests: Vec<(String, String, String, String)>,
}

fn arb_multi_scenario() -> impl Strategy<Value = MultiScenario> {
    let name = prop_oneof![Just("A"), Just("B"), Just("C"), Just("D")];
    let dest = prop_oneof![Just("Paris"), Just("Rome")];
    let rel = prop_oneof![Just("Reservation"), Just("Lodging"), Just("Tour")];
    proptest::collection::vec((name.clone(), name, dest, rel), 1..7).prop_map(|reqs| {
        MultiScenario {
            requests: reqs
                .into_iter()
                .map(|(a, b, d, r)| (a.to_string(), b.to_string(), d.to_string(), r.to_string()))
                .collect(),
        }
    })
}

fn multi_pair_sql(me: &str, friend: &str, dest: &str, rel: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER {rel} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
         AND ('{friend}', fno) IN ANSWER {rel} CHOOSE 1"
    )
}

fn registry_for_multi(scenario: &MultiScenario, use_const_index: bool) -> Registry {
    let mut reg = if use_const_index {
        Registry::new()
    } else {
        Registry::without_const_index()
    };
    for (i, (me, friend, dest, rel)) in scenario.requests.iter().enumerate() {
        let id = QueryId(i as u64 + 1);
        let q = compile_sql(&multi_pair_sql(me, friend, dest, rel))
            .unwrap()
            .namespaced(id);
        reg.insert(Pending {
            id,
            owner: me.clone(),
            query: q,
            seq: id.0,
            deadline: None,
        });
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn staged_matcher_equals_naive_on_multi_relation_workloads(
        scenario in arb_multi_scenario(),
        seed in 0u64..100,
    ) {
        let db = scenario_db();
        let read = db.read();
        let config = MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        };
        for use_const_index in [true, false] {
            let reg = registry_for_multi(&scenario, use_const_index);
            for trigger in 1..=scenario.requests.len() as u64 {
                let mut rng1 = StdRng::seed_from_u64(seed);
                let mut rng2 = StdRng::seed_from_u64(seed);
                let mut s1 = MatchStats::default();
                let mut s2 = MatchStats::default();
                let staged = match_query(
                    &reg, read.catalog(), QueryId(trigger), &config, &mut rng1, &mut s1,
                )
                .unwrap();
                let naive = match_query_naive(
                    &reg, read.catalog(), QueryId(trigger), &config, &mut rng2, &mut s2,
                )
                .unwrap();
                // Observational equality: same matchability, and when a
                // match exists, the *same* match — members and per-member
                // answers — so the registry retains the same pending set
                // after either matcher applies it.
                prop_assert_eq!(
                    &staged,
                    &naive,
                    "staged vs naive diverge (use_const_index={}) on trigger {} in {:?}",
                    use_const_index,
                    trigger,
                    &scenario
                );
            }
        }
    }
}

fn arb_constraint() -> impl Strategy<Value = Atom> {
    let name_term = prop_oneof![
        Just(Term::constant("A")),
        Just(Term::constant("B")),
        Just(Term::constant("C")),
        Just(Term::var("who")),
    ];
    let fno_term = prop_oneof![(1i64..4).prop_map(Term::constant), Just(Term::var("f")),];
    (name_term, fno_term).prop_map(|(n, f)| Atom::new("Reservation", vec![n, f]))
}

// --------------------------------------------------------------------- //
// End-to-end invariants of arrival-driven matching.
// --------------------------------------------------------------------- //

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arrival-driven matching is *locally maximal*: once every query
    /// has had its arrival-time match attempt, no matchable group
    /// remains among the still-pending queries (with an unchanged
    /// database, a later global sweep finds nothing). This is exactly
    /// why matching only on arrival loses no coordination opportunities.
    #[test]
    fn arrival_driven_matching_leaves_no_matchable_residue(
        scenario in arb_scenario(),
        seed in 0u64..50,
    ) {
        use youtopia_core::{Coordinator, CoordinatorConfig};

        let co = Coordinator::with_config(
            scenario_db(),
            CoordinatorConfig { seed, ..Default::default() },
        );
        for (me, friend, dest) in &scenario.requests {
            co.submit_sql(me, &pair_sql(me, friend, dest)).unwrap();
        }
        let pending_before = co.pending_count();
        let swept = co.retry_all().unwrap();
        prop_assert!(
            swept.is_empty(),
            "a global sweep found {} answers the arrival-driven matcher missed in {:?}",
            swept.len(),
            &scenario
        );
        prop_assert_eq!(co.pending_count(), pending_before);
    }

    /// Answered + pending always partitions submissions, and every
    /// coordinated pair of answers shares its flight.
    #[test]
    fn accounting_invariants_hold(scenario in arb_scenario(), seed in 0u64..50) {
        use youtopia_core::{Coordinator, CoordinatorConfig};

        let co = Coordinator::with_config(
            scenario_db(),
            CoordinatorConfig { seed, ..Default::default() },
        );
        for (me, friend, dest) in &scenario.requests {
            co.submit_sql(me, &pair_sql(me, friend, dest)).unwrap();
        }
        let stats = co.stats();
        prop_assert_eq!(stats.submitted as usize, scenario.requests.len());
        prop_assert_eq!(
            stats.answered as usize + co.pending_count(),
            scenario.requests.len()
        );
    }
}
