//! Edge cases of the coordination machinery that the demo scenarios do
//! not reach: self-satisfying queries, variable partner names,
//! mixed-arity relations, cancellation races, membership errors, and
//! group-size boundary behaviour.

use youtopia_core::{Coordinator, CoordinatorConfig, CoreError, MatchConfig, Submission};
use youtopia_exec::run_sql;
use youtopia_storage::{Database, Value};

fn flights_db() -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (1,'Paris'), (2,'Paris'), (3,'Rome')",
    )
    .unwrap();
    db
}

#[test]
fn a_query_can_satisfy_its_own_constraint() {
    // The constraint names the submitter itself: a singleton group where
    // the query's own head satisfies its postcondition.
    let co = Coordinator::new(flights_db());
    let sub = co
        .submit_sql(
            "a",
            "SELECT 'A', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('A', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap();
    let n = sub.answered().expect("self-satisfying query answers alone");
    assert_eq!(n.group.len(), 1);
}

#[test]
fn variable_partner_name_matches_anyone() {
    // "I'll take whatever flight anyone else books" — the partner name
    // position is a variable; unification binds it to Jerry.
    let co = Coordinator::new(flights_db());
    co.submit_sql(
        "jerry",
        "SELECT 'Jerry', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND (who, fno) IN ANSWER R CHOOSE 1",
    )
    .unwrap();
    // Jerry's own head satisfies `(who, fno)` by self-unification
    // (who = 'Jerry'), so he is answered alone. Check the relaxed-safety
    // waiting variant instead: whoever arrives next coordinates.
    assert_eq!(co.pending_count(), 0);

    let co2 = Coordinator::new(flights_db());
    // the follower has no membership; it rides on the leader's choice
    let follower = co2
        .submit_sql(
            "follower",
            "SELECT 'Follower', fno INTO ANSWER R \
             WHERE (leader, fno) IN ANSWER R AND leader <> 'Follower' CHOOSE 1",
        )
        .unwrap();
    let Submission::Pending(follower_ticket) = follower else {
        panic!("nobody to follow yet")
    };
    let leader = co2
        .submit_sql(
            "leader",
            "SELECT 'Leader', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1",
        )
        .unwrap();
    // the leader is self-contained and answers alone...
    let n = leader.answered().expect("leader answers immediately");
    assert_eq!(n.group.len(), 1);
    // ...and the *cascade* then answers the follower against the
    // leader's freshly committed tuple (the system-wide answer relation)
    let fn_ = follower_ticket
        .receiver
        .try_recv()
        .expect("follower answered by the cascade");
    assert_eq!(fn_.answers[0].1.values()[1], Value::Int(3));
    let answers = co2.answers("R");
    assert_eq!(answers.len(), 2);
    for t in &answers {
        assert_eq!(
            t.values()[1],
            Value::Int(3),
            "both on the leader's Rome flight"
        );
    }
    assert_eq!(co2.pending_count(), 0);
}

#[test]
fn filter_on_unified_variables_prunes_partners() {
    // "a different flight than my rival": negative correlation through
    // a filter over both queries' variables.
    let co = Coordinator::new(flights_db());
    co.submit_sql(
        "a",
        "SELECT 'A', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') CHOOSE 1",
    )
    .unwrap();
    // B wants a Paris flight that is NOT the one A got... but A is
    // already answered, so B references the answer relation of a new
    // coordination. Use a live pair instead: B and C must differ.
    let b = co
        .submit_sql(
            "b",
            "SELECT 'B', bf INTO ANSWER R \
             WHERE bf IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('C', cf) IN ANSWER R AND bf <> cf CHOOSE 1",
        )
        .unwrap();
    assert!(matches!(b, Submission::Pending(_)));
    let c = co
        .submit_sql(
            "c",
            "SELECT 'C', cf INTO ANSWER R \
             WHERE cf IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('B', bf) IN ANSWER R AND bf <> cf CHOOSE 1",
        )
        .unwrap();
    let n = c
        .answered()
        .expect("the pair with distinct flights matches");
    assert_eq!(n.group.len(), 2);
    let answers = co.answers("R");
    let b_fno = answers
        .iter()
        .find(|t| t.values()[0].as_str() == Some("B"))
        .unwrap();
    let c_fno = answers
        .iter()
        .find(|t| t.values()[0].as_str() == Some("C"))
        .unwrap();
    assert_ne!(b_fno.values()[1], c_fno.values()[1], "bf <> cf enforced");
}

#[test]
fn arity_mismatch_on_the_same_relation_never_unifies() {
    let co = Coordinator::new(flights_db());
    co.submit_sql(
        "two",
        "SELECT 'T', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights) \
         AND ('X', fno, fno) IN ANSWER R CHOOSE 1",
    )
    .unwrap();
    let sub = co
        .submit_sql(
            "three",
            "SELECT 'X', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
        )
        .unwrap();
    // the 2-ary head cannot satisfy the 3-ary constraint; the singleton
    // still answers itself
    let n = sub.answered().unwrap();
    assert_eq!(n.group.len(), 1);
    assert_eq!(co.pending_count(), 1, "the 3-ary requester keeps waiting");
}

#[test]
fn membership_subquery_errors_surface_cleanly() {
    let co = Coordinator::new(flights_db());
    // unknown table inside the membership: compile succeeds (the parser
    // cannot know), matching surfaces the executor error
    let err = co
        .submit_sql(
            "a",
            "SELECT 'A', x INTO ANSWER R \
             WHERE x IN (SELECT y FROM NoSuchTable) CHOOSE 1",
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::Exec(_)), "{err:?}");
}

#[test]
fn membership_arity_mismatch_is_reported() {
    let co = Coordinator::new(flights_db());
    let err = co
        .submit_sql(
            "a",
            "SELECT 'A', x INTO ANSWER R \
             WHERE (x, x) IN (SELECT fno FROM Flights) CHOOSE 1",
        )
        .unwrap_err();
    assert!(
        matches!(&err, CoreError::Compile(msg) if msg.contains("2 terms")),
        "{err:?}"
    );
}

#[test]
fn cancelled_query_cannot_be_matched_later() {
    let co = Coordinator::new(flights_db());
    let pair = |me: &str, friend: &str| {
        format!(
            "SELECT '{me}', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('{friend}', fno) IN ANSWER R CHOOSE 1"
        )
    };
    let a = co.submit_sql("a", &pair("A", "B")).unwrap();
    co.cancel(a.id()).unwrap();
    let b = co.submit_sql("b", &pair("B", "A")).unwrap();
    assert!(matches!(b, Submission::Pending(_)), "partner was cancelled");
    // resubmitting A revives the coordination
    let a2 = co.submit_sql("a", &pair("A", "B")).unwrap();
    assert!(a2.answered().is_some());
}

#[test]
fn group_size_exactly_at_the_bound_matches() {
    let db = flights_db();
    let config = CoordinatorConfig {
        match_config: MatchConfig {
            max_group_size: 3,
            randomize: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let co = Coordinator::with_config(db, config);
    let names = ["A", "B", "C"];
    for (i, me) in names.iter().enumerate() {
        let next = names[(i + 1) % 3];
        let sub = co
            .submit_sql(
                me,
                &format!(
                    "SELECT '{me}', fno INTO ANSWER R \
                     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                     AND ('{next}', fno) IN ANSWER R CHOOSE 1"
                ),
            )
            .unwrap();
        if i == 2 {
            assert!(
                sub.answered().is_some(),
                "ring of exactly max_group_size closes"
            );
        }
    }
}

#[test]
fn duplicate_queries_all_complete_via_cascade() {
    // Two copies of A's request wait; B's arrival matches one copy
    // live, and the cascade answers the second copy against the
    // committed ('B', f) tuple — everyone ends up coordinated.
    let co = Coordinator::new(flights_db());
    let pair = |me: &str, friend: &str| {
        format!(
            "SELECT '{me}', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('{friend}', fno) IN ANSWER R CHOOSE 1"
        )
    };
    co.submit_sql("a", &pair("A", "B")).unwrap();
    co.submit_sql("a", &pair("A", "B")).unwrap();
    let first = co.submit_sql("b", &pair("B", "A")).unwrap();
    assert!(first.answered().is_some());
    assert_eq!(
        co.pending_count(),
        0,
        "the cascade answered the second copy too"
    );
    assert_eq!(co.answers("R").len(), 3);
}

#[test]
fn duplicate_queries_pair_disjointly_without_committed_matching() {
    // With the system-wide reading disabled, constraints are satisfied
    // only by live pending queries: two disjoint pairs must form.
    let config = CoordinatorConfig {
        match_config: MatchConfig {
            use_committed_answers: false,
            ..MatchConfig::default()
        },
        ..Default::default()
    };
    let co = Coordinator::with_config(flights_db(), config);
    let pair = |me: &str, friend: &str| {
        format!(
            "SELECT '{me}', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('{friend}', fno) IN ANSWER R CHOOSE 1"
        )
    };
    co.submit_sql("a", &pair("A", "B")).unwrap();
    co.submit_sql("a", &pair("A", "B")).unwrap();
    let first = co.submit_sql("b", &pair("B", "A")).unwrap();
    assert!(first.answered().is_some());
    assert_eq!(co.pending_count(), 1, "one copy of A still waits");
    let second = co.submit_sql("b", &pair("B", "A")).unwrap();
    assert!(second.answered().is_some());
    assert_eq!(co.pending_count(), 0);
    assert_eq!(co.answers("R").len(), 4);
}

#[test]
fn committed_answers_satisfy_later_constraints_directly() {
    // Kramer books first (self-contained); Jerry's later "same flight
    // as Kramer" request is answered immediately against Kramer's
    // committed reservation — the paper's first demo flow.
    let co = Coordinator::new(flights_db());
    let kramer = co
        .submit_sql(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') CHOOSE 1",
        )
        .unwrap()
        .answered()
        .unwrap();
    let kramer_fno = kramer.answers[0].1.values()[1].clone();

    let jerry = co
        .submit_sql(
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Kramer', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap()
        .answered()
        .expect("committed answer satisfies jerry's postcondition");
    assert_eq!(jerry.group.len(), 1, "no live partner needed");
    assert_eq!(jerry.answers[0].1.values()[1], kramer_fno);
}

#[test]
fn cascade_chains_through_multiple_rounds() {
    // follower2 waits on follower1, follower1 waits on the leader. The
    // leader's single submission must unlock both, transitively, in one
    // cascade: leader commits -> follower1 matches committed tuple ->
    // follower1 commits -> follower2 matches.
    let co = Coordinator::new(flights_db());
    let f2 = co
        .submit_sql(
            "f2",
            "SELECT 'F2', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('F1', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap();
    let Submission::Pending(t2) = f2 else {
        panic!()
    };
    let f1 = co
        .submit_sql(
            "f1",
            "SELECT 'F1', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Leader', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap();
    let Submission::Pending(t1) = f1 else {
        panic!()
    };

    // {f1, f2} alone is not closed: f1's constraint still needs a
    // Leader head, so both remain pending.
    assert_eq!(co.pending_count(), 2);

    let leader = co
        .submit_sql(
            "leader",
            "SELECT 'Leader', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE fno = 1) CHOOSE 1",
        )
        .unwrap();
    assert!(leader.answered().is_some());

    // The leader's arrival may answer it alone (it is self-contained)
    // or pull f1/f2 into a live group; either way the cascade must
    // leave nobody pending and everyone on the leader's flight.
    let n1 = t1.receiver.try_recv().expect("f1 answered");
    let n2 = t2
        .receiver
        .try_recv()
        .expect("f2 answered via the second cascade round");
    assert_eq!(n1.answers[0].1.values()[1], youtopia_storage::Value::Int(1));
    assert_eq!(n2.answers[0].1.values()[1], youtopia_storage::Value::Int(1));
    assert_eq!(co.pending_count(), 0);
    assert_eq!(co.answers("R").len(), 3);
}

#[test]
fn negative_constraints_see_committed_answers() {
    let co = Coordinator::new(flights_db());
    // A books flight 1 directly
    co.submit_sql(
        "a",
        "SELECT 'A', fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE fno = 1) CHOOSE 1",
    )
    .unwrap()
    .answered()
    .unwrap();
    // B refuses any flight A holds: only Paris flight 2 remains eligible
    let b = co
        .submit_sql(
            "b",
            "SELECT 'B', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('A', fno) NOT IN ANSWER R CHOOSE 1",
        )
        .unwrap()
        .answered()
        .expect("flight 2 is still allowed");
    assert_eq!(b.answers[0].1.values()[1], Value::Int(2));
}

#[test]
fn empty_database_leaves_everything_pending_then_retry_matches() {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    let co = Coordinator::new(db.clone());
    let pair = |me: &str, friend: &str| {
        format!(
            "SELECT '{me}', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('{friend}', fno) IN ANSWER R CHOOSE 1"
        )
    };
    co.submit_sql("a", &pair("A", "B")).unwrap();
    co.submit_sql("b", &pair("B", "A")).unwrap();
    assert_eq!(co.pending_count(), 2);
    run_sql(&db, "INSERT INTO Flights VALUES (7, 'Paris')").unwrap();
    let swept = co.retry_all().unwrap();
    assert_eq!(swept.len(), 2);
    for t in co.answers("R") {
        assert_eq!(t.values()[1], Value::Int(7));
    }
}

#[test]
fn answer_relation_name_is_case_insensitive_for_matching() {
    let co = Coordinator::new(flights_db());
    co.submit_sql(
        "a",
        "SELECT 'A', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('B', fno) IN ANSWER RESERVATION CHOOSE 1",
    )
    .unwrap();
    let sub = co
        .submit_sql(
            "b",
            "SELECT 'B', fno INTO ANSWER reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('A', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
    assert!(sub.answered().is_some(), "relation case must not matter");
}

#[test]
fn stats_survive_failed_and_successful_submissions() {
    let co = Coordinator::new(flights_db());
    let _ = co.submit_sql("x", "SELECT 'X', v INTO ANSWER R CHOOSE 1"); // unsafe
    co.submit_sql(
        "solo",
        "SELECT 'S', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
    )
    .unwrap();
    let stats = co.stats();
    assert_eq!(stats.rejected_unsafe, 1);
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.answered, 1);
    assert_eq!(stats.groups_matched, 1);
}
