//! Error types for the coordination layer.

use std::fmt;

use youtopia_exec::ExecError;
use youtopia_storage::StorageError;

/// Errors produced while compiling, registering or matching entangled
/// queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The SQL front end rejected the statement.
    Parse(String),
    /// The statement is not an entangled query.
    NotEntangled,
    /// The entangled query failed compilation to the IR (scoping,
    /// unsupported construct...).
    Compile(String),
    /// The query failed the safety analysis; the string explains which
    /// condition was violated.
    Unsafe(String),
    /// A storage-layer failure while applying a match.
    Storage(StorageError),
    /// An execution-engine failure while evaluating database predicates.
    Exec(ExecError),
    /// The referenced pending query does not exist (already answered,
    /// cancelled, or never registered).
    UnknownQuery(u64),
    /// The submission was rejected by the tenant's admission quotas
    /// before registration; the strings name the tenant and the quota
    /// that tripped.
    QuotaExceeded {
        /// Tenant whose quota rejected the submission.
        tenant: String,
        /// Which quota tripped (`in-flight`, `standing`, `rate`).
        reason: String,
    },
    /// An internal invariant was violated (a bug).
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(msg) => write!(f, "parse error: {msg}"),
            CoreError::NotEntangled => {
                write!(
                    f,
                    "statement is not an entangled query (no INTO ANSWER clause)"
                )
            }
            CoreError::Compile(msg) => write!(f, "compile error: {msg}"),
            CoreError::Unsafe(msg) => write!(f, "unsafe entangled query: {msg}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::UnknownQuery(id) => write!(f, "unknown pending query q{id}"),
            CoreError::QuotaExceeded { tenant, reason } => {
                write!(f, "tenant '{tenant}' quota exceeded: {reason}")
            }
            CoreError::Internal(msg) => write!(f, "internal coordination error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

/// Result alias for the coordination crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CoreError::NotEntangled.to_string().contains("INTO ANSWER"));
        assert_eq!(
            CoreError::UnknownQuery(7).to_string(),
            "unknown pending query q7"
        );
        assert!(
            CoreError::Unsafe("variable 'x' is not range-restricted".into())
                .to_string()
                .contains("range-restricted")
        );
        assert_eq!(
            CoreError::QuotaExceeded {
                tenant: "acme".into(),
                reason: "in-flight limit 4 reached".into(),
            }
            .to_string(),
            "tenant 'acme' quota exceeded: in-flight limit 4 reached"
        );
    }

    #[test]
    fn conversions() {
        let e: CoreError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
        let e: CoreError = ExecError::DivisionByZero.into();
        assert!(matches!(e, CoreError::Exec(_)));
    }
}
