//! The coordination audit subsystem: every terminal [`CoordEvent`]
//! (plus submit-time registration) is mirrored into **insert-only
//! system relations** that the engine's own SQL layer can query — the
//! system dogfoods itself for observability.
//!
//! Two relations are maintained:
//!
//! * [`AUDIT_TABLE`] (`sys_audit`) — one row per audit-relevant event:
//!   `(qid, tenant, owner, kind, submitted_at, resolved_at, outcome,
//!   latency_micros, shard)`. Registration writes a `submit` row with
//!   outcome `pending`; a match / cancellation / expiry writes a
//!   terminal row carrying the resolution time and the
//!   submit-to-resolution latency.
//! * [`LATENCY_TABLE`] (`sys_tenant_latency`) — a rolled-up latency
//!   histogram with fixed log2 buckets, updated **in place** per
//!   `(tenant, outcome, bucket)`: bucket `b` counts resolutions whose
//!   latency in microseconds lies in `[2^(b-1), 2^b)` (bucket 0 counts
//!   zero-latency resolutions).
//!
//! Both relations are *transient system tables* (the `sys_` prefix,
//! see [`youtopia_storage::db::TRANSIENT_PREFIX`]): fully readable
//! through `SELECT`, but never WAL-logged and skipped by checkpoints —
//! audit writes cost **zero** extra fsyncs. Durability comes from the
//! coordination log itself: the events already carry audit stamps
//! (wire tags 6–9, written only while auditing is enabled), so
//! `recover` rebuilds the relations from the replayed frames and the
//! post-crash audit history matches the pre-crash run.
//!
//! Retention is ring-style and bounded by [`AuditConfig`]: when
//! `sys_audit` exceeds `max_rows`, the oldest `rotate` rows are
//! deleted in the same transaction. The histogram is naturally bounded
//! (tenants × outcomes × 65 buckets) and is never rotated.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use youtopia_storage::{
    Column, DataType, Database, RowId, Schema, StorageResult, Transaction, Tuple, Value,
};

use crate::engine::CoordEvent;
use crate::ir::QueryId;
use crate::lifecycle::Clock;
use crate::tenant::tenant_of;

/// Name of the per-event audit relation.
pub const AUDIT_TABLE: &str = "sys_audit";

/// Name of the per-tenant latency histogram relation.
pub const LATENCY_TABLE: &str = "sys_tenant_latency";

/// Number of log2 latency buckets (bucket index 0..=64 fits any u64).
pub const LATENCY_BUCKETS: u32 = 65;

/// Configuration of the audit sink. Disabled by default: a coordinator
/// without auditing stamps no events and writes no rows, so existing
/// logs and benchmarks are byte- and cost-identical to the pre-audit
/// system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Master switch. When off, no audit stamps are written to the
    /// coordination log and no system relations are touched.
    pub enabled: bool,
    /// Ring-retention cap on `sys_audit` rows. When an insert pushes
    /// the table past this bound, the oldest `rotate` rows are deleted.
    pub max_rows: usize,
    /// How many oldest rows one rotation discards (clamped to ≥ 1).
    pub rotate: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            enabled: false,
            max_rows: 8192,
            rotate: 512,
        }
    }
}

impl AuditConfig {
    /// An enabled config with the default bounds.
    pub fn enabled() -> Self {
        AuditConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// The log2 bucket of a latency: 0 for zero, else `floor(log2(x)) + 1`
/// — bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
pub fn latency_bucket(latency_micros: u64) -> u32 {
    (u64::BITS - latency_micros.leading_zeros()).min(LATENCY_BUCKETS - 1)
}

/// A submit-time entry awaiting its terminal event.
struct OpenEntry {
    owner: String,
    submitted_at: u64,
    shard: u32,
}

#[derive(Default)]
struct SinkInner {
    /// Registered-but-unresolved queries: qid → submit-time facts.
    open: HashMap<u64, OpenEntry>,
    /// `sys_audit` row ids in insertion order (the retention ring).
    ring: VecDeque<RowId>,
    /// `(tenant, outcome, bucket)` → histogram row + in-memory count
    /// (kept here so in-place updates never re-read the table).
    latency: HashMap<(String, String, u32), (RowId, u64)>,
}

/// Transforms coordination events into rows of the audit relations.
/// One sink is shared by all shards of a coordinator; writes are
/// serialized by an internal mutex and go through ordinary storage
/// transactions (which, on transient tables, never reach the WAL).
pub struct AuditSink {
    db: Database,
    config: AuditConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<SinkInner>,
    /// Whether the system relations are known to exist — set after a
    /// successful bootstrap so the hot path skips the per-transaction
    /// catalog probes.
    tables_ready: std::sync::atomic::AtomicBool,
}

impl AuditSink {
    /// Creates the sink and eagerly bootstraps the (empty) system
    /// relations so dashboards can `SELECT` before any traffic.
    pub(crate) fn new(db: Database, config: AuditConfig, clock: Arc<dyn Clock>) -> AuditSink {
        let sink = AuditSink {
            db,
            config,
            clock,
            inner: Mutex::new(SinkInner::default()),
            tables_ready: std::sync::atomic::AtomicBool::new(false),
        };
        if sink.db.with_txn(ensure_audit_tables).is_ok() {
            sink.tables_ready
                .store(true, std::sync::atomic::Ordering::Release);
        }
        sink
    }

    /// The sink's clock reading, used to stamp events before logging.
    pub(crate) fn now(&self) -> u64 {
        self.clock.now_millis()
    }

    /// The submit stamp of a still-open (pending) query, used by
    /// checkpoints to re-emit surviving registrations without losing
    /// their audit history.
    pub(crate) fn reg_stamp_of(&self, qid: QueryId) -> Option<crate::engine::RegStamp> {
        let inner = self.inner.lock();
        inner.open.get(&qid.0).map(|e| crate::engine::RegStamp {
            at: e.submitted_at,
            shard: e.shard,
        })
    }

    /// Mirrors one coordination event into the audit relations.
    /// Events without audit stamps (written while auditing was off)
    /// are ignored, as are terminal events whose registration was
    /// never seen — the open-entry map is the arbiter, which makes
    /// live observation and log-replay rebuilds agree exactly.
    pub(crate) fn observe(&self, event: &CoordEvent) {
        self.observe_batch(std::slice::from_ref(event));
    }

    /// Mirrors a batch of events in one storage transaction (the
    /// batch-drain and rebuild fast path).
    pub(crate) fn observe_batch(&self, events: &[CoordEvent]) {
        if !self.config.enabled || events.is_empty() {
            return;
        }
        let ready = self.tables_ready.load(std::sync::atomic::Ordering::Acquire);
        let mut inner = self.inner.lock();
        // Audit is telemetry: a failed write must never fail the
        // coordination path, so the result is deliberately dropped.
        let written = self.db.with_txn(|txn| {
            if !ready {
                ensure_audit_tables(txn)?;
            }
            for event in events {
                apply_event(&mut inner, txn, event)?;
            }
            enforce_retention(&mut inner, &self.config, txn)
        });
        if !ready && written.is_ok() {
            self.tables_ready
                .store(true, std::sync::atomic::Ordering::Release);
        }
    }

    /// Rebuilds the audit relations from a recovered log's
    /// coordination frames (called with the tables empty, before the
    /// recovered coordinator processes new traffic). Frames that fail
    /// to decode are skipped — recovery already validated the log.
    pub(crate) fn rebuild_from_frames(&self, frames: &[Vec<u8>]) {
        let events: Vec<CoordEvent> = frames
            .iter()
            .filter_map(|f| CoordEvent::decode(f).ok())
            .collect();
        self.observe_batch(&events);
    }
}

fn ensure_audit_tables(txn: &mut Transaction) -> StorageResult<()> {
    if !txn.catalog().has_table(AUDIT_TABLE) {
        txn.create_table(
            AUDIT_TABLE,
            Schema::new(vec![
                Column::new("qid", DataType::Int64),
                Column::new("tenant", DataType::Str),
                Column::new("owner", DataType::Str),
                Column::new("kind", DataType::Str),
                Column::new("submitted_at", DataType::Int64),
                Column::nullable("resolved_at", DataType::Int64),
                Column::new("outcome", DataType::Str),
                Column::nullable("latency_micros", DataType::Int64),
                Column::new("shard", DataType::Int64),
            ]),
        )?;
    }
    if !txn.catalog().has_table(LATENCY_TABLE) {
        txn.create_table(
            LATENCY_TABLE,
            Schema::new(vec![
                Column::new("tenant", DataType::Str),
                Column::new("outcome", DataType::Str),
                Column::new("bucket", DataType::Int64),
                Column::new("count", DataType::Int64),
            ]),
        )?;
    }
    Ok(())
}

fn apply_event(
    inner: &mut SinkInner,
    txn: &mut Transaction,
    event: &CoordEvent,
) -> StorageResult<()> {
    match event {
        CoordEvent::QueryRegistered {
            owner,
            qid,
            stamp: Some(stamp),
            ..
        } => {
            inner.open.insert(
                qid.0,
                OpenEntry {
                    owner: owner.clone(),
                    submitted_at: stamp.at,
                    shard: stamp.shard,
                },
            );
            let rid = txn.insert(
                AUDIT_TABLE,
                Tuple::new(vec![
                    Value::Int(qid.0 as i64),
                    Value::from(tenant_of(owner)),
                    Value::from(owner.as_str()),
                    Value::from("submit"),
                    Value::Int(stamp.at as i64),
                    Value::Null,
                    Value::from("pending"),
                    Value::Null,
                    Value::Int(stamp.shard as i64),
                ]),
            )?;
            inner.ring.push_back(rid);
        }
        CoordEvent::QueryCancelled { qid, at: Some(at) } => {
            resolve(inner, txn, *qid, "cancel", "cancelled", *at)?;
        }
        CoordEvent::QueryExpired { qid, at: Some(at) } => {
            resolve(inner, txn, *qid, "expire", "expired", *at)?;
        }
        CoordEvent::MatchCommitted {
            qids, at: Some(at), ..
        } => {
            for qid in qids {
                resolve(inner, txn, *qid, "match", "answered", *at)?;
            }
        }
        // stamp-less events (auditing was off when they were logged)
        // and watermarks carry nothing to mirror
        _ => {}
    }
    Ok(())
}

/// Writes the terminal `sys_audit` row for `qid` and bumps its
/// latency-histogram bucket. A qid with no open entry is skipped (its
/// registration predates auditing, or it already resolved).
fn resolve(
    inner: &mut SinkInner,
    txn: &mut Transaction,
    qid: QueryId,
    kind: &str,
    outcome: &str,
    at: u64,
) -> StorageResult<()> {
    let Some(entry) = inner.open.remove(&qid.0) else {
        return Ok(());
    };
    let tenant = tenant_of(&entry.owner).to_string();
    let latency_micros = at.saturating_sub(entry.submitted_at).saturating_mul(1000);
    let rid = txn.insert(
        AUDIT_TABLE,
        Tuple::new(vec![
            Value::Int(qid.0 as i64),
            Value::from(tenant.as_str()),
            Value::from(entry.owner.as_str()),
            Value::from(kind),
            Value::Int(entry.submitted_at as i64),
            Value::Int(at as i64),
            Value::from(outcome),
            Value::Int(latency_micros as i64),
            Value::Int(entry.shard as i64),
        ]),
    )?;
    inner.ring.push_back(rid);

    let bucket = latency_bucket(latency_micros);
    let key = (tenant.clone(), outcome.to_string(), bucket);
    match inner.latency.get_mut(&key) {
        Some((rid, count)) => {
            *count += 1;
            let row = Tuple::new(vec![
                Value::from(tenant.as_str()),
                Value::from(outcome),
                Value::Int(bucket as i64),
                Value::Int(*count as i64),
            ]);
            txn.update(LATENCY_TABLE, *rid, row)?;
        }
        None => {
            let rid = txn.insert(
                LATENCY_TABLE,
                Tuple::new(vec![
                    Value::from(tenant.as_str()),
                    Value::from(outcome),
                    Value::Int(bucket as i64),
                    Value::Int(1),
                ]),
            )?;
            inner.latency.insert(key, (rid, 1));
        }
    }
    Ok(())
}

fn enforce_retention(
    inner: &mut SinkInner,
    config: &AuditConfig,
    txn: &mut Transaction,
) -> StorageResult<()> {
    let rotate = config.rotate.max(1);
    while inner.ring.len() > config.max_rows {
        for _ in 0..rotate.min(inner.ring.len()) {
            if let Some(rid) = inner.ring.pop_front() {
                txn.delete(AUDIT_TABLE, rid)?;
            }
        }
    }
    Ok(())
}

/// One `sys_audit` row, decoded for programmatic consumers (the net
/// protocol's `AuditQuery`, the admin console).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Query id.
    pub qid: u64,
    /// Tenant (owner prefix before the first `/`).
    pub tenant: String,
    /// Full owner string.
    pub owner: String,
    /// Event kind: `submit`, `match`, `cancel`, or `expire`.
    pub kind: String,
    /// Submit time in clock milliseconds.
    pub submitted_at: u64,
    /// Resolution time (`None` on `submit` rows).
    pub resolved_at: Option<u64>,
    /// Outcome: `pending`, `answered`, `cancelled`, or `expired`.
    pub outcome: String,
    /// Submit-to-resolution latency (`None` on `submit` rows).
    pub latency_micros: Option<u64>,
    /// Shard that accepted the query (0 on the serial coordinator).
    pub shard: u32,
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => Some(*i as u64),
        _ => None,
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        _ => "",
    }
}

fn decode_audit_row(tuple: &Tuple) -> Option<AuditRecord> {
    let v = tuple.values();
    if v.len() != 9 {
        return None;
    }
    Some(AuditRecord {
        qid: as_u64(&v[0])?,
        tenant: as_str(&v[1]).to_string(),
        owner: as_str(&v[2]).to_string(),
        kind: as_str(&v[3]).to_string(),
        submitted_at: as_u64(&v[4])?,
        resolved_at: as_u64(&v[5]),
        outcome: as_str(&v[6]).to_string(),
        latency_micros: as_u64(&v[7]),
        shard: as_u64(&v[8])? as u32,
    })
}

/// Reads the newest `limit` audit rows of one tenant (in row order,
/// oldest first). Used by the tenant-scoped net `AuditQuery` — callers
/// enforce that a tenant may only read its own slice. Returns empty
/// when the audit relation does not exist (auditing disabled).
pub fn tenant_audit(db: &Database, tenant: &str, limit: usize) -> Vec<AuditRecord> {
    let read = db.read();
    let Ok(table) = read.table(AUDIT_TABLE) else {
        return Vec::new();
    };
    let mut rows: Vec<AuditRecord> = table
        .scan()
        .filter_map(|(_, tuple)| decode_audit_row(tuple))
        .filter(|r| r.tenant == tenant)
        .collect();
    if rows.len() > limit {
        rows.drain(..rows.len() - limit);
    }
    rows
}

/// One `sys_tenant_latency` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBucket {
    /// Tenant the bucket belongs to.
    pub tenant: String,
    /// Terminal outcome the bucket counts.
    pub outcome: String,
    /// Log2 bucket index: bucket `b ≥ 1` covers latencies in
    /// `[2^(b-1), 2^b)` microseconds; bucket 0 counts zero latency.
    pub bucket: u32,
    /// Resolutions counted in this bucket.
    pub count: u64,
}

/// Reads the latency histogram, optionally filtered to one tenant,
/// sorted by (tenant, outcome, bucket). Empty when the relation does
/// not exist.
pub fn latency_histogram(db: &Database, tenant: Option<&str>) -> Vec<LatencyBucket> {
    let read = db.read();
    let Ok(table) = read.table(LATENCY_TABLE) else {
        return Vec::new();
    };
    let mut rows: Vec<LatencyBucket> = table
        .scan()
        .filter_map(|(_, tuple)| {
            let v = tuple.values();
            if v.len() != 4 {
                return None;
            }
            Some(LatencyBucket {
                tenant: as_str(&v[0]).to_string(),
                outcome: as_str(&v[1]).to_string(),
                bucket: as_u64(&v[2])? as u32,
                count: as_u64(&v[3])?,
            })
        })
        .filter(|b| tenant.is_none_or(|t| b.tenant == t))
        .collect();
    rows.sort_by(|a, b| (&a.tenant, &a.outcome, a.bucket).cmp(&(&b.tenant, &b.outcome, b.bucket)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RegStamp;
    use crate::lifecycle::MockClock;

    fn sink(config: AuditConfig) -> (Database, AuditSink) {
        let db = Database::new();
        let clock = Arc::new(MockClock::new(1_000));
        let sink = AuditSink::new(db.clone(), config, clock);
        (db, sink)
    }

    fn reg(qid: u64, owner: &str, at: u64, shard: u32) -> CoordEvent {
        CoordEvent::QueryRegistered {
            owner: owner.into(),
            sql: format!("q{qid}"),
            qid: QueryId(qid),
            seq: qid,
            deadline: None,
            stamp: Some(RegStamp { at, shard }),
        }
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 1);
        assert_eq!(latency_bucket(2), 2);
        assert_eq!(latency_bucket(3), 2);
        assert_eq!(latency_bucket(4), 3);
        assert_eq!(latency_bucket(1000), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn lifecycle_produces_submit_and_terminal_rows() {
        let (db, sink) = sink(AuditConfig::enabled());
        sink.observe(&reg(1, "acme/alice", 1_000, 2));
        sink.observe(&reg(2, "acme/bob", 1_010, 0));
        sink.observe(&reg(3, "zebra/carol", 1_020, 1));
        sink.observe(&CoordEvent::MatchCommitted {
            qids: vec![QueryId(1)],
            answer_writes: Vec::new(),
            at: Some(1_500),
        });
        sink.observe(&CoordEvent::QueryCancelled {
            qid: QueryId(2),
            at: Some(1_600),
        });
        sink.observe(&CoordEvent::QueryExpired {
            qid: QueryId(3),
            at: Some(1_700),
        });

        let acme = tenant_audit(&db, "acme", 100);
        assert_eq!(acme.len(), 4); // 2 submits + 2 terminals
        let answered: Vec<_> = acme.iter().filter(|r| r.outcome == "answered").collect();
        assert_eq!(answered.len(), 1);
        assert_eq!(answered[0].qid, 1);
        assert_eq!(answered[0].latency_micros, Some(500_000));
        assert_eq!(answered[0].resolved_at, Some(1_500));
        assert_eq!(answered[0].shard, 2);

        let zebra = tenant_audit(&db, "zebra", 100);
        assert_eq!(zebra.len(), 2);
        assert!(zebra.iter().any(|r| r.outcome == "expired"));

        // histogram: one count per terminal, in the right bucket
        let hist = latency_histogram(&db, Some("acme"));
        assert_eq!(hist.len(), 2);
        assert!(hist
            .iter()
            .any(|b| b.outcome == "answered" && b.bucket == latency_bucket(500_000)));
        // tenant isolation of the read helpers
        assert!(latency_histogram(&db, Some("zebra"))
            .iter()
            .all(|b| b.tenant == "zebra"));
    }

    #[test]
    fn unstamped_events_and_unknown_qids_are_ignored() {
        let (db, sink) = sink(AuditConfig::enabled());
        sink.observe(&CoordEvent::QueryRegistered {
            owner: "a/x".into(),
            sql: "q".into(),
            qid: QueryId(1),
            seq: 1,
            deadline: None,
            stamp: None, // logged while auditing was off
        });
        sink.observe(&CoordEvent::QueryCancelled {
            qid: QueryId(99), // never registered
            at: Some(10),
        });
        assert!(tenant_audit(&db, "a", 100).is_empty());
    }

    #[test]
    fn ring_retention_bounds_the_relation() {
        let config = AuditConfig {
            enabled: true,
            max_rows: 10,
            rotate: 4,
        };
        let (db, sink) = sink(config);
        for i in 0..40 {
            sink.observe(&reg(i, "t/u", 1_000 + i, 0));
        }
        let rows = tenant_audit(&db, "t", 1000);
        assert!(
            rows.len() <= 10,
            "retention must bound rows: {}",
            rows.len()
        );
        // the newest rows survive
        assert!(rows.iter().any(|r| r.qid == 39));
        assert!(!rows.iter().any(|r| r.qid == 0));
    }

    #[test]
    fn rebuild_from_frames_reproduces_the_relation() {
        let events = vec![
            reg(1, "acme/a", 1_000, 0),
            reg(2, "acme/b", 1_005, 1),
            CoordEvent::MatchCommitted {
                qids: vec![QueryId(1), QueryId(2)],
                answer_writes: Vec::new(),
                at: Some(1_200),
            },
            reg(3, "acme/c", 1_300, 0),
            CoordEvent::QueryExpired {
                qid: QueryId(3),
                at: Some(1_900),
            },
        ];

        let (db_live, live) = sink(AuditConfig::enabled());
        for e in &events {
            live.observe(e);
        }

        let frames: Vec<Vec<u8>> = events.iter().map(CoordEvent::encode).collect();
        let (db_rebuilt, rebuilt) = sink(AuditConfig::enabled());
        rebuilt.rebuild_from_frames(&frames);

        let mut a = tenant_audit(&db_live, "acme", 1000);
        let mut b = tenant_audit(&db_rebuilt, "acme", 1000);
        a.sort_by_key(|r| (r.qid, r.kind.clone()));
        b.sort_by_key(|r| (r.qid, r.kind.clone()));
        assert_eq!(a, b);
        assert_eq!(
            latency_histogram(&db_live, None),
            latency_histogram(&db_rebuilt, None)
        );
    }

    #[test]
    fn disabled_sink_writes_nothing() {
        let (db, sink) = sink(AuditConfig::default());
        sink.observe(&reg(1, "t/u", 1_000, 0));
        assert!(tenant_audit(&db, "t", 100).is_empty());
    }
}
