//! Safety analysis for entangled queries.
//!
//! The companion technical paper ("Entangled Queries", SIGMOD 2011)
//! shows that evaluating arbitrary entangled queries is intractable and
//! introduces a syntactic *safety* condition under which matching is
//! feasible. The essence is **range restriction**: every variable must
//! obtain its values from a finite, database-derived domain.
//!
//! This module implements two variants:
//!
//! * [`SafetyMode::Strict`] — every variable must occur in a *positive
//!   membership predicate* (`(... x ...) IN (SELECT ...)`). All domains
//!   are then enumerable from the database alone.
//! * [`SafetyMode::Relaxed`] — a variable may instead occur in a
//!   *positive answer constraint*; its value then flows in by
//!   unification with a partner query's (range-restricted) head. The
//!   matcher resolves such variables only when a partner actually binds
//!   them; a whole group of mutually unrestricted queries can never
//!   ground and is simply not matched.
//!
//! In both modes a variable occurring **only** in a head, a filter, a
//! negated membership or a negated constraint is rejected: nothing could
//! ever produce its value.

use std::collections::HashSet;

use crate::error::{CoreError, CoreResult};
use crate::ir::{EntangledQuery, Var};

/// Which safety condition submissions must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SafetyMode {
    /// Every variable must be range-restricted by a positive membership
    /// predicate of *this* query.
    #[default]
    Strict,
    /// A variable may alternatively be bound through a positive answer
    /// constraint (i.e. by a partner query's head).
    Relaxed,
}

/// Checks `q` against the chosen safety condition.
pub fn check_safety(q: &EntangledQuery, mode: SafetyMode) -> CoreResult<()> {
    let membership_vars: HashSet<&Var> = q
        .memberships
        .iter()
        .filter(|m| !m.negated)
        .flat_map(|m| m.vars())
        .collect();
    let constraint_vars: HashSet<&Var> = q
        .constraints
        .iter()
        .filter(|c| !c.negated)
        .flat_map(|c| c.atom.vars())
        .collect();

    for var in q.all_vars() {
        let restricted = match mode {
            SafetyMode::Strict => membership_vars.contains(&var),
            SafetyMode::Relaxed => membership_vars.contains(&var) || constraint_vars.contains(&var),
        };
        if !restricted {
            let hint = match mode {
                SafetyMode::Strict => {
                    "it must appear in a positive membership predicate \
                     ((...) IN (SELECT ...))"
                }
                SafetyMode::Relaxed => {
                    "it must appear in a positive membership predicate or a positive \
                     answer constraint"
                }
            };
            return Err(CoreError::Unsafe(format!(
                "variable ?{} is not range-restricted: {hint}",
                var.name()
            )));
        }
    }

    // Sanity: heads must not be empty tuples and constraints must
    // reference an answer relation (guaranteed by the compiler; cheap to
    // re-assert for IR built by hand).
    for h in &q.heads {
        if h.terms.is_empty() {
            return Err(CoreError::Unsafe(format!(
                "head atom {} has no terms",
                h.relation
            )));
        }
    }
    Ok(())
}

/// True when the query has no positive answer constraints — it does not
/// wait on anyone and can be answered as a singleton group (pure
/// database choice). Negative constraints still need checking against
/// the group's answers, but a group of one suffices.
pub fn is_self_contained(q: &EntangledQuery) -> bool {
    q.constraints.iter().all(|c| c.negated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;

    #[test]
    fn papers_query_is_safe_in_both_modes() {
        let q = compile_sql(
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
        check_safety(&q, SafetyMode::Strict).unwrap();
        check_safety(&q, SafetyMode::Relaxed).unwrap();
        assert!(!is_self_contained(&q));
    }

    #[test]
    fn head_only_variable_is_unsafe_everywhere() {
        let q = compile_sql("SELECT 'K', x INTO ANSWER R CHOOSE 1").unwrap();
        assert!(matches!(
            check_safety(&q, SafetyMode::Strict),
            Err(CoreError::Unsafe(msg)) if msg.contains("?x")
        ));
        assert!(check_safety(&q, SafetyMode::Relaxed).is_err());
    }

    #[test]
    fn constraint_bound_variable_needs_relaxed_mode() {
        // "give me whatever flight Jerry picked"
        let q =
            compile_sql("SELECT 'K', fno INTO ANSWER R WHERE ('Jerry', fno) IN ANSWER R CHOOSE 1")
                .unwrap();
        assert!(check_safety(&q, SafetyMode::Strict).is_err());
        check_safety(&q, SafetyMode::Relaxed).unwrap();
    }

    #[test]
    fn filter_only_variable_is_unsafe() {
        let q = compile_sql(
            "SELECT 'K', x INTO ANSWER R \
             WHERE x IN (SELECT a FROM t) AND y < 5 CHOOSE 1",
        )
        .unwrap();
        let err = check_safety(&q, SafetyMode::Relaxed).unwrap_err();
        assert!(matches!(err, CoreError::Unsafe(msg) if msg.contains("?y")));
    }

    #[test]
    fn negated_membership_does_not_restrict() {
        let q =
            compile_sql("SELECT 'K', x INTO ANSWER R WHERE x NOT IN (SELECT a FROM t) CHOOSE 1")
                .unwrap();
        assert!(check_safety(&q, SafetyMode::Strict).is_err());
        assert!(check_safety(&q, SafetyMode::Relaxed).is_err());
    }

    #[test]
    fn negated_constraint_does_not_restrict() {
        let q = compile_sql("SELECT 'K', x INTO ANSWER R WHERE ('J', x) NOT IN ANSWER R CHOOSE 1")
            .unwrap();
        assert!(check_safety(&q, SafetyMode::Relaxed).is_err());
    }

    #[test]
    fn self_containment() {
        let alone =
            compile_sql("SELECT 'K', x INTO ANSWER R WHERE x IN (SELECT a FROM t) CHOOSE 1")
                .unwrap();
        assert!(is_self_contained(&alone));
        check_safety(&alone, SafetyMode::Strict).unwrap();

        let neg_only = compile_sql(
            "SELECT 'K', x INTO ANSWER R \
             WHERE x IN (SELECT a FROM t) AND ('J', x) NOT IN ANSWER R CHOOSE 1",
        )
        .unwrap();
        assert!(is_self_contained(&neg_only));
    }

    #[test]
    fn multi_var_multi_constraint_safety() {
        let q = compile_sql(
            "SELECT 'J', fno INTO ANSWER Res, 'J', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND ('K', fno) IN ANSWER Res AND ('K', hid) IN ANSWER HotelRes CHOOSE 1",
        )
        .unwrap();
        // hid is bound only through the HotelRes constraint
        assert!(check_safety(&q, SafetyMode::Strict).is_err());
        check_safety(&q, SafetyMode::Relaxed).unwrap();
    }
}
