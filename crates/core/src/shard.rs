//! The sharded, batch-draining coordinator.
//!
//! # Why sharding is sound
//!
//! Entangled queries interact **only** through answer relations: a
//! member of a coordination group satisfies another member's
//! postcondition with one of its heads, so every edge of every possible
//! coordination group connects two queries whose answer-relation
//! signatures ([`EntangledQuery::answer_relations`]) overlap. Queries
//! whose signatures are *not* connected (directly or transitively) can
//! never appear in one group, never provide each other's committed
//! answers, and never trigger each other's cascades — the same
//! independence between non-overlapping components that makes
//! decomposition tractable in probabilistic-database conditioning. The
//! pending registry can therefore be partitioned by connected component
//! of the relation-overlap graph and matched concurrently, with no
//! cross-shard matching pass at all.
//!
//! # Routing rule
//!
//! A union-find over answer-relation names maintains those connected
//! components incrementally. Each arriving query unions all relations
//! in its signature; the resulting root carries a shard assignment
//! (round-robin at component birth). When a query's signature spans
//! components previously assigned *different* shards, the components
//! merge and the smaller side's pending queries are **rebalanced**
//! (migrated) into the surviving shard, then re-matched there — an
//! overlap means those queries can now coordinate, so they must be
//! co-sharded from that point on. Many components can share one shard
//! (assignment is surjective, not bijective); correctness only requires
//! that one component never spans two shards.
//!
//! # Locking protocol
//!
//! Lock order is strictly `router → shard(i) → shard(j>i) → database`:
//!
//! * the **router lock** serializes routing decisions and migrations;
//!   migrations take the two affected shard locks in ascending index
//!   order while the router lock is held, so a migration's view of
//!   "who lives where" is never stale;
//! * each **shard lock** guards that shard's state (registry, RNG,
//!   waiters, counters) while its bucket drains; a thread holding a
//!   shard lock never takes the router lock — answered queries are
//!   logged under the shard lock and retired from the router *after*
//!   it is released;
//! * the **database lock** (inside [`Database`]) is the leaf: matching
//!   takes the shared read lock, applies take the exclusive write
//!   lock, and no coordinator lock is ever requested while holding it.
//!   Coordination logging no longer takes this lock at all — events
//!   enqueue to the WAL's pipelined group-commit writer and block on
//!   their completion slot, so shards draining concurrently share one
//!   fsync per writer quantum instead of serializing on the database.
//!
//! A query routed by one thread is not yet visible in its shard's
//! registry until that thread drains it; a concurrent migration can
//! therefore decide placement without seeing it. Drains heal this
//! *stale placement* after releasing the shard lock: still-pending
//! queries are re-checked against the router and moved (and
//! re-matched) if a merge re-routed their component mid-flight.
//!
//! # Batch draining
//!
//! [`ShardedCoordinator::submit_batch_sql`] compiles and safety-checks
//! the whole batch outside any lock, routes it in one router pass
//! (bucketing after all unions, so intra-batch merges cannot strand an
//! earlier entry), then drains each shard's bucket on a small worker
//! pool — one scoped thread per busy shard, capped by
//! [`ShardedConfig::workers`]. Within one shard the bucket is processed
//! arrival-by-arrival — insert, match, cascade — which keeps per-shard
//! semantics *identical* to the serial coordinator under a fixed seed
//! with randomization disabled (property-tested in
//! `tests/prop_shard_equivalence.rs`). Each shard's RNG is seeded with
//! `seed ^ shard_id` so `CHOOSE` stays reproducible independent of
//! drain interleaving, and each matched group still commits through one
//! atomic storage transaction.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::{Mutex, MutexGuard};

use youtopia_storage::{Database, StorageResult, Transaction, Tuple, Wal};

use crate::audit::AuditSink;
use crate::compile::compile_sql;
use crate::coordinator::{
    CoordinatorConfig, MatchGraph, MatchNotification, PendingInfo, RecoveryReport, Submission,
    SystemStats, Ticket,
};
use crate::engine::{
    match_graph_of, replay_coordination_frames, Arrival, CoordEvent, CoordinationLog, Engine,
    RegStamp, ShardState, WaitMode, Waiter,
};
use crate::error::{CoreError, CoreResult};
use crate::future::{CoordinationFuture, CoordinationOutcome, TicketShared};
use crate::ir::{EntangledQuery, QueryId};
use crate::lifecycle::{Clock, DeadlineHost, SubmitOptions, SweepSignal, SystemClock};
use crate::matcher::{GroupMatch, MatchStats};
use crate::registry::Pending;
use crate::safety::check_safety;
use crate::tenant::{tenant_of, Admission, TenantOutcome, TenantRegistry};

/// Apply hook shared by every shard (applies can run concurrently on
/// different shards, hence `Sync` on top of the serial hook's bounds).
pub type SharedApplyHook =
    Arc<dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()> + Send + Sync + 'static>;

/// When the background sweeper should trigger a coordinator
/// checkpoint, evaluated on every sweep tick (so a quiet system still
/// checkpoints on schedule — the in-line
/// [`ShardedConfig::auto_checkpoint_bytes`] trigger only fires on
/// write traffic). A field set to `0` disables that criterion; the
/// default policy is fully disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint when at least this many bytes were appended to the
    /// WAL since the last checkpoint (`0` = never by size).
    pub max_wal_bytes: u64,
    /// Checkpoint when the last one is at least this many clock
    /// milliseconds old (`0` = never by age).
    pub max_age_millis: u64,
}

impl CheckpointPolicy {
    /// Whether the gauges warrant a checkpoint under this policy.
    pub fn due(&self, wal_bytes_since_checkpoint: u64, checkpoint_age_millis: u64) -> bool {
        (self.max_wal_bytes > 0 && wal_bytes_since_checkpoint >= self.max_wal_bytes)
            || (self.max_age_millis > 0 && checkpoint_age_millis >= self.max_age_millis)
    }
}

/// Construction options for [`ShardedCoordinator`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards (independent matching domains). More shards
    /// shrink each cascade/sweep scan and raise drain parallelism.
    pub shards: usize,
    /// Worker threads used to drain a batch (`0` = one per available
    /// CPU). Capped by the number of busy shards per batch.
    pub workers: usize,
    /// Auto-checkpoint threshold: when more than this many bytes have
    /// been appended to the WAL since the last checkpoint, the
    /// coordinator triggers [`ShardedCoordinator::checkpoint`] after
    /// the group commit that crossed the line. `0` (the default)
    /// disables auto-checkpointing; non-durable databases ignore it.
    pub auto_checkpoint_bytes: u64,
    /// Fair tenant interleaving: when set, each batch drain reorders
    /// its bucket round-robin across tenants ([`tenant_of`] on the
    /// owner) in first-appearance order, so one tenant's storm cannot
    /// monopolize a drain quantum. Off by default — with it off the
    /// drain order (and thus the match outcome under a fixed seed) is
    /// exactly the submission order, which the serial-equivalence
    /// properties pin. Workloads where every owner is its own tenant
    /// are order-identical either way.
    pub fair_drain: bool,
    /// Sweeper-tick checkpoint policy (size and/or age), evaluated by
    /// the [`crate::DeadlineSweeper`]'s periodic tick. Disabled by
    /// default.
    pub checkpoint: CheckpointPolicy,
    /// Per-shard coordinator behavior; `base.seed` is xored with the
    /// shard id to seed each shard's RNG.
    pub base: CoordinatorConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            workers: 0,
            auto_checkpoint_bytes: 0,
            fair_drain: false,
            checkpoint: CheckpointPolicy::default(),
            base: CoordinatorConfig::default(),
        }
    }
}

/// Per-request outcome of a batch submission.
pub type BatchOutcome = CoreResult<Submission>;

/// One shard's drain bucket: `(input index, prepared pending query,
/// tenant admission to bind once the registration is durable)`.
type Bucket = Vec<(usize, Pending, Option<Admission>)>;

/// What a drain hands back: per-slot outcomes, the answered log, and
/// the ids that may still be pending (for placement healing).
type DrainResult = (
    Vec<(usize, CoreResult<Arrival>)>,
    Vec<QueryId>,
    Vec<QueryId>,
);

/// Reorders a drain bucket round-robin across tenants, tenants ordered
/// by first appearance and each tenant's own entries kept in
/// submission order ([`ShardedConfig::fair_drain`]). A bucket whose
/// owners are all distinct tenants comes back unchanged.
fn fair_interleave(bucket: Bucket) -> Bucket {
    let mut queues: Vec<std::collections::VecDeque<(usize, Pending, Option<Admission>)>> =
        Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let total = bucket.len();
    for entry in bucket {
        let tenant = tenant_of(&entry.1.owner).to_string();
        let qi = *index.entry(tenant).or_insert_with(|| {
            queues.push(std::collections::VecDeque::new());
            queues.len() - 1
        });
        queues[qi].push_back(entry);
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        for queue in &mut queues {
            if let Some(entry) = queue.pop_front() {
                out.push(entry);
            }
        }
    }
    out
}

// ------------------------------------------------------------------ //
// Router: union-find over answer-relation signatures
// ------------------------------------------------------------------ //

/// A pending-query migration decided while merging two relation
/// components.
#[derive(Debug)]
struct Migration {
    from: usize,
    to: usize,
    qids: Vec<QueryId>,
}

/// Union-find over relation names with per-component shard assignment
/// and live-membership tracking (the membership sets are what a merge
/// migrates).
struct Router {
    /// Union-find parent per node (a node is one relation name).
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Shard assignment; meaningful at root nodes.
    shard: Vec<usize>,
    /// Live queries of the component (pending *or* routed-but-not-yet-
    /// drained); meaningful at roots.
    members: Vec<HashSet<QueryId>>,
    /// Lowercased relation name → node.
    rel_node: HashMap<String, usize>,
    /// Routed query → any node of its signature.
    qid_node: HashMap<QueryId, usize>,
    /// Round-robin cursor for newborn components.
    next_rr: usize,
    num_shards: usize,
}

impl Router {
    fn new(num_shards: usize) -> Router {
        Router {
            parent: Vec::new(),
            rank: Vec::new(),
            shard: Vec::new(),
            members: Vec::new(),
            rel_node: HashMap::new(),
            qid_node: HashMap::new(),
            next_rr: 0,
            num_shards,
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// The node of `relation`, created (with a fresh round-robin shard)
    /// on first sight.
    fn node_for(&mut self, relation: &str) -> usize {
        if let Some(&n) = self.rel_node.get(relation) {
            return n;
        }
        let n = self.parent.len();
        self.parent.push(n);
        self.rank.push(0);
        self.shard.push(self.next_rr);
        self.next_rr = (self.next_rr + 1) % self.num_shards;
        self.members.push(HashSet::new());
        self.rel_node.insert(relation.to_string(), n);
        n
    }

    /// Routes a query over its (lowercased) answer-relation signature:
    /// unions the signature into one component, decides the surviving
    /// shard, and reports which already-routed queries must migrate
    /// because their component just changed shards.
    fn route(&mut self, qid: QueryId, relations: &BTreeSet<String>) -> (usize, Vec<Migration>) {
        let Some(first) = relations.iter().next() else {
            // no answer relations at all: the query coordinates with
            // nobody; spread it round-robin
            let s = self.next_rr;
            self.next_rr = (self.next_rr + 1) % self.num_shards;
            return (s, Vec::new());
        };
        let nodes: Vec<usize> = relations.iter().map(|r| self.node_for(r)).collect();
        let mut roots: Vec<usize> = nodes.iter().map(|&n| self.find(n)).collect();
        roots.sort_unstable();
        roots.dedup();

        // the surviving shard: the component with the most live queries
        // keeps its shard (cheapest migration); ties break toward the
        // lowest shard index for determinism
        let winner_shard = roots
            .iter()
            .map(|&r| (std::cmp::Reverse(self.members[r].len()), self.shard[r]))
            .min()
            .map(|(_, s)| s)
            .expect("at least one root");

        let mut migrations = Vec::new();
        let mut merged_members = HashSet::new();
        for &r in &roots {
            if self.shard[r] != winner_shard && !self.members[r].is_empty() {
                migrations.push(Migration {
                    from: self.shard[r],
                    to: winner_shard,
                    qids: self.members[r].iter().copied().collect(),
                });
            }
            merged_members.extend(std::mem::take(&mut self.members[r]));
        }

        // union all roots; install the merged membership and the
        // surviving shard at the final root
        let mut root = roots[0];
        for &r in &roots[1..] {
            root = self.union(root, r);
        }
        self.shard[root] = winner_shard;
        merged_members.insert(qid);
        self.members[root] = merged_members;
        self.qid_node.insert(qid, self.rel_node[first]);

        (winner_shard, migrations)
    }

    /// Union by rank; returns the surviving root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[ra] == self.rank[rb] {
            self.rank[winner] += 1;
        }
        winner
    }

    /// Retires an answered/cancelled query from its component.
    fn purge(&mut self, qid: QueryId) {
        if let Some(node) = self.qid_node.remove(&qid) {
            let root = self.find(node);
            self.members[root].remove(&qid);
        }
    }

    /// The shard a known relation currently routes to.
    fn shard_of_relation(&mut self, relation: &str) -> Option<usize> {
        let &node = self.rel_node.get(&relation.to_ascii_lowercase())?;
        let root = self.find(node);
        Some(self.shard[root])
    }

    /// The shard a routed query's component currently maps to.
    fn shard_of_query(&mut self, qid: QueryId) -> Option<usize> {
        let &node = self.qid_node.get(&qid)?;
        let root = self.find(node);
        Some(self.shard[root])
    }
}

// ------------------------------------------------------------------ //
// Per-shard monitoring counters (lock-free read paths)
// ------------------------------------------------------------------ //

/// A lock-free mirror of one shard's monitoring counters, refreshed
/// with relaxed stores every time the shard lock is released (see
/// [`ShardGuard`]). Monitoring reads ([`ShardedCoordinator::stats`],
/// [`ShardedCoordinator::pending_count`],
/// [`ShardedCoordinator::pending_per_shard`]) load these atomics and
/// never contend with draining; [`ShardedCoordinator::pending_snapshot`]
/// remains the consistent (locking) slow path.
struct ShardMonitor {
    pending: AtomicUsize,
    /// Earliest deadline of this shard's pending queries, in clock
    /// millis; `u64::MAX` when none carries one. The deadline
    /// sweeper's lock-free wakeup hint: `expire_due` skips a shard
    /// whose hint lies in the future without touching its lock.
    min_deadline: AtomicU64,
    submitted: AtomicU64,
    answered: AtomicU64,
    expired: AtomicU64,
    groups_matched: AtomicU64,
    match_attempts: AtomicU64,
    matching_nanos: AtomicU64,
    candidates_considered: AtomicU64,
    committed_considered: AtomicU64,
    unify_attempts: AtomicU64,
    unify_successes: AtomicU64,
    groundings_attempted: AtomicU64,
    rows_scanned: AtomicU64,
    nodes_expanded: AtomicU64,
    subsets_tested: AtomicU64,
    candidates_scanned: AtomicU64,
    index_pruned: AtomicU64,
    triggers_pruned: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl Default for ShardMonitor {
    fn default() -> Self {
        ShardMonitor {
            pending: AtomicUsize::new(0),
            min_deadline: AtomicU64::new(u64::MAX),
            submitted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            groups_matched: AtomicU64::new(0),
            match_attempts: AtomicU64::new(0),
            matching_nanos: AtomicU64::new(0),
            candidates_considered: AtomicU64::new(0),
            committed_considered: AtomicU64::new(0),
            unify_attempts: AtomicU64::new(0),
            unify_successes: AtomicU64::new(0),
            groundings_attempted: AtomicU64::new(0),
            rows_scanned: AtomicU64::new(0),
            nodes_expanded: AtomicU64::new(0),
            subsets_tested: AtomicU64::new(0),
            candidates_scanned: AtomicU64::new(0),
            index_pruned: AtomicU64::new(0),
            triggers_pruned: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
        }
    }
}

impl ShardMonitor {
    fn publish(&self, state: &ShardState) {
        self.pending.store(state.registry.len(), Ordering::Relaxed);
        self.min_deadline.store(
            state.registry.min_deadline().unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        let s = &state.stats;
        self.submitted.store(s.submitted, Ordering::Relaxed);
        self.answered.store(s.answered, Ordering::Relaxed);
        self.expired.store(s.expired, Ordering::Relaxed);
        self.groups_matched
            .store(s.groups_matched, Ordering::Relaxed);
        self.match_attempts
            .store(s.match_attempts, Ordering::Relaxed);
        self.matching_nanos
            .store(s.matching_nanos as u64, Ordering::Relaxed);
        let w = &s.match_work;
        self.candidates_considered
            .store(w.candidates_considered, Ordering::Relaxed);
        self.committed_considered
            .store(w.committed_considered, Ordering::Relaxed);
        self.unify_attempts
            .store(w.unify_attempts, Ordering::Relaxed);
        self.unify_successes
            .store(w.unify_successes, Ordering::Relaxed);
        self.groundings_attempted
            .store(w.groundings_attempted, Ordering::Relaxed);
        self.rows_scanned.store(w.rows_scanned, Ordering::Relaxed);
        self.nodes_expanded
            .store(w.nodes_expanded, Ordering::Relaxed);
        self.subsets_tested
            .store(w.subsets_tested, Ordering::Relaxed);
        self.candidates_scanned
            .store(w.candidates_scanned, Ordering::Relaxed);
        self.index_pruned.store(w.index_pruned, Ordering::Relaxed);
        self.triggers_pruned
            .store(w.triggers_pruned, Ordering::Relaxed);
        self.pool_hits.store(w.pool_hits, Ordering::Relaxed);
        self.pool_misses.store(w.pool_misses, Ordering::Relaxed);
    }

    fn stats(&self) -> SystemStats {
        SystemStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_unsafe: 0, // tracked globally, not per shard
            rejected_quota: 0,  // tracked globally, not per shard
            answered: self.answered.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            groups_matched: self.groups_matched.load(Ordering::Relaxed),
            match_attempts: self.match_attempts.load(Ordering::Relaxed),
            matching_nanos: self.matching_nanos.load(Ordering::Relaxed) as u128,
            match_work: MatchStats {
                candidates_considered: self.candidates_considered.load(Ordering::Relaxed),
                committed_considered: self.committed_considered.load(Ordering::Relaxed),
                unify_attempts: self.unify_attempts.load(Ordering::Relaxed),
                unify_successes: self.unify_successes.load(Ordering::Relaxed),
                groundings_attempted: self.groundings_attempted.load(Ordering::Relaxed),
                rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
                nodes_expanded: self.nodes_expanded.load(Ordering::Relaxed),
                subsets_tested: self.subsets_tested.load(Ordering::Relaxed),
                candidates_scanned: self.candidates_scanned.load(Ordering::Relaxed),
                index_pruned: self.index_pruned.load(Ordering::Relaxed),
                triggers_pruned: self.triggers_pruned.load(Ordering::Relaxed),
                pool_hits: self.pool_hits.load(Ordering::Relaxed),
                pool_misses: self.pool_misses.load(Ordering::Relaxed),
            },
            // log-surface gauges are coordinator-wide, not per shard;
            // ShardedCoordinator::stats sets them after merging
            wal_bytes: 0,
            wal_bytes_since_checkpoint: 0,
            checkpoint_age_millis: 0,
            auto_checkpoints: 0,
        }
    }
}

/// One shard: its mutable state behind the shard lock, plus the
/// lock-free monitor mirror.
struct ShardSlot {
    state: Mutex<ShardState>,
    monitor: ShardMonitor,
}

/// A shard-lock guard that republishes the shard's monitor counters
/// when dropped, so the lock-free read paths stay fresh no matter
/// which code path mutated the shard.
struct ShardGuard<'a> {
    state: MutexGuard<'a, ShardState>,
    monitor: &'a ShardMonitor,
}

impl Deref for ShardGuard<'_> {
    type Target = ShardState;
    fn deref(&self) -> &ShardState {
        &self.state
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardState {
        &mut self.state
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.monitor.publish(&self.state);
    }
}

// ------------------------------------------------------------------ //
// The sharded coordinator
// ------------------------------------------------------------------ //

/// A coordinator that partitions the pending registry into shards keyed
/// by answer-relation signature and drains submissions per shard — see
/// the module docs for the routing rule and locking protocol. The
/// public surface mirrors [`crate::Coordinator`] plus the batch path,
/// durable recovery ([`ShardedCoordinator::recover`]) and waiter
/// reattachment ([`ShardedCoordinator::reattach`]).
pub struct ShardedCoordinator {
    engine: Engine,
    shards: Vec<ShardSlot>,
    router: Mutex<Router>,
    next_id: AtomicU64,
    seq: AtomicU64,
    rejected_unsafe: AtomicU64,
    rejected_quota: AtomicU64,
    apply_hook: Mutex<Option<SharedApplyHook>>,
    /// Optional per-tenant admission control, consulted on every
    /// submission path before a query id is allocated.
    tenants: Mutex<Option<Arc<TenantRegistry>>>,
    /// Serializes whole-owner reattaches. Each shard's swap is atomic
    /// under its own lock, but a reattach spans every shard; without
    /// the gate two concurrent reattaches for one owner interleave
    /// across shards and both come back holding live waiters for
    /// disjoint subsets. Held before any shard lock (lock order:
    /// gate → shard(i)).
    reattach_gate: Mutex<()>,
    /// Round-robin tenant interleaving in batch drains
    /// ([`ShardedConfig::fair_drain`]).
    fair_drain: bool,
    workers: usize,
    /// The coordinator clock (checkpoint age, recovery expiry); tests
    /// inject a [`crate::MockClock`] via
    /// [`ShardedCoordinator::with_clock`].
    clock: Arc<dyn Clock>,
    /// Notified (outside any shard lock) whenever a deadline-carrying
    /// query registers; the [`crate::DeadlineSweeper`] waits on it.
    sweep_signal: Arc<SweepSignal>,
    /// Auto-checkpoint threshold in bytes (0 = disabled).
    auto_checkpoint_bytes: u64,
    /// WAL length right after the last checkpoint (or at
    /// construction), for the bytes-since-checkpoint gauge.
    wal_len_at_checkpoint: AtomicU64,
    /// Clock millis of the last checkpoint (or construction).
    last_checkpoint_at: AtomicU64,
    /// Checkpoints triggered by the size threshold.
    auto_checkpoints: AtomicU64,
    /// Collapses concurrent auto-checkpoint triggers into one run.
    checkpointing: std::sync::atomic::AtomicBool,
    /// Sweeper-tick checkpoint policy ([`ShardedConfig::checkpoint`]).
    checkpoint_policy: CheckpointPolicy,
}

impl ShardedCoordinator {
    /// Creates a sharded coordinator over `db` (timed by the system
    /// clock).
    pub fn with_config(db: Database, config: ShardedConfig) -> ShardedCoordinator {
        Self::with_clock(db, config, Arc::new(SystemClock))
    }

    /// [`ShardedCoordinator::with_config`] with an injected clock —
    /// checkpoint-age accounting and recovery expiry read this clock,
    /// so deadline tests run on a [`crate::MockClock`] with no
    /// wall-clock sleeps.
    pub fn with_clock(
        db: Database,
        config: ShardedConfig,
        clock: Arc<dyn Clock>,
    ) -> ShardedCoordinator {
        let shards = config.shards.max(1);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let wal_len = db.wal_len().unwrap_or(0);
        let now = clock.now_millis();
        let audit = config
            .base
            .audit
            .enabled
            .then(|| Arc::new(AuditSink::new(db.clone(), config.base.audit, clock.clone())));
        ShardedCoordinator {
            shards: (0..shards)
                .map(|i| ShardSlot {
                    state: Mutex::new(ShardState::new(
                        config.base.use_const_index,
                        config.base.seed ^ i as u64,
                    )),
                    monitor: ShardMonitor::default(),
                })
                .collect(),
            router: Mutex::new(Router::new(shards)),
            next_id: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            rejected_unsafe: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            apply_hook: Mutex::new(None),
            tenants: Mutex::new(None),
            reattach_gate: Mutex::new(()),
            fair_drain: config.fair_drain,
            workers,
            clock,
            sweep_signal: Arc::new(SweepSignal::new()),
            auto_checkpoint_bytes: config.auto_checkpoint_bytes,
            wal_len_at_checkpoint: AtomicU64::new(wal_len),
            last_checkpoint_at: AtomicU64::new(now),
            auto_checkpoints: AtomicU64::new(0),
            checkpointing: std::sync::atomic::AtomicBool::new(false),
            checkpoint_policy: config.checkpoint,
            engine: Engine {
                db,
                config: config.base,
                audit,
            },
        }
    }

    /// A sharded coordinator with the default four shards.
    pub fn new(db: Database) -> ShardedCoordinator {
        ShardedCoordinator::with_config(db, ShardedConfig::default())
    }

    /// The underlying database handle.
    pub fn db(&self) -> &Database {
        &self.engine.db
    }

    /// The per-shard coordinator configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.engine.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks one shard; the returned guard republishes the shard's
    /// monitor counters on drop.
    fn shard_lock(&self, shard: usize) -> ShardGuard<'_> {
        let slot = &self.shards[shard];
        ShardGuard {
            state: slot.state.lock(),
            monitor: &slot.monitor,
        }
    }

    /// Registers the application side-effect hook, shared by all
    /// shards and run inside each match's storage transaction.
    pub fn set_apply_hook(&self, hook: SharedApplyHook) {
        *self.apply_hook.lock() = Some(hook);
    }

    /// Installs per-tenant admission control: every later submission is
    /// checked against its tenant's quotas before a query id is
    /// allocated, and every termination updates the tenant's ledger.
    /// Queries already pending (e.g. after
    /// [`ShardedCoordinator::recover`]) are adopted into their tenants'
    /// in-flight counts without quota checks.
    pub fn set_tenant_registry(&self, registry: Arc<TenantRegistry>) {
        for shard in 0..self.shards.len() {
            let state = self.shard_lock(shard);
            for p in state.registry.iter() {
                registry.adopt(&p.owner, p.id, p.deadline);
            }
        }
        *self.tenants.lock() = Some(registry);
    }

    /// The installed tenant registry, if any.
    pub fn tenant_registry(&self) -> Option<Arc<TenantRegistry>> {
        self.tenants.lock().clone()
    }

    /// Submits one entangled query given as SQL text.
    pub fn submit_sql(&self, owner: &str, sql: &str) -> CoreResult<Submission> {
        self.submit_sql_with(owner, sql, SubmitOptions::default())
    }

    /// [`ShardedCoordinator::submit_sql`] with per-submission options
    /// (e.g. a deadline).
    pub fn submit_sql_with(
        &self,
        owner: &str,
        sql: &str,
        opts: SubmitOptions,
    ) -> CoreResult<Submission> {
        let compiled = compile_sql(sql)?;
        self.submit_with(owner, compiled, opts)
    }

    /// Submits one compiled entangled query: routes it to its shard and
    /// runs arrival-driven matching there. Submissions routed to
    /// different shards proceed concurrently.
    ///
    /// Log-before-ack: on a durable (WAL-backed) database the
    /// registration is committed to the coordination log — under the
    /// shard lock, so a concurrent checkpoint cannot lose it — before
    /// the arrival is processed or acknowledged.
    pub fn submit(&self, owner: &str, query: EntangledQuery) -> CoreResult<Submission> {
        self.submit_with(owner, query, SubmitOptions::default())
    }

    /// [`ShardedCoordinator::submit`] with per-submission options: a
    /// deadline rides the registration's log frame and is enforced by
    /// `expire_due` sweeps.
    pub fn submit_with(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
    ) -> CoreResult<Submission> {
        self.submit_mode(owner, query, opts, WaitMode::Sync)
            .map(Arrival::into_sync)
    }

    /// Submits one entangled query given as SQL text, returning a
    /// [`CoordinationFuture`] instead of a blocking ticket.
    pub fn submit_sql_async(&self, owner: &str, sql: &str) -> CoreResult<CoordinationFuture> {
        self.submit_sql_async_with(owner, sql, SubmitOptions::default())
    }

    /// [`ShardedCoordinator::submit_sql_async`] with per-submission
    /// options.
    pub fn submit_sql_async_with(
        &self,
        owner: &str,
        sql: &str,
        opts: SubmitOptions,
    ) -> CoreResult<CoordinationFuture> {
        let compiled = compile_sql(sql)?;
        self.submit_async_with(owner, compiled, opts)
    }

    /// Submits one compiled entangled query asynchronously: identical
    /// routing, logging and matching as [`ShardedCoordinator::submit`],
    /// but the returned handle is a poll-based future whose waker is
    /// fired — under the owning shard's lock — by whichever path
    /// terminates the query: a match commit, a cancellation, an expiry
    /// sweep, or a reattach. Thousands of these can be held in flight
    /// by one [`crate::WaiterSet`] thread.
    pub fn submit_async(
        &self,
        owner: &str,
        query: EntangledQuery,
    ) -> CoreResult<CoordinationFuture> {
        self.submit_async_with(owner, query, SubmitOptions::default())
    }

    /// [`ShardedCoordinator::submit_async`] with per-submission
    /// options.
    pub fn submit_async_with(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
    ) -> CoreResult<CoordinationFuture> {
        self.submit_mode(owner, query, opts, WaitMode::Async)
            .map(Arrival::into_async)
    }

    fn submit_mode(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
        mode: WaitMode,
    ) -> CoreResult<Arrival> {
        if let Err(e) = check_safety(&query, self.engine.config.safety) {
            self.rejected_unsafe.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // admission control runs before the query id is allocated so a
        // quota rejection leaves no trace in the id space, the router
        // or the log; the reservation is released (as `aborted`) if the
        // registration never becomes durable
        let tenants = self.tenants.lock().clone();
        let admission = match &tenants {
            Some(reg) => match reg.admit(owner, opts.deadline) {
                Ok(admission) => Some(admission),
                Err(e) => {
                    self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            },
            None => None,
        };
        let relations = query.answer_relations();
        let qid = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let pending = Pending {
            id: qid,
            owner: owner.to_string(),
            query: query.namespaced(qid),
            seq,
            deadline: opts.deadline,
        };
        let hook = self.apply_hook.lock().clone();

        let (shard, moves) = {
            let mut router = self.router.lock();
            let (shard, migrations) = router.route(qid, &relations);
            let moves = self.apply_migrations(&mut router, &migrations);
            (shard, moves)
        };
        self.rematch_moved(moves, &hook);

        let (result, answered) = {
            let mut state = self.shard_lock(shard);
            let event = CoordEvent::QueryRegistered {
                owner: owner.to_string(),
                sql: query.sql.clone(),
                qid,
                seq,
                deadline: opts.deadline,
                stamp: self.engine.audit_now().map(|at| RegStamp {
                    at,
                    shard: shard as u32,
                }),
            };
            match self.engine.db.log_event(&event) {
                Ok(()) => {
                    // the registration is durable: bind the tenant
                    // reservation to its id
                    if let (Some(reg), Some(admission)) = (&tenants, admission) {
                        reg.track(admission, qid);
                    }
                    // audit submit row before any terminal row this
                    // arrival could produce
                    self.engine.observe(&event);
                    let result = self.engine.process_arrival_mode(
                        &mut state,
                        pending,
                        hook_ref(&hook),
                        mode,
                    );
                    self.engine.flush_audit(&mut state);
                    (result, std::mem::take(&mut state.answered_log))
                }
                Err(e) => {
                    // never registered: retire the routed-but-unlogged id
                    // so the router does not leak its membership (the
                    // still-held admission rolls back on drop below)
                    (Err(CoreError::Storage(e)), vec![qid])
                }
            }
        };
        if let Some(reg) = &tenants {
            // the answered log carries every member of any group this
            // arrival completed; a qid that was never tracked (the log
            // failure above) is ignored by the ledger
            reg.finish_all(&answered, TenantOutcome::Answered);
        }
        self.retire(answered);
        // heal on Err as well: an apply failure reinstates the query as
        // pending, and a concurrent merge may have re-routed it
        if !matches!(&result, Ok(a) if !a.is_pending()) {
            self.heal_placement(shard, &[qid], &hook);
        }
        if opts.deadline.is_some() {
            // after every shard lock is released: the sweeper's next
            // hint read sees the published per-shard minimum
            self.sweep_signal.notify();
        }
        self.maybe_auto_checkpoint();
        result
    }

    /// Submits a batch of `(owner, sql)` requests: compiles and
    /// safety-checks outside any lock, routes the whole batch in one
    /// router pass, then drains each shard's bucket on the worker pool.
    /// Outcomes are returned in input order.
    pub fn submit_batch_sql(&self, requests: &[(String, String)]) -> Vec<BatchOutcome> {
        let compiled: Vec<(String, CoreResult<EntangledQuery>)> = requests
            .iter()
            .map(|(owner, sql)| (owner.clone(), compile_sql(sql)))
            .collect();
        self.submit_batch(compiled)
    }

    /// Batch submission of pre-compiled queries (entries may carry a
    /// compile error, which is passed through to the outcome slot).
    pub fn submit_batch(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>)>,
    ) -> Vec<BatchOutcome> {
        self.submit_batch_with(
            requests
                .into_iter()
                .map(|(owner, q)| (owner, q, SubmitOptions::default()))
                .collect(),
        )
    }

    /// [`ShardedCoordinator::submit_batch`] with per-entry options:
    /// each request may carry its own deadline, logged in its
    /// registration frame of the bucket's group commit.
    pub fn submit_batch_with(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>, SubmitOptions)>,
    ) -> Vec<BatchOutcome> {
        self.submit_batch_mode(requests, WaitMode::Sync)
            .into_iter()
            .map(|r| r.map(Arrival::into_sync))
            .collect()
    }

    /// [`ShardedCoordinator::submit_batch_sql`], async flavor: every
    /// accepted request comes back as a [`CoordinationFuture`] (already
    /// resolved when its arrival completed a group within the batch).
    pub fn submit_batch_sql_async(
        &self,
        requests: &[(String, String)],
    ) -> Vec<CoreResult<CoordinationFuture>> {
        let compiled: Vec<(String, CoreResult<EntangledQuery>)> = requests
            .iter()
            .map(|(owner, sql)| (owner.clone(), compile_sql(sql)))
            .collect();
        self.submit_batch_async(compiled)
    }

    /// [`ShardedCoordinator::submit_batch`], async flavor. Outcomes are
    /// returned in input order; the same routing, group-commit and
    /// drain machinery runs underneath, so matches are identical to a
    /// sync batch of the same requests under a fixed seed.
    pub fn submit_batch_async(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>)>,
    ) -> Vec<CoreResult<CoordinationFuture>> {
        self.submit_batch_async_with(
            requests
                .into_iter()
                .map(|(owner, q)| (owner, q, SubmitOptions::default()))
                .collect(),
        )
    }

    /// [`ShardedCoordinator::submit_batch_async`] with per-entry
    /// options.
    pub fn submit_batch_async_with(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>, SubmitOptions)>,
    ) -> Vec<CoreResult<CoordinationFuture>> {
        self.submit_batch_mode(requests, WaitMode::Async)
            .into_iter()
            .map(|r| r.map(Arrival::into_async))
            .collect()
    }

    fn submit_batch_mode(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>, SubmitOptions)>,
        mode: WaitMode,
    ) -> Vec<CoreResult<Arrival>> {
        let mut outcomes: Vec<Option<CoreResult<Arrival>>> = Vec::with_capacity(requests.len());
        outcomes.resize_with(requests.len(), || None);

        // Phase 1 (no locks): compile outcomes + safety + tenant
        // admission, id allocation in input order so ids match a serial
        // submission of the batch (admission precedes allocation, like
        // the single-submit path, so a rejected entry burns no id).
        let tenants = self.tenants.lock().clone();
        let mut any_deadline = false;
        let mut accepted: Vec<(usize, Pending, BTreeSet<String>, Option<Admission>)> = Vec::new();
        for (idx, (owner, compiled, opts)) in requests.into_iter().enumerate() {
            let query = match compiled {
                Ok(q) => q,
                Err(e) => {
                    outcomes[idx] = Some(Err(e));
                    continue;
                }
            };
            if let Err(e) = check_safety(&query, self.engine.config.safety) {
                self.rejected_unsafe.fetch_add(1, Ordering::Relaxed);
                outcomes[idx] = Some(Err(e));
                continue;
            }
            let admission = match &tenants {
                Some(reg) => match reg.admit(&owner, opts.deadline) {
                    Ok(admission) => Some(admission),
                    Err(e) => {
                        self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                        outcomes[idx] = Some(Err(e));
                        continue;
                    }
                },
                None => None,
            };
            let relations = query.answer_relations();
            let qid = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            any_deadline |= opts.deadline.is_some();
            let pending = Pending {
                id: qid,
                owner,
                query: query.namespaced(qid),
                seq,
                deadline: opts.deadline,
            };
            accepted.push((idx, pending, relations, admission));
        }

        // Phase 2 (router lock): union every signature first, then
        // bucket by the *final* component placement — bucketing after
        // all unions means an intra-batch merge can never strand an
        // earlier entry on a stale shard.
        let hook = self.apply_hook.lock().clone();
        let mut buckets: Vec<Bucket> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut all_moves: HashMap<usize, Vec<QueryId>> = HashMap::new();
        {
            let mut router = self.router.lock();
            let mut routed = Vec::with_capacity(accepted.len());
            for (idx, pending, relations, admission) in accepted {
                let (_, migrations) = router.route(pending.id, &relations);
                for (shard, mut qids) in self.apply_migrations(&mut router, &migrations) {
                    all_moves.entry(shard).or_default().append(&mut qids);
                }
                routed.push((idx, pending, admission));
            }
            for (idx, pending, admission) in routed {
                let shard = router
                    .shard_of_query(pending.id)
                    .expect("query was routed in this pass");
                buckets[shard].push((idx, pending, admission));
            }
        }
        self.rematch_moved(all_moves, &hook);

        // Phase 3 (worker pool): drain each busy shard independently,
        // arrival-by-arrival within the bucket.
        let busy: Vec<usize> = (0..buckets.len())
            .filter(|&s| !buckets[s].is_empty())
            .collect();
        let buckets: Vec<Option<Mutex<Bucket>>> = buckets
            .into_iter()
            .map(|b| {
                if b.is_empty() {
                    None
                } else {
                    Some(Mutex::new(b))
                }
            })
            .collect();
        let worker_count = self.workers.min(busy.len()).max(1);

        let mut drained: Vec<(usize, CoreResult<Arrival>)> = Vec::new();
        let mut answered: Vec<QueryId> = Vec::new();
        let mut still_pending: Vec<(usize, QueryId)> = Vec::new(); // (shard, qid)
        let cursor = AtomicU64::new(0);
        let worker = |results: &mut Vec<(usize, CoreResult<Arrival>)>,
                      log: &mut Vec<QueryId>,
                      pending_out: &mut Vec<(usize, QueryId)>| {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                let Some(&shard) = busy.get(i) else { break };
                let bucket = buckets[shard]
                    .as_ref()
                    .expect("busy shard has a bucket")
                    .lock()
                    .drain(..)
                    .collect::<Vec<_>>();
                let (mut r, mut l, maybe_pending) = self.drain_shard(shard, bucket, &hook, mode);
                pending_out.extend(maybe_pending.into_iter().map(|qid| (shard, qid)));
                results.append(&mut r);
                log.append(&mut l);
            }
        };
        if worker_count <= 1 {
            worker(&mut drained, &mut answered, &mut still_pending);
        } else {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| {
                        let worker = &worker;
                        scope.spawn(move || {
                            let (mut r, mut l, mut p) = (Vec::new(), Vec::new(), Vec::new());
                            worker(&mut r, &mut l, &mut p);
                            (r, l, p)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("drain worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (mut r, mut l, mut p) in results {
                drained.append(&mut r);
                answered.append(&mut l);
                still_pending.append(&mut p);
            }
        }
        if let Some(reg) = &tenants {
            // every member of any group the batch completed; untracked
            // ids (log-failure slots) are ignored by the ledger
            reg.finish_all(&answered, TenantOutcome::Answered);
        }
        self.retire(answered);

        // Phase 4: heal any placement made stale by a concurrent merge.
        let mut by_shard: HashMap<usize, Vec<QueryId>> = HashMap::new();
        for (shard, qid) in still_pending {
            by_shard.entry(shard).or_default().push(qid);
        }
        for (shard, qids) in by_shard {
            self.heal_placement(shard, &qids, &hook);
        }

        if any_deadline {
            self.sweep_signal.notify();
        }
        self.maybe_auto_checkpoint();

        for (idx, outcome) in drained {
            outcomes[idx] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every batch slot received an outcome"))
            .collect()
    }

    /// Drains one shard's bucket under its lock: group-commits the
    /// bucket's registrations to the coordination log as one
    /// marker-delimited commit group (buckets draining on other
    /// shards share the pipeline writer's fsync), then
    /// insert → match → cascade per arrival, in bucket (= submission)
    /// order. Returns the per-request outcomes,
    /// the answered-query log, and the ids that may still be pending
    /// afterwards (`Pending` outcomes, plus `Err` outcomes — an apply
    /// failure reinstates the query), which the caller must
    /// placement-heal.
    fn drain_shard(
        &self,
        shard: usize,
        bucket: Bucket,
        hook: &Option<SharedApplyHook>,
        mode: WaitMode,
    ) -> DrainResult {
        // Fair tenant interleaving reorders the bucket *before* the log
        // events are built, so the durable registration order equals
        // the processing order, exactly as in the unfair drain.
        let bucket = if self.fair_drain {
            fair_interleave(bucket)
        } else {
            bucket
        };
        let tenants = self.tenants.lock().clone();
        let mut state = self.shard_lock(shard);
        // log-before-ack, batch flavor: every registration of the
        // bucket is durable before any of its arrivals is processed
        let stamp = self.engine.audit_now().map(|at| RegStamp {
            at,
            shard: shard as u32,
        });
        let events: Vec<CoordEvent> = bucket
            .iter()
            .map(|(_, p, _)| CoordEvent::QueryRegistered {
                owner: p.owner.clone(),
                sql: p.query.sql.clone(),
                qid: p.id,
                seq: p.seq,
                deadline: p.deadline,
                stamp,
            })
            .collect();
        if let Err(e) = self.engine.db.log_events(&events) {
            // none were registered: fail every slot and retire the
            // routed-but-unlogged ids from the router (via the
            // answered log, whose entries the caller purges). The
            // bucket's admissions roll back as they drop here.
            let mut results = Vec::with_capacity(bucket.len());
            let mut unregistered = Vec::with_capacity(bucket.len());
            for (idx, pending, _admission) in bucket {
                unregistered.push(pending.id);
                results.push((idx, Err(CoreError::Storage(e.clone()))));
            }
            return (results, unregistered, Vec::new());
        }
        // audit submit rows for the whole bucket, in one transaction,
        // before any of its arrivals can produce a terminal row
        self.engine.observe_all(&events);
        let mut results = Vec::with_capacity(bucket.len());
        let mut maybe_pending = Vec::new();
        for (idx, pending, admission) in bucket {
            let qid = pending.id;
            // durably registered: bind the tenant reservation to its id
            if let (Some(reg), Some(admission)) = (&tenants, admission) {
                reg.track(admission, qid);
            }
            let outcome =
                self.engine
                    .process_arrival_mode(&mut state, pending, hook_ref(hook), mode);
            if !matches!(&outcome, Ok(a) if !a.is_pending()) {
                maybe_pending.push(qid);
            }
            results.push((idx, outcome));
        }
        // one audit transaction for every match the bucket produced
        self.engine.flush_audit(&mut state);
        let log = std::mem::take(&mut state.answered_log);
        (results, log, maybe_pending)
    }

    /// Executes migrations decided by the router (caller holds the
    /// router lock). Shard locks are taken in ascending index order —
    /// the global lock order — so concurrent drains cannot deadlock.
    /// Only *moves* entries (cheap: registry + waiter transfers);
    /// matching is deliberately left to [`Self::rematch_moved`], which
    /// runs after the router lock is released so routing never
    /// serializes behind match work or database writes. Returns the
    /// moved queries grouped by destination shard.
    fn apply_migrations(
        &self,
        _router: &mut Router,
        migrations: &[Migration],
    ) -> HashMap<usize, Vec<QueryId>> {
        let mut moves: HashMap<usize, Vec<QueryId>> = HashMap::new();
        for m in migrations {
            if m.from == m.to {
                continue;
            }
            let (lo, hi) = (m.from.min(m.to), m.from.max(m.to));
            let mut lo_guard = self.shard_lock(lo);
            let mut hi_guard = self.shard_lock(hi);
            let (src, dst) = if m.from == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            for qid in &m.qids {
                // answered/cancelled entries may linger in the
                // membership until retired; routed-but-undrained ones
                // are healed by their own drain. Skip both.
                if let Some(pending) = src.registry.remove(*qid) {
                    dst.registry.insert(pending);
                    moves.entry(m.to).or_default().push(*qid);
                }
                if let Some(waiter) = src.waiters.remove(qid) {
                    dst.waiters.insert(*qid, waiter);
                }
            }
        }
        moves
    }

    /// Re-matches queries that [`Self::apply_migrations`] moved: the
    /// merge that triggered the migration may have made them matchable
    /// against their new shard's pending set. Runs *without* the router
    /// lock; matching, applies and cascades happen under the shard lock
    /// only, exactly like a drain. Best-effort: apply failures leave
    /// the group pending, like a cascade round.
    fn rematch_moved(&self, moves: HashMap<usize, Vec<QueryId>>, hook: &Option<SharedApplyHook>) {
        let mut answered = Vec::new();
        for (shard, qids) in moves {
            let mut state = self.shard_lock(shard);
            // Index-first pruning: a moved query whose candidate index
            // and committed probe both come up empty cannot match in
            // its new shard either — skip it without a db read lock.
            // Recomputed after every fired match, so skips are exactly
            // the try_match calls that would return None.
            let mut skip = self.engine.prunable_triggers(&state);
            for qid in qids {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this loop or moved on
                }
                if skip.contains(&qid) {
                    state.stats.match_work.triggers_pruned += 1;
                    continue;
                }
                if let Ok(Some(gm)) = self.engine.try_match(&mut state, qid) {
                    let fresh: Vec<(String, Tuple)> = gm.all_answers().cloned().collect();
                    if self
                        .engine
                        .apply_and_notify(&mut state, gm, hook_ref(hook))
                        .is_ok()
                    {
                        let _ = self.engine.cascade(&mut state, fresh, hook_ref(hook));
                        skip = self.engine.prunable_triggers(&state);
                    } // on Err the group was reinstated and stays pending
                }
            }
            self.engine.flush_audit(&mut state);
            answered.append(&mut state.answered_log);
        }
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&answered, TenantOutcome::Answered);
        }
        self.retire(answered);
    }

    /// Re-checks where `qids` (just drained as pending on `shard`)
    /// should live according to the router, migrating and re-matching
    /// any that a concurrent component merge re-routed mid-flight.
    fn heal_placement(&self, shard: usize, qids: &[QueryId], hook: &Option<SharedApplyHook>) {
        let moves = {
            let mut router = self.router.lock();
            let mut by_target: HashMap<usize, Vec<QueryId>> = HashMap::new();
            for &qid in qids {
                if let Some(target) = router.shard_of_query(qid) {
                    if target != shard {
                        by_target.entry(target).or_default().push(qid);
                    }
                }
            }
            if by_target.is_empty() {
                return;
            }
            let migrations: Vec<Migration> = by_target
                .into_iter()
                .map(|(to, qids)| Migration {
                    from: shard,
                    to,
                    qids,
                })
                .collect();
            self.apply_migrations(&mut router, &migrations)
        };
        self.rematch_moved(moves, hook);
    }

    /// Retires answered queries from the router's membership sets.
    /// Must be called without holding any shard lock (lock order).
    fn retire(&self, answered: Vec<QueryId>) {
        if answered.is_empty() {
            return;
        }
        let mut router = self.router.lock();
        for qid in answered {
            router.purge(qid);
        }
    }

    /// Cancels a pending query. The cancellation is logged before the
    /// entry disappears from the registry (log-before-ack).
    pub fn cancel(&self, qid: QueryId) -> CoreResult<()> {
        let mut router = self.router.lock();
        let Some(shard) = router.shard_of_query(qid) else {
            return Err(CoreError::UnknownQuery(qid.0));
        };
        {
            let mut state = self.shard_lock(shard);
            if state.registry.get(qid).is_none() {
                drop(state);
                return Err(CoreError::UnknownQuery(qid.0));
            }
            let cancelled = CoordEvent::QueryCancelled {
                qid,
                at: self.engine.audit_now(),
            };
            self.engine
                .db
                .log_event(&cancelled)
                .map_err(CoreError::Storage)?;
            self.engine.observe(&cancelled);
            if let Some(waiter) = state.waiters.remove(&qid) {
                // a parked future must resolve, not hang forever
                waiter.resolve_terminal(CoordinationOutcome::Cancelled);
            }
            state.registry.remove(qid);
        }
        router.purge(qid);
        drop(router);
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish(qid, TenantOutcome::Cancelled);
        }
        Ok(())
    }

    /// Cancels every pending query belonging to `owner`. Returns how
    /// many were withdrawn. Log-before-ack holds per shard: each
    /// shard's cancellations group-commit before that shard's removals
    /// happen, and a shard whose log write fails is skipped entirely —
    /// so the returned count may be partial under log failure, but
    /// never includes an unlogged removal.
    pub fn cancel_owner(&self, owner: &str) -> usize {
        let at = self.engine.audit_now();
        self.sweep(
            |p| p.owner == owner,
            |qid| CoordEvent::QueryCancelled { qid, at },
            CoordinationOutcome::Cancelled,
        )
        .len()
    }

    /// Expires pending queries whose submission sequence number is
    /// older than `min_seq` — the legacy caller-driven sweep, now a
    /// seq-selection over the same per-shard lifecycle helper as
    /// [`ShardedCoordinator::expire_due`] (pairs with
    /// [`ShardedCoordinator::current_seq`]). Returns the expired ids;
    /// like [`ShardedCoordinator::cancel_owner`], a shard whose log
    /// write fails is skipped (partial result, never an unlogged
    /// removal).
    pub fn expire_before(&self, min_seq: u64) -> Vec<QueryId> {
        let at = self.engine.audit_now();
        let expired = self.sweep(
            |p| p.seq < min_seq,
            |qid| CoordEvent::QueryExpired { qid, at },
            CoordinationOutcome::Expired,
        );
        if !expired.is_empty() {
            self.maybe_auto_checkpoint();
        }
        expired
    }

    /// Expires every pending query whose deadline
    /// ([`SubmitOptions::deadline`]) is at or before `now_millis` —
    /// the clock-driven sweep a [`crate::DeadlineSweeper`] runs in the
    /// background. Per shard: the lock-free monitor hint is consulted
    /// first (a shard whose earliest deadline lies in the future is
    /// skipped without touching its lock), then the registry's
    /// deadline index selects the victims and the shared lifecycle
    /// helper logs-then-removes them under the shard lock. Returns the
    /// expired ids.
    pub fn expire_due(&self, now_millis: u64) -> Vec<QueryId> {
        let mut victims = Vec::new();
        for (index, slot) in self.shards.iter().enumerate() {
            // the hint may trail an in-flight registration by one
            // publish, but that registration's sweep-signal notify
            // happens after its guard drop, so the sweeper always
            // re-reads a fresh hint before sleeping
            if slot.monitor.min_deadline.load(Ordering::Relaxed) > now_millis {
                continue;
            }
            let mut state = self.shard_lock(index);
            let due = state.registry.due_before(now_millis);
            let at = self.engine.audit_now();
            let expired = self.engine.retire_ids(
                &mut state,
                &due,
                |qid| CoordEvent::QueryExpired { qid, at },
                &CoordinationOutcome::Expired,
            );
            state.stats.expired += expired.len() as u64;
            drop(state);
            victims.extend(expired);
        }
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&victims, TenantOutcome::Expired);
        }
        self.retire(victims.clone());
        if !victims.is_empty() {
            self.maybe_auto_checkpoint();
        }
        victims
    }

    /// The earliest deadline across all shards (the sweeper's wakeup
    /// hint). Lock-free: reads the per-shard monitor atomics.
    pub fn next_deadline(&self) -> Option<u64> {
        let min = self
            .shards
            .iter()
            .map(|s| s.monitor.min_deadline.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        (min != u64::MAX).then_some(min)
    }

    /// Removes every pending query matching `select` through the
    /// shared lifecycle helper ([`Engine::retire_ids`]): per shard,
    /// one group commit of the events, then the removals — parked
    /// waiters resolve with `outcome`, so async futures terminate
    /// instead of hanging. Returns the removed ids.
    fn sweep(
        &self,
        select: impl Fn(&Pending) -> bool,
        event: impl Fn(QueryId) -> CoordEvent,
        outcome: CoordinationOutcome,
    ) -> Vec<QueryId> {
        let mut victims = Vec::new();
        for shard in 0..self.shards.len() {
            let mut state = self.shard_lock(shard);
            let ids: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| select(p))
                .map(|p| p.id)
                .collect();
            let removed = self.engine.retire_ids(&mut state, &ids, &event, &outcome);
            if matches!(outcome, CoordinationOutcome::Expired) {
                state.stats.expired += removed.len() as u64;
            }
            drop(state);
            victims.extend(removed);
        }
        if let Some(reg) = self.tenants.lock().clone() {
            let tenant_outcome = match &outcome {
                CoordinationOutcome::Cancelled => Some(TenantOutcome::Cancelled),
                CoordinationOutcome::Expired => Some(TenantOutcome::Expired),
                _ => None,
            };
            if let Some(tenant_outcome) = tenant_outcome {
                reg.finish_all(&victims, tenant_outcome);
            }
        }
        self.retire(victims.clone());
        victims
    }

    /// Re-issues tickets for `owner`'s still-pending queries after a
    /// reconnect: waiter channels do not survive a crash (or a dropped
    /// ticket), but the pending queries themselves do. Any previous
    /// ticket for the same query stops receiving notifications.
    pub fn reattach(&self, owner: &str) -> Vec<Ticket> {
        // gate: see `reattach_gate` — without it two concurrent
        // reattaches for one owner interleave across shards and both
        // return live waiters for disjoint subsets
        let _gate = self.reattach_gate.lock();
        let mut tickets = Vec::new();
        for shard in 0..self.shards.len() {
            let mut state = self.shard_lock(shard);
            let ids: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| p.owner == owner)
                .map(|p| p.id)
                .collect();
            for qid in ids {
                let (tx, rx) = unbounded();
                if let Some(old) = state.waiters.insert(qid, Waiter::Channel(tx)) {
                    old.resolve_terminal(CoordinationOutcome::Superseded);
                }
                tickets.push(Ticket {
                    id: qid,
                    receiver: rx,
                });
            }
        }
        tickets.sort_by_key(|t| t.id.0);
        tickets
    }

    /// [`ShardedCoordinator::reattach`], async flavor: hands the
    /// reconnecting owner a live [`CoordinationFuture`] per
    /// still-pending query — including queries restored by
    /// [`ShardedCoordinator::recover`], whose pre-crash waiters died
    /// with the process. The fresh waiter is re-armed under the owning
    /// shard's lock, so a match racing in on another thread either sees
    /// it or has already retired the query. Any previous handle for the
    /// same query resolves [`CoordinationOutcome::Superseded`].
    pub fn reattach_async(&self, owner: &str) -> Vec<CoordinationFuture> {
        // gate: serialize whole-owner reattaches (first-writer-wins —
        // the loser's entire handle set resolves `Superseded`)
        let _gate = self.reattach_gate.lock();
        let mut futures = Vec::new();
        for shard in 0..self.shards.len() {
            let mut state = self.shard_lock(shard);
            let ids: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| p.owner == owner)
                .map(|p| p.id)
                .collect();
            for qid in ids {
                let shared = Arc::new(TicketShared::default());
                if let Some(old) = state
                    .waiters
                    .insert(qid, Waiter::Future(Arc::clone(&shared)))
                {
                    old.resolve_terminal(CoordinationOutcome::Superseded);
                }
                futures.push(CoordinationFuture::new(qid, shared));
            }
        }
        futures.sort_by_key(|f| f.id().0);
        futures
    }

    /// Retries matching for every pending query on every shard (useful
    /// after database updates, and the workhorse of the recovery
    /// re-match sweep). Shards hold disjoint pending sets behind
    /// separate locks, so the sweep fans out across the worker pool —
    /// one task per shard, claimed off a shared cursor — and each
    /// worker runs the index-first pruned [`Engine::retry_all`] on its
    /// shard. Results are reassembled in shard order, so notifications
    /// and error propagation are identical to the serial sweep.
    pub fn retry_all(&self) -> CoreResult<Vec<MatchNotification>> {
        let hook = self.apply_hook.lock().clone();
        let shard_count = self.shards.len();
        let worker_count = self.workers.min(shard_count).max(1);

        let mut per_shard: Vec<Option<CoreResult<Vec<MatchNotification>>>> = Vec::new();
        per_shard.resize_with(shard_count, || None);
        let mut answered: Vec<QueryId> = Vec::new();

        let cursor = AtomicU64::new(0);
        let worker = |results: &mut Vec<(usize, CoreResult<Vec<MatchNotification>>)>,
                      log: &mut Vec<QueryId>| {
            loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if shard >= shard_count {
                    break;
                }
                let mut state = self.shard_lock(shard);
                let r = self.engine.retry_all(&mut state, hook_ref(&hook));
                self.engine.flush_audit(&mut state);
                log.append(&mut state.answered_log);
                results.push((shard, r));
            }
        };
        if worker_count <= 1 {
            let mut results = Vec::new();
            worker(&mut results, &mut answered);
            for (shard, r) in results {
                per_shard[shard] = Some(r);
            }
        } else {
            let collected = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| {
                        let worker = &worker;
                        scope.spawn(move || {
                            let (mut r, mut l) = (Vec::new(), Vec::new());
                            worker(&mut r, &mut l);
                            (r, l)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("retry worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (results, mut log) in collected {
                answered.append(&mut log);
                for (shard, r) in results {
                    per_shard[shard] = Some(r);
                }
            }
        }
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&answered, TenantOutcome::Answered);
        }
        self.retire(answered);

        let mut notifications = Vec::new();
        for slot in per_shard {
            notifications.extend(slot.expect("every shard was swept")?);
        }
        Ok(notifications)
    }

    /// Total number of pending queries across shards. Lock-free: sums
    /// the per-shard monitor atomics, so monitoring never contends with
    /// draining (may trail an in-flight drain by one publish).
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.monitor.pending.load(Ordering::Relaxed))
            .sum()
    }

    /// Pending queries per shard (diagnostics / load inspection).
    /// Lock-free, like [`ShardedCoordinator::pending_count`].
    pub fn pending_per_shard(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.monitor.pending.load(Ordering::Relaxed))
            .collect()
    }

    /// Merged statistics across shards (plus global safety rejections
    /// and the log-surface gauges: WAL size, bytes and time since the
    /// last checkpoint, auto-checkpoint count — the first slice of the
    /// log-aware admin surface). Lock-free: reads the per-shard
    /// monitor atomics; counters may trail an in-flight drain by one
    /// publish.
    pub fn stats(&self) -> SystemStats {
        let mut total = SystemStats::default();
        for shard in &self.shards {
            total.merge(&shard.monitor.stats());
        }
        total.rejected_unsafe += self.rejected_unsafe.load(Ordering::Relaxed);
        total.rejected_quota += self.rejected_quota.load(Ordering::Relaxed);
        total.wal_bytes = self.engine.db.wal_len().unwrap_or(0);
        total.wal_bytes_since_checkpoint = total
            .wal_bytes
            .saturating_sub(self.wal_len_at_checkpoint.load(Ordering::Relaxed));
        total.checkpoint_age_millis = self
            .clock
            .now_millis()
            .saturating_sub(self.last_checkpoint_at.load(Ordering::Relaxed));
        total.auto_checkpoints = self.auto_checkpoints.load(Ordering::Relaxed);
        total
    }

    /// The current submission sequence number.
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Snapshot of all pending queries, sorted by id.
    pub fn pending_snapshot(&self) -> Vec<PendingInfo> {
        let mut all: Vec<PendingInfo> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.state
                    .lock()
                    .registry
                    .iter()
                    .map(|p| PendingInfo {
                        id: p.id,
                        owner: p.owner.clone(),
                        sql: p.query.sql.clone(),
                        ir: p.query.to_string(),
                        seq: p.seq,
                        deadline: p.deadline,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|p| p.id.0);
        all
    }

    /// The union of the per-shard match graphs. Co-sharding guarantees
    /// no potential-satisfaction edge ever crosses shards, so this is
    /// the complete system match graph.
    pub fn match_graph(&self) -> MatchGraph {
        let mut graph = MatchGraph::default();
        for shard in &self.shards {
            let part = match_graph_of(&shard.state.lock().registry);
            graph.edges.extend(part.edges);
            graph.dangling.extend(part.dangling);
        }
        graph
    }

    /// Reads the current content of an answer relation.
    pub fn answers(&self, relation: &str) -> Vec<Tuple> {
        self.engine.answers(relation)
    }

    /// The shard `relation` currently routes to (`None` until some
    /// query has touched it). Exposed for tests and diagnostics.
    pub fn shard_of_relation(&self, relation: &str) -> Option<usize> {
        self.router.lock().shard_of_relation(relation)
    }

    /// Rebuilds a sharded coordinator (database **and** coordination
    /// state) from a WAL:
    ///
    /// 1. storage ops replay into a fresh database (answer relations
    ///    included);
    /// 2. the coordination frames fold into the surviving pending set
    ///    (`registered − (matched ∪ cancelled ∪ expired)`);
    /// 3. each survivor's SQL is re-compiled, routed through a rebuilt
    ///    union-find router, and re-registered on its shard — with the
    ///    same `seed ^ shard_id` RNG discipline as a fresh coordinator,
    ///    so subsequent `CHOOSE` behavior is reproducible;
    /// 4. a matching sweep re-runs arrivals that were logged but whose
    ///    match had not committed before the crash (those matches are
    ///    logged now, like any other).
    ///
    /// Waiter channels do not survive; reconnecting clients obtain
    /// fresh tickets through [`ShardedCoordinator::reattach`]. The
    /// rebuilt coordinator keeps logging to the same WAL.
    ///
    /// The apply hook is `None` during the recovery sweep; use
    /// [`ShardedCoordinator::recover_with_hook`] when matches must run
    /// application side effects.
    pub fn recover(
        wal: Wal,
        config: ShardedConfig,
    ) -> CoreResult<(ShardedCoordinator, RecoveryReport)> {
        Self::recover_with(wal, config, None, Arc::new(SystemClock))
    }

    /// [`ShardedCoordinator::recover`] with an apply hook installed
    /// *before* the post-restore matching sweep runs.
    pub fn recover_with_hook(
        wal: Wal,
        config: ShardedConfig,
        hook: Option<SharedApplyHook>,
    ) -> CoreResult<(ShardedCoordinator, RecoveryReport)> {
        Self::recover_with(wal, config, hook, Arc::new(SystemClock))
    }

    /// The full-control recovery entry point: apply hook plus an
    /// injected [`Clock`]. Deadlines are rebuilt from the log into
    /// each survivor's registry entry, and — after the rematch sweep —
    /// anything already past due *by that clock* is expired
    /// immediately, so no client can reattach to a query that should
    /// be dead. The rebuilt coordinator keeps the clock.
    pub fn recover_with(
        wal: Wal,
        config: ShardedConfig,
        hook: Option<SharedApplyHook>,
        clock: Arc<dyn Clock>,
    ) -> CoreResult<(ShardedCoordinator, RecoveryReport)> {
        let (db, frames) = Database::recover_full(wal).map_err(CoreError::Storage)?;
        let replayed = replay_coordination_frames(&frames)?;
        let co = ShardedCoordinator::with_clock(db, config, clock);
        if let Some(hook) = hook {
            co.set_apply_hook(hook);
        }
        co.next_id.store(replayed.max_qid + 1, Ordering::Relaxed);
        co.seq.store(replayed.max_seq, Ordering::Relaxed);
        // the audit relations are transient (never checkpointed), so
        // they rebuild from the coordination frames — before the retry
        // sweep, whose matches are then observed live like any other
        if let Some(audit) = &co.engine.audit {
            audit.rebuild_from_frames(&frames);
        }
        let mut report = RecoveryReport {
            events_replayed: replayed.events,
            restored_pending: replayed.survivors.len(),
            ..RecoveryReport::default()
        };

        // re-compile outside any lock; a failure means the log (or the
        // compiler) changed underneath us, which recovery must surface
        let mut restored: Vec<Pending> = Vec::with_capacity(replayed.survivors.len());
        for survivor in replayed.survivors {
            let query = compile_sql(&survivor.sql)?;
            restored.push(Pending {
                id: survivor.qid,
                owner: survivor.owner,
                query: query.namespaced(survivor.qid),
                seq: survivor.seq,
                deadline: survivor.deadline,
            });
        }

        // rebuild the router in submission order, then place every
        // survivor on its final shard. Routing first and inserting
        // after means intra-rebuild component merges never migrate
        // anything (the registries are still empty), exactly like the
        // batch path's route-then-bucket discipline.
        {
            let mut router = co.router.lock();
            for p in &restored {
                let relations = p.query.answer_relations();
                let _ = router.route(p.id, &relations);
            }
            let mut by_shard: HashMap<usize, Vec<Pending>> = HashMap::new();
            for p in restored {
                let shard = router
                    .shard_of_query(p.id)
                    .expect("survivor was routed in this pass");
                by_shard.entry(shard).or_default().push(p);
            }
            for (shard, entries) in by_shard {
                let mut state = co.shard_lock(shard);
                for p in entries {
                    state.stats.submitted += 1;
                    state.registry.insert(p);
                }
            }
        }

        // re-run matching for arrivals that were logged but not yet
        // matched; any match that fires commits and logs normally
        let sweep_started = std::time::Instant::now();
        co.retry_all()?;
        report.sweep_micros = sweep_started.elapsed().as_micros() as u64;
        let swept = co.stats();
        report.rematched_groups = swept.groups_matched;
        report.triggers_pruned = swept.match_work.triggers_pruned;
        // deadlines that lapsed while the coordinator was down expire
        // now (logged like any sweep), matching the uncrashed run's
        // sweep at the same clock instant
        report.expired_at_recovery = co.expire_due(co.clock.now_millis()).len();
        Ok((co, report))
    }

    /// Compacts the WAL under a full quiesce: the storage snapshot plus
    /// one registration frame per *surviving* pending query replace the
    /// log's history, so matched, cancelled and expired registrations
    /// stop occupying log space. Holding the router lock and every
    /// shard lock (in index order) excludes every mutation path —
    /// including the log appends they perform — so the snapshot is
    /// consistent with the rewritten log.
    pub fn checkpoint(&self) -> CoreResult<()> {
        let _router = self.router.lock();
        let guards: Vec<ShardGuard<'_>> =
            (0..self.shards.len()).map(|i| self.shard_lock(i)).collect();
        let mut events: Vec<(u64, CoordEvent)> = Vec::new();
        for guard in &guards {
            for p in guard.registry.iter() {
                events.push((
                    p.seq,
                    // the deadline rides the compacted frame too — a
                    // checkpoint must never turn a bounded query into
                    // an immortal one. So does the audit submit stamp:
                    // a post-checkpoint recovery rebuilds the survivor's
                    // audit row with its original submission time.
                    CoordEvent::QueryRegistered {
                        owner: p.owner.clone(),
                        sql: p.query.sql.clone(),
                        qid: p.id,
                        seq: p.seq,
                        deadline: p.deadline,
                        stamp: co_stamp(&self.engine, p.id),
                    },
                ));
            }
        }
        events.sort_by_key(|(seq, _)| *seq);
        // the matched/cancelled history being compacted away carried
        // the allocation high-water mark; persist it explicitly so a
        // post-checkpoint recovery never re-issues a handed-out id or
        // regresses the sequence clock
        let watermark = CoordEvent::Watermark {
            qid: QueryId(self.next_id.load(Ordering::Relaxed).saturating_sub(1)),
            seq: self.seq.load(Ordering::Relaxed),
        };
        let mut payloads: Vec<Vec<u8>> = vec![watermark.encode()];
        payloads.extend(events.iter().map(|(_, e)| e.encode()));
        self.engine
            .db
            .checkpoint_with_coordination(&payloads)
            .map_err(CoreError::Storage)?;
        // reset the log-surface gauges while still quiesced
        self.wal_len_at_checkpoint
            .store(self.engine.db.wal_len().unwrap_or(0), Ordering::Relaxed);
        self.last_checkpoint_at
            .store(self.clock.now_millis(), Ordering::Relaxed);
        Ok(())
    }

    /// Triggers [`ShardedCoordinator::checkpoint`] when the bytes
    /// appended since the last checkpoint exceed the configured
    /// threshold ([`ShardedConfig::auto_checkpoint_bytes`]). Called
    /// after group commits; concurrent triggers collapse into one run.
    /// Auto-checkpoint failures are swallowed (the log keeps growing
    /// and the next trigger retries) — compaction is an optimization,
    /// never a correctness requirement.
    fn maybe_auto_checkpoint(&self) {
        if self.auto_checkpoint_bytes == 0 {
            return;
        }
        let Some(len) = self.engine.db.wal_len() else {
            return; // non-durable database: nothing to compact
        };
        let since = len.saturating_sub(self.wal_len_at_checkpoint.load(Ordering::Relaxed));
        if since <= self.auto_checkpoint_bytes {
            return;
        }
        if self
            .checkpointing
            .compare_exchange(
                false,
                true,
                std::sync::atomic::Ordering::Acquire,
                std::sync::atomic::Ordering::Relaxed,
            )
            .is_err()
        {
            return; // another thread is already checkpointing
        }
        if self.checkpoint().is_ok() {
            self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpointing
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Verifies the routing invariants at a quiescent point, returning
    /// a description of the first violation: (a) every pending query
    /// lives on the shard its relation component routes to, (b) a
    /// query's whole signature maps to a single component, and (c)
    /// every pending query is tracked in its component's membership
    /// set. Used by the invariant unit tests and the concurrency soak.
    pub fn check_routing_invariants(&self) -> Result<(), String> {
        // collect shard placements first, then consult the router —
        // the lock order forbids taking the router lock while holding
        // a shard lock
        let mut placements: Vec<(usize, QueryId, BTreeSet<String>)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let state = shard.state.lock();
            for p in state.registry.iter() {
                placements.push((si, p.id, p.query.answer_relations()));
            }
        }
        let mut router = self.router.lock();
        for (si, qid, relations) in placements {
            let mut component = None;
            for rel in &relations {
                let Some(&node) = router.rel_node.get(rel) else {
                    return Err(format!("query {qid}: relation {rel} unknown to the router"));
                };
                let root = router.find(node);
                if *component.get_or_insert(root) != root {
                    return Err(format!("query {qid}: signature spans two components"));
                }
                let routed = router.shard[root];
                if routed != si {
                    return Err(format!(
                        "query {qid} lives on shard {si} but {rel} routes to shard {routed}"
                    ));
                }
            }
            if let Some(root) = component {
                if !router.members[root].contains(&qid) {
                    return Err(format!("query {qid} missing from its component membership"));
                }
            }
        }
        Ok(())
    }
}

impl DeadlineHost for ShardedCoordinator {
    fn next_deadline_millis(&self) -> Option<u64> {
        self.next_deadline()
    }

    fn expire_due(&self, now_millis: u64) -> Vec<QueryId> {
        ShardedCoordinator::expire_due(self, now_millis)
    }

    fn sweep_signal(&self) -> Arc<SweepSignal> {
        Arc::clone(&self.sweep_signal)
    }

    fn sweep_tick(&self, now_millis: u64) {
        // refresh the lock-free monitor mirrors so admin gauge reads
        // stay live on an idle system (no drain has released a shard
        // lock to republish them). try_lock only: a busy shard's own
        // guard drop publishes fresher numbers anyway, and the sweeper
        // must never stall behind a drain.
        for slot in &self.shards {
            if let Some(state) = slot.state.try_lock() {
                slot.monitor.publish(&state);
            }
        }
        // time/size checkpoint policy: evaluated here (not only after
        // group commits) so a quiet coordinator still compacts its WAL
        // on schedule
        let policy = self.checkpoint_policy;
        if policy == CheckpointPolicy::default() {
            return;
        }
        let Some(len) = self.engine.db.wal_len() else {
            return; // non-durable database: nothing to compact
        };
        let since = len.saturating_sub(self.wal_len_at_checkpoint.load(Ordering::Relaxed));
        let age = now_millis.saturating_sub(self.last_checkpoint_at.load(Ordering::Relaxed));
        if !policy.due(since, age) {
            return;
        }
        if self
            .checkpointing
            .compare_exchange(
                false,
                true,
                std::sync::atomic::Ordering::Acquire,
                std::sync::atomic::Ordering::Relaxed,
            )
            .is_err()
        {
            return; // another thread is already checkpointing
        }
        if self.checkpoint().is_ok() {
            self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpointing
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// Borrows the shared hook as the engine's `&dyn Fn`.
type HookDyn<'a> = &'a dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>;

fn hook_ref(hook: &Option<SharedApplyHook>) -> Option<HookDyn<'_>> {
    hook.as_ref()
        .map(|h| h.as_ref() as &dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>)
}

/// The audit submit stamp a checkpoint re-emits for a surviving
/// registration (`None` when auditing is off, or when the sink never
/// saw the registration — e.g. it was logged before auditing was
/// enabled).
fn co_stamp(engine: &Engine, qid: QueryId) -> Option<RegStamp> {
    engine.audit.as_ref().and_then(|a| a.reg_stamp_of(qid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_exec::run_sql;

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
             (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn pair_sql_on(rel: &str, me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER {rel} \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER {rel} CHOOSE 1"
        )
    }

    #[test]
    fn pair_coordination_end_to_end() {
        let co = ShardedCoordinator::new(flights_db());
        let a = co
            .submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        let Submission::Pending(ticket) = a else {
            panic!("kramer must wait")
        };
        let b = co
            .submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(b, Submission::Answered(_)));
        ticket.receiver.try_recv().expect("kramer notified");
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.stats().groups_matched, 1);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn distinct_relations_land_on_distinct_shards() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        for k in 0..4 {
            let rel = format!("Res{k}");
            co.submit_sql("a", &pair_sql_on(&rel, "A", "Ghost"))
                .unwrap();
        }
        let shards: BTreeSet<usize> = (0..4)
            .map(|k| co.shard_of_relation(&format!("Res{k}")).unwrap())
            .collect();
        assert_eq!(shards.len(), 4, "round-robin spreads fresh components");
        assert_eq!(co.pending_per_shard(), vec![1, 1, 1, 1]);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn batch_matches_pairs_and_reports_in_order() {
        let co = ShardedCoordinator::new(flights_db());
        let requests: Vec<(String, String)> = (0..8)
            .map(|k| {
                let rel = format!("Res{}", k % 4);
                let (me, friend) = if k < 4 {
                    (format!("L{k}"), format!("R{k}"))
                } else {
                    (format!("R{}", k - 4), format!("L{}", k - 4))
                };
                (me.clone(), pair_sql_on(&rel, &me, &friend))
            })
            .collect();
        let outcomes = co.submit_batch_sql(&requests);
        assert_eq!(outcomes.len(), 8);
        for outcome in &outcomes[..4] {
            assert!(
                matches!(outcome, Ok(Submission::Pending(_))),
                "first halves wait"
            );
        }
        for outcome in &outcomes[4..] {
            assert!(
                matches!(outcome, Ok(Submission::Answered(_))),
                "second halves close"
            );
        }
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.stats().groups_matched, 4);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn bridging_query_merges_components_and_migrates() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        co.submit_sql("a", &pair_sql_on("RelA", "A", "GhostA"))
            .unwrap();
        co.submit_sql("b", &pair_sql_on("RelB", "B", "GhostB"))
            .unwrap();
        let sa = co.shard_of_relation("RelA").unwrap();
        let sb = co.shard_of_relation("RelB").unwrap();
        assert_ne!(sa, sb, "fresh components start on different shards");

        // a query spanning both relations forces the components together
        let bridge = "SELECT 'C', fno INTO ANSWER RelA, 'C', fno INTO ANSWER RelB \
                      WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                      AND ('GhostC', fno) IN ANSWER RelA CHOOSE 1";
        co.submit_sql("c", bridge).unwrap();
        assert_eq!(
            co.shard_of_relation("RelA").unwrap(),
            co.shard_of_relation("RelB").unwrap(),
            "merged components co-shard"
        );
        co.check_routing_invariants().unwrap();
        assert_eq!(co.pending_count(), 3);
    }

    #[test]
    fn migration_rematches_newly_coordinable_queries() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // two halves of a pair on relations that start out separate:
        // X's constraint lives on RelP, its head on RelQ and vice versa,
        // so neither can match until the components merge... which their
        // own signatures already force. Use disjoint relations instead:
        // a pending pair split across components cannot exist by
        // construction (signatures overlap ⇒ same component), so the
        // rematch path is exercised through a bridge that *completes* a
        // match: X waits on RelA; the bridge has heads on RelA and RelB
        // and waits on X's head relation.
        let x = "SELECT 'X', fno INTO ANSWER RelA \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('Y', fno) IN ANSWER RelB CHOOSE 1";
        let sub_x = co.submit_sql("x", x).unwrap();
        let Submission::Pending(ticket_x) = sub_x else {
            panic!("x waits")
        };
        // RelA and RelB are already one component (X touches both), so
        // add an unrelated pending on RelC to create a second component
        co.submit_sql("noise", &pair_sql_on("RelC", "N", "GhostN"))
            .unwrap();
        // Y bridges: head on RelB (satisfies X) + constraint on RelA
        // (satisfied by X) + also touches RelC, merging all components
        let y = "SELECT 'Y', fno INTO ANSWER RelB, 'Y', fno INTO ANSWER RelC \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('X', fno) IN ANSWER RelA CHOOSE 1";
        let sub_y = co.submit_sql("y", y).unwrap();
        assert!(
            matches!(sub_y, Submission::Answered(_)),
            "merge makes the pair matchable"
        );
        ticket_x
            .receiver
            .try_recv()
            .expect("x notified after merge");
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn const_index_stays_consistent_across_submit_retract_rebalance() {
        use crate::ir::{Atom, Term};

        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // submit: X waits on RelA with a constant-name head
        let sub = co
            .submit_sql("x", &pair_sql_on("RelA", "X", "GhostX"))
            .unwrap();
        let xid = sub.id();
        co.submit_sql("m", &pair_sql_on("RelM", "M", "GhostM"))
            .unwrap();
        let shard_a = co.shard_of_relation("RelA").unwrap();
        let shard_m = co.shard_of_relation("RelM").unwrap();
        assert_ne!(shard_a, shard_m);

        // the constant-position index on X's shard finds X's head for a
        // constraint naming X, and nothing for a stranger
        let probe_x = Atom::new("RelA", vec![Term::constant("X"), Term::var("f")]);
        let probe_stranger = Atom::new("RelA", vec![Term::constant("Z"), Term::var("f")]);
        {
            let state = co.shards[shard_a].state.lock();
            assert_eq!(state.registry.candidates_for(&probe_x).len(), 1);
            assert!(state.registry.candidates_for(&probe_stranger).is_empty());
        }

        // rebalance: a bridge spanning RelA and RelM merges the
        // components (union-find merge path) and migrates one side
        let bridge = "SELECT 'B', fno INTO ANSWER RelA, 'B', fno INTO ANSWER RelM \
                      WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                      AND ('GhostB', fno) IN ANSWER RelA CHOOSE 1";
        co.submit_sql("b", bridge).unwrap();
        let merged = co.shard_of_relation("RelA").unwrap();
        assert_eq!(merged, co.shard_of_relation("RelM").unwrap());
        co.check_routing_invariants().unwrap();

        // after the rebalance the index travelled with the entries:
        // the merged shard finds X's head, every other shard finds none
        for (i, shard) in co.shards.iter().enumerate() {
            let state = shard.state.lock();
            let found = state.registry.candidates_for(&probe_x).len();
            if i == merged {
                assert_eq!(
                    found, 1,
                    "migrated head must be indexed on the merged shard"
                );
            } else {
                assert_eq!(found, 0, "no stale index entries on shard {i}");
            }
        }

        // retract: cancelling X must drop it from the index on the
        // merged shard too
        co.cancel(xid).unwrap();
        {
            let state = co.shards[merged].state.lock();
            assert!(state.registry.candidates_for(&probe_x).is_empty());
        }
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn repeated_merges_keep_membership_exact() {
        // chain merges: RelC0..RelC3 born separately, then bridges fold
        // them left to right; membership and routing stay consistent
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        for k in 0..4 {
            co.submit_sql(
                "w",
                &pair_sql_on(&format!("RelC{k}"), &format!("W{k}"), "Ghost"),
            )
            .unwrap();
        }
        for k in 0..3 {
            let bridge = format!(
                "SELECT 'B{k}', fno INTO ANSWER RelC{k}, 'B{k}', fno INTO ANSWER RelC{next} \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('GhostB{k}', fno) IN ANSWER RelC{k} CHOOSE 1",
                next = k + 1
            );
            co.submit_sql("b", &bridge).unwrap();
            co.check_routing_invariants().unwrap();
        }
        let home = co.shard_of_relation("RelC0").unwrap();
        for k in 1..4 {
            assert_eq!(co.shard_of_relation(&format!("RelC{k}")).unwrap(), home);
        }
        // all 7 pending queries live together now
        assert_eq!(co.pending_per_shard()[home], 7);
        assert_eq!(co.pending_count(), 7);
    }

    #[test]
    fn unsafe_queries_are_rejected_and_counted() {
        let co = ShardedCoordinator::new(flights_db());
        let err = co
            .submit_sql("x", "SELECT 'X', v INTO ANSWER R CHOOSE 1")
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsafe(_)));
        assert_eq!(co.stats().rejected_unsafe, 1);
        assert_eq!(co.pending_count(), 0);
    }

    #[test]
    fn cancel_and_cancel_owner() {
        let co = ShardedCoordinator::new(flights_db());
        let s = co
            .submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("kramer", &pair_sql_on("Res2", "Kramer", "Jerry2"))
            .unwrap();
        co.submit_sql("elaine", &pair_sql_on("Res3", "Elaine", "Ghost"))
            .unwrap();
        co.cancel(s.id()).unwrap();
        assert!(matches!(co.cancel(s.id()), Err(CoreError::UnknownQuery(_))));
        assert_eq!(co.cancel_owner("kramer"), 1);
        assert_eq!(co.pending_count(), 1);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn retry_all_matches_after_data_arrives() {
        let db = Database::new();
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        )
        .unwrap();
        let co = ShardedCoordinator::new(db.clone());
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert!(co.retry_all().unwrap().is_empty());
        run_sql(&db, "INSERT INTO Flights VALUES (122, 'Paris')").unwrap();
        assert_eq!(co.retry_all().unwrap().len(), 2);
        assert_eq!(co.pending_count(), 0);
        co.check_routing_invariants().unwrap();
    }

    fn flights_db_wal() -> Database {
        let db = Database::with_wal(Wal::in_memory());
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
             (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    #[test]
    fn recover_restores_shards_router_and_completes_pairs() {
        let db = flights_db_wal();
        let co = ShardedCoordinator::new(db.clone());
        // first halves on 4 distinct relations + one matched pair
        for k in 0..4 {
            co.submit_sql(
                &format!("l{k}"),
                &pair_sql_on(&format!("Res{k}"), &format!("L{k}"), &format!("R{k}")),
            )
            .unwrap();
        }
        co.submit_sql("m1", &pair_sql_on("Done", "M1", "M2"))
            .unwrap();
        co.submit_sql("m2", &pair_sql_on("Done", "M2", "M1"))
            .unwrap();
        let bytes = db.wal_bytes().unwrap();
        drop(co); // kill

        let (co2, report) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(report.restored_pending, 4, "the matched pair is gone");
        assert_eq!(co2.pending_count(), 4);
        co2.check_routing_invariants().unwrap();
        assert_eq!(co2.answers("Done").len(), 2, "pre-crash answers replayed");

        // reattach before the partners arrive, then close every pair
        let tickets: Vec<Ticket> = (0..4)
            .flat_map(|k| co2.reattach(&format!("l{k}")))
            .collect();
        assert_eq!(tickets.len(), 4);
        for k in 0..4 {
            let s = co2
                .submit_sql(
                    &format!("r{k}"),
                    &pair_sql_on(&format!("Res{k}"), &format!("R{k}"), &format!("L{k}")),
                )
                .unwrap();
            assert!(matches!(s, Submission::Answered(_)), "pair {k} closes");
        }
        for t in tickets {
            t.receiver.try_recv().expect("reattached waiter notified");
        }
        assert_eq!(co2.pending_count(), 0);
        co2.check_routing_invariants().unwrap();
    }

    #[test]
    fn recover_rematches_logged_but_unmatched_arrivals() {
        // a log holding two matchable registrations whose match never
        // committed (crash between the registration group-commit and
        // the match apply): the recovery sweep completes it
        let db = flights_db_wal();
        for (qid, me, friend, seq) in [(1, "X", "Y", 1), (2, "Y", "X", 2)] {
            db.append_coordination(
                &CoordEvent::QueryRegistered {
                    owner: me.to_lowercase(),
                    sql: pair_sql_on("Res", me, friend),
                    qid: QueryId(qid),
                    seq,
                    deadline: None,
                    stamp: None,
                }
                .encode(),
            )
            .unwrap();
        }
        let bytes = db.wal_bytes().unwrap();
        drop(db);

        let (co, report) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(report.restored_pending, 2);
        assert_eq!(report.rematched_groups, 1);
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.answers("Res").len(), 2);
        co.check_routing_invariants().unwrap();
        // the recovery-sweep match was itself logged: recovering again
        // finds nothing pending and the same answers
        let bytes = co.db().wal_bytes().unwrap();
        drop(co);
        let (co2, report2) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(report2.restored_pending, 0);
        assert_eq!(co2.answers("Res").len(), 2);
    }

    #[test]
    fn expire_before_sweeps_old_requests_across_shards() {
        let co = ShardedCoordinator::new(flights_db());
        co.submit_sql("a", &pair_sql_on("Res0", "A", "GhostA"))
            .unwrap();
        co.submit_sql("b", &pair_sql_on("Res1", "B", "GhostB"))
            .unwrap();
        let cutoff = co.current_seq();
        co.submit_sql("c", &pair_sql_on("Res2", "C", "GhostC"))
            .unwrap();
        let expired = co.expire_before(cutoff);
        assert_eq!(expired.len(), 1);
        assert_eq!(co.pending_count(), 2);
        assert_eq!(co.expire_before(u64::MAX).len(), 2);
        assert_eq!(co.pending_count(), 0);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn expirations_and_cancels_survive_recovery() {
        let db = flights_db_wal();
        let co = ShardedCoordinator::new(db.clone());
        co.submit_sql("a", &pair_sql_on("Res0", "A", "GhostA"))
            .unwrap();
        let b = co
            .submit_sql("b", &pair_sql_on("Res1", "B", "GhostB"))
            .unwrap();
        co.submit_sql("c", &pair_sql_on("Res2", "C", "GhostC"))
            .unwrap();
        co.cancel(b.id()).unwrap();
        let expired = co.expire_before(2); // sweeps only "a" (seq 1)
        assert_eq!(expired.len(), 1);
        let bytes = db.wal_bytes().unwrap();
        drop(co);
        let (co2, _) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        let snap = co2.pending_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].owner, "c");
    }

    #[test]
    fn checkpoint_compacts_the_coordination_log() {
        let db = flights_db_wal();
        let co = ShardedCoordinator::new(db.clone());
        // churn: 20 matched pairs plus 3 survivors
        for p in 0..20 {
            co.submit_sql("l", &pair_sql_on("Res", &format!("L{p}"), &format!("R{p}")))
                .unwrap();
            co.submit_sql("r", &pair_sql_on("Res", &format!("R{p}"), &format!("L{p}")))
                .unwrap();
        }
        for k in 0..3 {
            co.submit_sql(
                &format!("s{k}"),
                &pair_sql_on(&format!("Surv{k}"), &format!("S{k}"), "Ghost"),
            )
            .unwrap();
        }
        let before = db.wal_bytes().unwrap().len();
        co.checkpoint().unwrap();
        let after = db.wal_bytes().unwrap().len();
        assert!(
            after < before / 2,
            "checkpoint must shrink the log: {before} -> {after}"
        );
        // recovery from the compacted log reproduces the state
        let bytes = db.wal_bytes().unwrap();
        drop(co);
        let (co2, report) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(report.restored_pending, 3);
        assert_eq!(co2.pending_count(), 3);
        assert_eq!(co2.answers("Res").len(), 40);
        co2.check_routing_invariants().unwrap();
    }

    #[test]
    fn checkpoint_preserves_the_id_and_seq_watermark() {
        // the survivor is submitted FIRST, so the matched pair holds
        // the highest qids/seqs — which the checkpoint compacts away.
        // Recovery must still resume allocation above them.
        let db = flights_db_wal();
        let co = ShardedCoordinator::new(db.clone());
        let survivor = co
            .submit_sql("s", &pair_sql_on("Surv", "S", "Ghost"))
            .unwrap();
        co.submit_sql("m1", &pair_sql_on("Done", "M1", "M2"))
            .unwrap();
        co.submit_sql("m2", &pair_sql_on("Done", "M2", "M1"))
            .unwrap(); // matches: qids 2,3 retired
        let seq_before = co.current_seq();
        co.checkpoint().unwrap();
        let bytes = db.wal_bytes().unwrap();
        drop(co);

        let (co2, _) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(
            co2.current_seq(),
            seq_before,
            "sequence clock must not regress past handed-out values"
        );
        let next = co2
            .submit_sql("n", &pair_sql_on("New", "N", "Ghost"))
            .unwrap();
        assert!(
            next.id().0 > 3,
            "fresh ids must not collide with pre-crash ids (got {})",
            next.id().0
        );
        // the pre-crash client's handle still refers to its own query
        co2.cancel(survivor.id()).unwrap();
        assert_eq!(co2.pending_count(), 1);
    }

    #[test]
    fn lock_free_monitors_track_state() {
        let co = ShardedCoordinator::new(flights_db());
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        assert_eq!(co.pending_count(), 1);
        assert_eq!(co.pending_per_shard().iter().sum::<usize>(), 1);
        assert_eq!(co.stats().submitted, 1);
        co.submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert_eq!(co.pending_count(), 0);
        let stats = co.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.answered, 2);
        assert_eq!(stats.groups_matched, 1);
        assert!(stats.matching_nanos > 0);
    }

    #[test]
    fn async_batch_resolves_futures_across_shards() {
        use crate::future::WaiterSet;

        let co = ShardedCoordinator::new(flights_db());
        // 4 pairs over 4 relations: first halves pend, second halves
        // close each group during the same batch drain
        let requests: Vec<(String, String)> = (0..8)
            .map(|k| {
                let rel = format!("Res{}", k % 4);
                let (me, friend) = if k < 4 {
                    (format!("L{k}"), format!("R{k}"))
                } else {
                    (format!("R{}", k - 4), format!("L{}", k - 4))
                };
                (me.clone(), pair_sql_on(&rel, &me, &friend))
            })
            .collect();
        let mut set = WaiterSet::new();
        for outcome in co.submit_batch_sql_async(&requests) {
            set.insert(outcome.expect("batch queries are safe"));
        }
        assert_eq!(set.len(), 8);
        let completed = set.drain_timeout(std::time::Duration::from_secs(5));
        assert_eq!(completed.len(), 8, "every future resolves");
        assert!(set.is_empty());
        assert!(completed
            .iter()
            .all(|(_, o)| matches!(o, crate::future::CoordinationOutcome::Answered(_))));
        assert_eq!(co.pending_count(), 0);
        co.check_routing_invariants().unwrap();
    }

    /// Regression (async-submission PR, satellite 1): sharded `cancel`
    /// and `expire_before` must wake parked future waiters with their
    /// terminal outcomes.
    #[test]
    fn sharded_cancel_and_expire_wake_parked_futures() {
        use crate::future::CoordinationOutcome;

        let co = ShardedCoordinator::new(flights_db());
        let mut a = co
            .submit_sql_async("a", &pair_sql_on("Res0", "A", "GhostA"))
            .unwrap();
        let mut b = co
            .submit_sql_async("b", &pair_sql_on("Res1", "B", "GhostB"))
            .unwrap();
        let mut c = co
            .submit_sql_async("c", &pair_sql_on("Res2", "C", "GhostC"))
            .unwrap();
        co.cancel(a.id()).unwrap();
        assert_eq!(
            a.wait_timeout(std::time::Duration::from_secs(5)),
            Some(CoordinationOutcome::Cancelled)
        );
        assert_eq!(co.cancel_owner("b"), 1);
        assert_eq!(b.try_take(), Some(CoordinationOutcome::Cancelled));
        assert_eq!(co.expire_before(u64::MAX).len(), 1);
        assert_eq!(c.try_take(), Some(CoordinationOutcome::Expired));
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn migrated_future_still_resolves_after_component_merge() {
        use crate::future::CoordinationOutcome;

        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // X waits on RelA/RelB; Y's bridge merges in RelC and completes
        // the pair — X's future must survive the waiter migration
        let x = "SELECT 'X', fno INTO ANSWER RelA \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('Y', fno) IN ANSWER RelB CHOOSE 1";
        let mut fx = co.submit_sql_async("x", x).unwrap();
        co.submit_sql("noise", &pair_sql_on("RelC", "N", "GhostN"))
            .unwrap();
        let y = "SELECT 'Y', fno INTO ANSWER RelB, 'Y', fno INTO ANSWER RelC \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('X', fno) IN ANSWER RelA CHOOSE 1";
        let sub_y = co.submit_sql("y", y).unwrap();
        assert!(matches!(sub_y, Submission::Answered(_)));
        assert!(matches!(
            fx.wait_timeout(std::time::Duration::from_secs(5)),
            Some(CoordinationOutcome::Answered(_))
        ));
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn recover_then_reattach_async_resumes_futures() {
        let db = flights_db_wal();
        let co = ShardedCoordinator::new(db.clone());
        let f0 = co
            .submit_sql_async("kramer", &pair_sql_on("Res0", "Kramer", "Jerry"))
            .unwrap();
        let f1 = co
            .submit_sql_async("kramer", &pair_sql_on("Res1", "Kramer", "Elaine"))
            .unwrap();
        let bytes = db.wal_bytes().unwrap();
        drop((f0, f1)); // the front-end dies with its futures
        drop(co);

        let (co2, report) =
            ShardedCoordinator::recover(Wal::from_bytes(bytes), ShardedConfig::default()).unwrap();
        assert_eq!(report.restored_pending, 2);
        let mut futures = co2.reattach_async("kramer");
        assert_eq!(futures.len(), 2);
        co2.submit_sql("jerry", &pair_sql_on("Res0", "Jerry", "Kramer"))
            .unwrap();
        co2.submit_sql("elaine", &pair_sql_on("Res1", "Elaine", "Kramer"))
            .unwrap();
        for f in &mut futures {
            let outcome = f
                .wait_timeout(std::time::Duration::from_secs(5))
                .expect("reattached future resolves");
            assert!(outcome.answered().is_some());
        }
        assert_eq!(co2.pending_count(), 0);
    }

    #[test]
    fn apply_hook_runs_in_the_match_transaction() {
        let db = flights_db();
        run_sql(&db, "CREATE TABLE Log (qid INT)").unwrap();
        let co = ShardedCoordinator::new(db.clone());
        co.set_apply_hook(Arc::new(|txn, m| {
            for &qid in &m.members {
                txn.insert(
                    "Log",
                    Tuple::new(vec![youtopia_storage::Value::Int(qid.0 as i64)]),
                )?;
            }
            Ok(())
        }));
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert_eq!(db.read().table("Log").unwrap().len(), 2);
    }

    #[test]
    fn checkpoint_policy_due_semantics() {
        let off = CheckpointPolicy::default();
        assert!(!off.due(u64::MAX, u64::MAX), "default policy never fires");

        let by_size = CheckpointPolicy {
            max_wal_bytes: 100,
            max_age_millis: 0,
        };
        assert!(!by_size.due(99, u64::MAX), "age leg disabled at 0");
        assert!(by_size.due(100, 0));

        let by_age = CheckpointPolicy {
            max_wal_bytes: 0,
            max_age_millis: 50,
        };
        assert!(!by_age.due(u64::MAX, 49), "size leg disabled at 0");
        assert!(by_age.due(0, 50));
    }

    /// The age leg of [`CheckpointPolicy`] fires from the sweeper tick
    /// alone — no group commit involved — so a quiet coordinator still
    /// compacts its WAL on schedule.
    #[test]
    fn sweep_tick_checkpoints_by_age() {
        use crate::lifecycle::MockClock;

        let db = flights_db_wal();
        let clock = Arc::new(MockClock::new(1_000));
        let config = ShardedConfig {
            checkpoint: CheckpointPolicy {
                max_wal_bytes: 0,
                max_age_millis: 5_000,
            },
            ..Default::default()
        };
        let co = ShardedCoordinator::with_clock(db.clone(), config, clock.clone());
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();

        // young enough: the tick is a no-op
        co.sweep_tick(clock.now_millis());
        let stats = co.stats();
        assert_eq!(stats.auto_checkpoints, 0);
        assert!(stats.wal_bytes_since_checkpoint > 0, "submit hit the log");

        // past the age bound: the tick checkpoints and resets gauges
        clock.advance(5_000);
        co.sweep_tick(clock.now_millis());
        let stats = co.stats();
        assert_eq!(stats.auto_checkpoints, 1);
        assert_eq!(stats.wal_bytes_since_checkpoint, 0);
        assert_eq!(stats.checkpoint_age_millis, 0);

        // the compacted log still carries the surviving registration
        let (co2, report) = ShardedCoordinator::recover(
            Wal::from_bytes(db.wal_bytes().unwrap()),
            ShardedConfig::default(),
        )
        .unwrap();
        assert_eq!(report.restored_pending, 1);
        assert_eq!(co2.pending_count(), 1);

        // another tick inside the fresh window does nothing
        co.sweep_tick(clock.now_millis());
        assert_eq!(co.stats().auto_checkpoints, 1);
    }

    /// An idle coordinator's lock-free gauge mirrors can go stale (no
    /// drain releases a shard lock to republish them); the sweeper tick
    /// must refresh every shard's monitor from its true registry.
    #[test]
    fn sweep_tick_republishes_stale_monitor_gauges() {
        let co = ShardedCoordinator::new(flights_db());
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        assert_eq!(co.pending_count(), 1);

        // simulate a stale mirror: clobber every shard's published
        // gauges (the test module sees the private atomics)
        for slot in &co.shards {
            slot.monitor.pending.store(99, Ordering::Relaxed);
            slot.monitor.min_deadline.store(0, Ordering::Relaxed);
        }
        assert_ne!(co.pending_count(), 1, "reads serve the stale mirror");

        co.sweep_tick(0);
        assert_eq!(co.pending_count(), 1, "tick republished the registry");
        assert_eq!(co.pending_per_shard().iter().sum::<usize>(), 1);
        let min = co
            .shards
            .iter()
            .map(|s| s.monitor.min_deadline.load(Ordering::Relaxed))
            .min()
            .unwrap();
        assert_eq!(min, u64::MAX, "no deadline set: sentinel restored");
    }
}
