//! The sharded, batch-draining coordinator.
//!
//! # Why sharding is sound
//!
//! Entangled queries interact **only** through answer relations: a
//! member of a coordination group satisfies another member's
//! postcondition with one of its heads, so every edge of every possible
//! coordination group connects two queries whose answer-relation
//! signatures ([`EntangledQuery::answer_relations`]) overlap. Queries
//! whose signatures are *not* connected (directly or transitively) can
//! never appear in one group, never provide each other's committed
//! answers, and never trigger each other's cascades — the same
//! independence between non-overlapping components that makes
//! decomposition tractable in probabilistic-database conditioning. The
//! pending registry can therefore be partitioned by connected component
//! of the relation-overlap graph and matched concurrently, with no
//! cross-shard matching pass at all.
//!
//! # Routing rule
//!
//! A union-find over answer-relation names maintains those connected
//! components incrementally. Each arriving query unions all relations
//! in its signature; the resulting root carries a shard assignment
//! (round-robin at component birth). When a query's signature spans
//! components previously assigned *different* shards, the components
//! merge and the smaller side's pending queries are **rebalanced**
//! (migrated) into the surviving shard, then re-matched there — an
//! overlap means those queries can now coordinate, so they must be
//! co-sharded from that point on. Many components can share one shard
//! (assignment is surjective, not bijective); correctness only requires
//! that one component never spans two shards.
//!
//! # Locking protocol
//!
//! Lock order is strictly `router → shard(i) → shard(j>i) → database`:
//!
//! * the **router lock** serializes routing decisions and migrations;
//!   migrations take the two affected shard locks in ascending index
//!   order while the router lock is held, so a migration's view of
//!   "who lives where" is never stale;
//! * each **shard lock** guards that shard's state (registry, RNG,
//!   waiters, counters) while its bucket drains; a thread holding a
//!   shard lock never takes the router lock — answered queries are
//!   logged under the shard lock and retired from the router *after*
//!   it is released;
//! * the **database lock** (inside [`Database`]) is the leaf: matching
//!   takes the shared read lock, applies take the exclusive write
//!   lock, and no coordinator lock is ever requested while holding it.
//!
//! A query routed by one thread is not yet visible in its shard's
//! registry until that thread drains it; a concurrent migration can
//! therefore decide placement without seeing it. Drains heal this
//! *stale placement* after releasing the shard lock: still-pending
//! queries are re-checked against the router and moved (and
//! re-matched) if a merge re-routed their component mid-flight.
//!
//! # Batch draining
//!
//! [`ShardedCoordinator::submit_batch_sql`] compiles and safety-checks
//! the whole batch outside any lock, routes it in one router pass
//! (bucketing after all unions, so intra-batch merges cannot strand an
//! earlier entry), then drains each shard's bucket on a small worker
//! pool — one scoped thread per busy shard, capped by
//! [`ShardedConfig::workers`]. Within one shard the bucket is processed
//! arrival-by-arrival — insert, match, cascade — which keeps per-shard
//! semantics *identical* to the serial coordinator under a fixed seed
//! with randomization disabled (property-tested in
//! `tests/prop_shard_equivalence.rs`). Each shard's RNG is seeded with
//! `seed ^ shard_id` so `CHOOSE` stays reproducible independent of
//! drain interleaving, and each matched group still commits through one
//! atomic storage transaction.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use youtopia_storage::{Database, StorageResult, Transaction, Tuple};

use crate::compile::compile_sql;
use crate::coordinator::{
    CoordinatorConfig, MatchGraph, MatchNotification, PendingInfo, Submission, SystemStats,
};
use crate::engine::{match_graph_of, Engine, ShardState};
use crate::error::{CoreError, CoreResult};
use crate::ir::{EntangledQuery, QueryId};
use crate::matcher::GroupMatch;
use crate::registry::Pending;
use crate::safety::check_safety;

/// Apply hook shared by every shard (applies can run concurrently on
/// different shards, hence `Sync` on top of the serial hook's bounds).
pub type SharedApplyHook =
    Arc<dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()> + Send + Sync + 'static>;

/// Construction options for [`ShardedCoordinator`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards (independent matching domains). More shards
    /// shrink each cascade/sweep scan and raise drain parallelism.
    pub shards: usize,
    /// Worker threads used to drain a batch (`0` = one per available
    /// CPU). Capped by the number of busy shards per batch.
    pub workers: usize,
    /// Per-shard coordinator behavior; `base.seed` is xored with the
    /// shard id to seed each shard's RNG.
    pub base: CoordinatorConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            workers: 0,
            base: CoordinatorConfig::default(),
        }
    }
}

/// Per-request outcome of a batch submission.
pub type BatchOutcome = CoreResult<Submission>;

/// One shard's drain bucket: `(input index, prepared pending query)`.
type Bucket = Vec<(usize, Pending)>;

// ------------------------------------------------------------------ //
// Router: union-find over answer-relation signatures
// ------------------------------------------------------------------ //

/// A pending-query migration decided while merging two relation
/// components.
#[derive(Debug)]
struct Migration {
    from: usize,
    to: usize,
    qids: Vec<QueryId>,
}

/// Union-find over relation names with per-component shard assignment
/// and live-membership tracking (the membership sets are what a merge
/// migrates).
struct Router {
    /// Union-find parent per node (a node is one relation name).
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Shard assignment; meaningful at root nodes.
    shard: Vec<usize>,
    /// Live queries of the component (pending *or* routed-but-not-yet-
    /// drained); meaningful at roots.
    members: Vec<HashSet<QueryId>>,
    /// Lowercased relation name → node.
    rel_node: HashMap<String, usize>,
    /// Routed query → any node of its signature.
    qid_node: HashMap<QueryId, usize>,
    /// Round-robin cursor for newborn components.
    next_rr: usize,
    num_shards: usize,
}

impl Router {
    fn new(num_shards: usize) -> Router {
        Router {
            parent: Vec::new(),
            rank: Vec::new(),
            shard: Vec::new(),
            members: Vec::new(),
            rel_node: HashMap::new(),
            qid_node: HashMap::new(),
            next_rr: 0,
            num_shards,
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// The node of `relation`, created (with a fresh round-robin shard)
    /// on first sight.
    fn node_for(&mut self, relation: &str) -> usize {
        if let Some(&n) = self.rel_node.get(relation) {
            return n;
        }
        let n = self.parent.len();
        self.parent.push(n);
        self.rank.push(0);
        self.shard.push(self.next_rr);
        self.next_rr = (self.next_rr + 1) % self.num_shards;
        self.members.push(HashSet::new());
        self.rel_node.insert(relation.to_string(), n);
        n
    }

    /// Routes a query over its (lowercased) answer-relation signature:
    /// unions the signature into one component, decides the surviving
    /// shard, and reports which already-routed queries must migrate
    /// because their component just changed shards.
    fn route(&mut self, qid: QueryId, relations: &BTreeSet<String>) -> (usize, Vec<Migration>) {
        let Some(first) = relations.iter().next() else {
            // no answer relations at all: the query coordinates with
            // nobody; spread it round-robin
            let s = self.next_rr;
            self.next_rr = (self.next_rr + 1) % self.num_shards;
            return (s, Vec::new());
        };
        let nodes: Vec<usize> = relations.iter().map(|r| self.node_for(r)).collect();
        let mut roots: Vec<usize> = nodes.iter().map(|&n| self.find(n)).collect();
        roots.sort_unstable();
        roots.dedup();

        // the surviving shard: the component with the most live queries
        // keeps its shard (cheapest migration); ties break toward the
        // lowest shard index for determinism
        let winner_shard = roots
            .iter()
            .map(|&r| (std::cmp::Reverse(self.members[r].len()), self.shard[r]))
            .min()
            .map(|(_, s)| s)
            .expect("at least one root");

        let mut migrations = Vec::new();
        let mut merged_members = HashSet::new();
        for &r in &roots {
            if self.shard[r] != winner_shard && !self.members[r].is_empty() {
                migrations.push(Migration {
                    from: self.shard[r],
                    to: winner_shard,
                    qids: self.members[r].iter().copied().collect(),
                });
            }
            merged_members.extend(std::mem::take(&mut self.members[r]));
        }

        // union all roots; install the merged membership and the
        // surviving shard at the final root
        let mut root = roots[0];
        for &r in &roots[1..] {
            root = self.union(root, r);
        }
        self.shard[root] = winner_shard;
        merged_members.insert(qid);
        self.members[root] = merged_members;
        self.qid_node.insert(qid, self.rel_node[first]);

        (winner_shard, migrations)
    }

    /// Union by rank; returns the surviving root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[ra] == self.rank[rb] {
            self.rank[winner] += 1;
        }
        winner
    }

    /// Retires an answered/cancelled query from its component.
    fn purge(&mut self, qid: QueryId) {
        if let Some(node) = self.qid_node.remove(&qid) {
            let root = self.find(node);
            self.members[root].remove(&qid);
        }
    }

    /// The shard a known relation currently routes to.
    fn shard_of_relation(&mut self, relation: &str) -> Option<usize> {
        let &node = self.rel_node.get(&relation.to_ascii_lowercase())?;
        let root = self.find(node);
        Some(self.shard[root])
    }

    /// The shard a routed query's component currently maps to.
    fn shard_of_query(&mut self, qid: QueryId) -> Option<usize> {
        let &node = self.qid_node.get(&qid)?;
        let root = self.find(node);
        Some(self.shard[root])
    }
}

// ------------------------------------------------------------------ //
// The sharded coordinator
// ------------------------------------------------------------------ //

/// A coordinator that partitions the pending registry into shards keyed
/// by answer-relation signature and drains submissions per shard — see
/// the module docs for the routing rule and locking protocol. The
/// public surface mirrors [`crate::Coordinator`] plus the batch path.
pub struct ShardedCoordinator {
    engine: Engine,
    shards: Vec<Mutex<ShardState>>,
    router: Mutex<Router>,
    next_id: AtomicU64,
    seq: AtomicU64,
    rejected_unsafe: AtomicU64,
    apply_hook: Mutex<Option<SharedApplyHook>>,
    workers: usize,
}

impl ShardedCoordinator {
    /// Creates a sharded coordinator over `db`.
    pub fn with_config(db: Database, config: ShardedConfig) -> ShardedCoordinator {
        let shards = config.shards.max(1);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        ShardedCoordinator {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(ShardState::new(
                        config.base.use_const_index,
                        config.base.seed ^ i as u64,
                    ))
                })
                .collect(),
            router: Mutex::new(Router::new(shards)),
            next_id: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            rejected_unsafe: AtomicU64::new(0),
            apply_hook: Mutex::new(None),
            workers,
            engine: Engine {
                db,
                config: config.base,
            },
        }
    }

    /// A sharded coordinator with the default four shards.
    pub fn new(db: Database) -> ShardedCoordinator {
        ShardedCoordinator::with_config(db, ShardedConfig::default())
    }

    /// The underlying database handle.
    pub fn db(&self) -> &Database {
        &self.engine.db
    }

    /// The per-shard coordinator configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.engine.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers the application side-effect hook, shared by all
    /// shards and run inside each match's storage transaction.
    pub fn set_apply_hook(&self, hook: SharedApplyHook) {
        *self.apply_hook.lock() = Some(hook);
    }

    /// Submits one entangled query given as SQL text.
    pub fn submit_sql(&self, owner: &str, sql: &str) -> CoreResult<Submission> {
        let compiled = compile_sql(sql)?;
        self.submit(owner, compiled)
    }

    /// Submits one compiled entangled query: routes it to its shard and
    /// runs arrival-driven matching there. Submissions routed to
    /// different shards proceed concurrently.
    pub fn submit(&self, owner: &str, query: EntangledQuery) -> CoreResult<Submission> {
        if let Err(e) = check_safety(&query, self.engine.config.safety) {
            self.rejected_unsafe.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let relations = query.answer_relations();
        let qid = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let pending = Pending {
            id: qid,
            owner: owner.to_string(),
            query: query.namespaced(qid),
            seq,
        };
        let hook = self.apply_hook.lock().clone();

        let (shard, moves) = {
            let mut router = self.router.lock();
            let (shard, migrations) = router.route(qid, &relations);
            let moves = self.apply_migrations(&mut router, &migrations);
            (shard, moves)
        };
        self.rematch_moved(moves, &hook);

        let (result, answered) = {
            let mut state = self.shards[shard].lock();
            let result = self
                .engine
                .process_arrival(&mut state, pending, hook_ref(&hook));
            (result, std::mem::take(&mut state.answered_log))
        };
        self.retire(answered);
        // heal on Err as well: an apply failure reinstates the query as
        // pending, and a concurrent merge may have re-routed it
        if matches!(result, Ok(Submission::Pending(_)) | Err(_)) {
            self.heal_placement(shard, &[qid], &hook);
        }
        result
    }

    /// Submits a batch of `(owner, sql)` requests: compiles and
    /// safety-checks outside any lock, routes the whole batch in one
    /// router pass, then drains each shard's bucket on the worker pool.
    /// Outcomes are returned in input order.
    pub fn submit_batch_sql(&self, requests: &[(String, String)]) -> Vec<BatchOutcome> {
        let compiled: Vec<(String, CoreResult<EntangledQuery>)> = requests
            .iter()
            .map(|(owner, sql)| (owner.clone(), compile_sql(sql)))
            .collect();
        self.submit_batch(compiled)
    }

    /// Batch submission of pre-compiled queries (entries may carry a
    /// compile error, which is passed through to the outcome slot).
    pub fn submit_batch(
        &self,
        requests: Vec<(String, CoreResult<EntangledQuery>)>,
    ) -> Vec<BatchOutcome> {
        let mut outcomes: Vec<Option<BatchOutcome>> = Vec::with_capacity(requests.len());
        outcomes.resize_with(requests.len(), || None);

        // Phase 1 (no locks): compile outcomes + safety, id allocation
        // in input order so ids match a serial submission of the batch.
        let mut accepted: Vec<(usize, Pending, BTreeSet<String>)> = Vec::new();
        for (idx, (owner, compiled)) in requests.into_iter().enumerate() {
            let query = match compiled {
                Ok(q) => q,
                Err(e) => {
                    outcomes[idx] = Some(Err(e));
                    continue;
                }
            };
            if let Err(e) = check_safety(&query, self.engine.config.safety) {
                self.rejected_unsafe.fetch_add(1, Ordering::Relaxed);
                outcomes[idx] = Some(Err(e));
                continue;
            }
            let relations = query.answer_relations();
            let qid = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            let pending = Pending {
                id: qid,
                owner,
                query: query.namespaced(qid),
                seq,
            };
            accepted.push((idx, pending, relations));
        }

        // Phase 2 (router lock): union every signature first, then
        // bucket by the *final* component placement — bucketing after
        // all unions means an intra-batch merge can never strand an
        // earlier entry on a stale shard.
        let hook = self.apply_hook.lock().clone();
        let mut buckets: Vec<Bucket> = vec![Vec::new(); self.shards.len()];
        let mut all_moves: HashMap<usize, Vec<QueryId>> = HashMap::new();
        {
            let mut router = self.router.lock();
            let mut routed = Vec::with_capacity(accepted.len());
            for (idx, pending, relations) in accepted {
                let (_, migrations) = router.route(pending.id, &relations);
                for (shard, mut qids) in self.apply_migrations(&mut router, &migrations) {
                    all_moves.entry(shard).or_default().append(&mut qids);
                }
                routed.push((idx, pending));
            }
            for (idx, pending) in routed {
                let shard = router
                    .shard_of_query(pending.id)
                    .expect("query was routed in this pass");
                buckets[shard].push((idx, pending));
            }
        }
        self.rematch_moved(all_moves, &hook);

        // Phase 3 (worker pool): drain each busy shard independently,
        // arrival-by-arrival within the bucket.
        let busy: Vec<usize> = (0..buckets.len())
            .filter(|&s| !buckets[s].is_empty())
            .collect();
        let buckets: Vec<Option<Mutex<Bucket>>> = buckets
            .into_iter()
            .map(|b| {
                if b.is_empty() {
                    None
                } else {
                    Some(Mutex::new(b))
                }
            })
            .collect();
        let worker_count = self.workers.min(busy.len()).max(1);

        let mut drained: Vec<(usize, BatchOutcome)> = Vec::new();
        let mut answered: Vec<QueryId> = Vec::new();
        let mut still_pending: Vec<(usize, QueryId)> = Vec::new(); // (shard, qid)
        let cursor = AtomicU64::new(0);
        let worker = |results: &mut Vec<(usize, BatchOutcome)>,
                      log: &mut Vec<QueryId>,
                      pending_out: &mut Vec<(usize, QueryId)>| {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                let Some(&shard) = busy.get(i) else { break };
                let bucket = buckets[shard]
                    .as_ref()
                    .expect("busy shard has a bucket")
                    .lock()
                    .drain(..)
                    .collect::<Vec<_>>();
                let (mut r, mut l, maybe_pending) = self.drain_shard(shard, bucket, &hook);
                pending_out.extend(maybe_pending.into_iter().map(|qid| (shard, qid)));
                results.append(&mut r);
                log.append(&mut l);
            }
        };
        if worker_count <= 1 {
            worker(&mut drained, &mut answered, &mut still_pending);
        } else {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| {
                        let worker = &worker;
                        scope.spawn(move || {
                            let (mut r, mut l, mut p) = (Vec::new(), Vec::new(), Vec::new());
                            worker(&mut r, &mut l, &mut p);
                            (r, l, p)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("drain worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (mut r, mut l, mut p) in results {
                drained.append(&mut r);
                answered.append(&mut l);
                still_pending.append(&mut p);
            }
        }
        self.retire(answered);

        // Phase 4: heal any placement made stale by a concurrent merge.
        let mut by_shard: HashMap<usize, Vec<QueryId>> = HashMap::new();
        for (shard, qid) in still_pending {
            by_shard.entry(shard).or_default().push(qid);
        }
        for (shard, qids) in by_shard {
            self.heal_placement(shard, &qids, &hook);
        }

        for (idx, outcome) in drained {
            outcomes[idx] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every batch slot received an outcome"))
            .collect()
    }

    /// Drains one shard's bucket under its lock: insert → match →
    /// cascade per arrival, in bucket (= submission) order. Returns the
    /// per-request outcomes, the answered-query log, and the ids that
    /// may still be pending afterwards (`Pending` outcomes, plus `Err`
    /// outcomes — an apply failure reinstates the query), which the
    /// caller must placement-heal.
    fn drain_shard(
        &self,
        shard: usize,
        bucket: Bucket,
        hook: &Option<SharedApplyHook>,
    ) -> (Vec<(usize, BatchOutcome)>, Vec<QueryId>, Vec<QueryId>) {
        let mut state = self.shards[shard].lock();
        let mut results = Vec::with_capacity(bucket.len());
        let mut maybe_pending = Vec::new();
        for (idx, pending) in bucket {
            let qid = pending.id;
            let outcome = self
                .engine
                .process_arrival(&mut state, pending, hook_ref(hook));
            if matches!(outcome, Ok(Submission::Pending(_)) | Err(_)) {
                maybe_pending.push(qid);
            }
            results.push((idx, outcome));
        }
        let log = std::mem::take(&mut state.answered_log);
        (results, log, maybe_pending)
    }

    /// Executes migrations decided by the router (caller holds the
    /// router lock). Shard locks are taken in ascending index order —
    /// the global lock order — so concurrent drains cannot deadlock.
    /// Only *moves* entries (cheap: registry + waiter transfers);
    /// matching is deliberately left to [`Self::rematch_moved`], which
    /// runs after the router lock is released so routing never
    /// serializes behind match work or database writes. Returns the
    /// moved queries grouped by destination shard.
    fn apply_migrations(
        &self,
        _router: &mut Router,
        migrations: &[Migration],
    ) -> HashMap<usize, Vec<QueryId>> {
        let mut moves: HashMap<usize, Vec<QueryId>> = HashMap::new();
        for m in migrations {
            if m.from == m.to {
                continue;
            }
            let (lo, hi) = (m.from.min(m.to), m.from.max(m.to));
            let mut lo_guard = self.shards[lo].lock();
            let mut hi_guard = self.shards[hi].lock();
            let (src, dst) = if m.from == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            for qid in &m.qids {
                // answered/cancelled entries may linger in the
                // membership until retired; routed-but-undrained ones
                // are healed by their own drain. Skip both.
                if let Some(pending) = src.registry.remove(*qid) {
                    dst.registry.insert(pending);
                    moves.entry(m.to).or_default().push(*qid);
                }
                if let Some(waiter) = src.waiters.remove(qid) {
                    dst.waiters.insert(*qid, waiter);
                }
            }
        }
        moves
    }

    /// Re-matches queries that [`Self::apply_migrations`] moved: the
    /// merge that triggered the migration may have made them matchable
    /// against their new shard's pending set. Runs *without* the router
    /// lock; matching, applies and cascades happen under the shard lock
    /// only, exactly like a drain. Best-effort: apply failures leave
    /// the group pending, like a cascade round.
    fn rematch_moved(&self, moves: HashMap<usize, Vec<QueryId>>, hook: &Option<SharedApplyHook>) {
        let mut answered = Vec::new();
        for (shard, qids) in moves {
            let mut state = self.shards[shard].lock();
            for qid in qids {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this loop or moved on
                }
                if let Ok(Some(gm)) = self.engine.try_match(&mut state, qid) {
                    let fresh: Vec<(String, Tuple)> = gm.all_answers().cloned().collect();
                    if self
                        .engine
                        .apply_and_notify(&mut state, gm, hook_ref(hook))
                        .is_ok()
                    {
                        let _ = self.engine.cascade(&mut state, fresh, hook_ref(hook));
                    } // on Err the group was reinstated and stays pending
                }
            }
            answered.append(&mut state.answered_log);
        }
        self.retire(answered);
    }

    /// Re-checks where `qids` (just drained as pending on `shard`)
    /// should live according to the router, migrating and re-matching
    /// any that a concurrent component merge re-routed mid-flight.
    fn heal_placement(&self, shard: usize, qids: &[QueryId], hook: &Option<SharedApplyHook>) {
        let moves = {
            let mut router = self.router.lock();
            let mut by_target: HashMap<usize, Vec<QueryId>> = HashMap::new();
            for &qid in qids {
                if let Some(target) = router.shard_of_query(qid) {
                    if target != shard {
                        by_target.entry(target).or_default().push(qid);
                    }
                }
            }
            if by_target.is_empty() {
                return;
            }
            let migrations: Vec<Migration> = by_target
                .into_iter()
                .map(|(to, qids)| Migration {
                    from: shard,
                    to,
                    qids,
                })
                .collect();
            self.apply_migrations(&mut router, &migrations)
        };
        self.rematch_moved(moves, hook);
    }

    /// Retires answered queries from the router's membership sets.
    /// Must be called without holding any shard lock (lock order).
    fn retire(&self, answered: Vec<QueryId>) {
        if answered.is_empty() {
            return;
        }
        let mut router = self.router.lock();
        for qid in answered {
            router.purge(qid);
        }
    }

    /// Cancels a pending query.
    pub fn cancel(&self, qid: QueryId) -> CoreResult<()> {
        let mut router = self.router.lock();
        let Some(shard) = router.shard_of_query(qid) else {
            return Err(CoreError::UnknownQuery(qid.0));
        };
        let removed = {
            let mut state = self.shards[shard].lock();
            state.waiters.remove(&qid);
            state.registry.remove(qid)
        };
        router.purge(qid);
        removed.map(|_| ()).ok_or(CoreError::UnknownQuery(qid.0))
    }

    /// Cancels every pending query belonging to `owner`. Returns how
    /// many were withdrawn.
    pub fn cancel_owner(&self, owner: &str) -> usize {
        let mut victims = Vec::new();
        for shard in &self.shards {
            let mut state = shard.lock();
            let ids: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| p.owner == owner)
                .map(|p| p.id)
                .collect();
            for qid in ids {
                state.registry.remove(qid);
                state.waiters.remove(&qid);
                victims.push(qid);
            }
        }
        let count = victims.len();
        self.retire(victims);
        count
    }

    /// Retries matching for every pending query on every shard (useful
    /// after database updates). Returns all notifications produced.
    pub fn retry_all(&self) -> CoreResult<Vec<MatchNotification>> {
        let hook = self.apply_hook.lock().clone();
        let mut notifications = Vec::new();
        let mut answered = Vec::new();
        for shard in &self.shards {
            let mut state = shard.lock();
            notifications.extend(self.engine.retry_all(&mut state, hook_ref(&hook))?);
            answered.append(&mut state.answered_log);
        }
        self.retire(answered);
        Ok(notifications)
    }

    /// Total number of pending queries across shards.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().registry.len()).sum()
    }

    /// Pending queries per shard (diagnostics / load inspection).
    pub fn pending_per_shard(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().registry.len())
            .collect()
    }

    /// Merged statistics across shards (plus global safety rejections).
    pub fn stats(&self) -> SystemStats {
        let mut total = SystemStats::default();
        for shard in &self.shards {
            total.merge(&shard.lock().stats);
        }
        total.rejected_unsafe += self.rejected_unsafe.load(Ordering::Relaxed);
        total
    }

    /// The current submission sequence number.
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Snapshot of all pending queries, sorted by id.
    pub fn pending_snapshot(&self) -> Vec<PendingInfo> {
        let mut all: Vec<PendingInfo> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .registry
                    .iter()
                    .map(|p| PendingInfo {
                        id: p.id,
                        owner: p.owner.clone(),
                        sql: p.query.sql.clone(),
                        ir: p.query.to_string(),
                        seq: p.seq,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|p| p.id.0);
        all
    }

    /// The union of the per-shard match graphs. Co-sharding guarantees
    /// no potential-satisfaction edge ever crosses shards, so this is
    /// the complete system match graph.
    pub fn match_graph(&self) -> MatchGraph {
        let mut graph = MatchGraph::default();
        for shard in &self.shards {
            let part = match_graph_of(&shard.lock().registry);
            graph.edges.extend(part.edges);
            graph.dangling.extend(part.dangling);
        }
        graph
    }

    /// Reads the current content of an answer relation.
    pub fn answers(&self, relation: &str) -> Vec<Tuple> {
        self.engine.answers(relation)
    }

    /// The shard `relation` currently routes to (`None` until some
    /// query has touched it). Exposed for tests and diagnostics.
    pub fn shard_of_relation(&self, relation: &str) -> Option<usize> {
        self.router.lock().shard_of_relation(relation)
    }

    /// Verifies the routing invariants at a quiescent point, returning
    /// a description of the first violation: (a) every pending query
    /// lives on the shard its relation component routes to, (b) a
    /// query's whole signature maps to a single component, and (c)
    /// every pending query is tracked in its component's membership
    /// set. Used by the invariant unit tests and the concurrency soak.
    pub fn check_routing_invariants(&self) -> Result<(), String> {
        // collect shard placements first, then consult the router —
        // the lock order forbids taking the router lock while holding
        // a shard lock
        let mut placements: Vec<(usize, QueryId, BTreeSet<String>)> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let state = shard.lock();
            for p in state.registry.iter() {
                placements.push((si, p.id, p.query.answer_relations()));
            }
        }
        let mut router = self.router.lock();
        for (si, qid, relations) in placements {
            let mut component = None;
            for rel in &relations {
                let Some(&node) = router.rel_node.get(rel) else {
                    return Err(format!("query {qid}: relation {rel} unknown to the router"));
                };
                let root = router.find(node);
                if *component.get_or_insert(root) != root {
                    return Err(format!("query {qid}: signature spans two components"));
                }
                let routed = router.shard[root];
                if routed != si {
                    return Err(format!(
                        "query {qid} lives on shard {si} but {rel} routes to shard {routed}"
                    ));
                }
            }
            if let Some(root) = component {
                if !router.members[root].contains(&qid) {
                    return Err(format!("query {qid} missing from its component membership"));
                }
            }
        }
        Ok(())
    }
}

/// Borrows the shared hook as the engine's `&dyn Fn`.
type HookDyn<'a> = &'a dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>;

fn hook_ref(hook: &Option<SharedApplyHook>) -> Option<HookDyn<'_>> {
    hook.as_ref()
        .map(|h| h.as_ref() as &dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_exec::run_sql;

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
             (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn pair_sql_on(rel: &str, me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER {rel} \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER {rel} CHOOSE 1"
        )
    }

    #[test]
    fn pair_coordination_end_to_end() {
        let co = ShardedCoordinator::new(flights_db());
        let a = co
            .submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        let Submission::Pending(ticket) = a else {
            panic!("kramer must wait")
        };
        let b = co
            .submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(b, Submission::Answered(_)));
        ticket.receiver.try_recv().expect("kramer notified");
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.stats().groups_matched, 1);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn distinct_relations_land_on_distinct_shards() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        for k in 0..4 {
            let rel = format!("Res{k}");
            co.submit_sql("a", &pair_sql_on(&rel, "A", "Ghost"))
                .unwrap();
        }
        let shards: BTreeSet<usize> = (0..4)
            .map(|k| co.shard_of_relation(&format!("Res{k}")).unwrap())
            .collect();
        assert_eq!(shards.len(), 4, "round-robin spreads fresh components");
        assert_eq!(co.pending_per_shard(), vec![1, 1, 1, 1]);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn batch_matches_pairs_and_reports_in_order() {
        let co = ShardedCoordinator::new(flights_db());
        let requests: Vec<(String, String)> = (0..8)
            .map(|k| {
                let rel = format!("Res{}", k % 4);
                let (me, friend) = if k < 4 {
                    (format!("L{k}"), format!("R{k}"))
                } else {
                    (format!("R{}", k - 4), format!("L{}", k - 4))
                };
                (me.clone(), pair_sql_on(&rel, &me, &friend))
            })
            .collect();
        let outcomes = co.submit_batch_sql(&requests);
        assert_eq!(outcomes.len(), 8);
        for outcome in &outcomes[..4] {
            assert!(
                matches!(outcome, Ok(Submission::Pending(_))),
                "first halves wait"
            );
        }
        for outcome in &outcomes[4..] {
            assert!(
                matches!(outcome, Ok(Submission::Answered(_))),
                "second halves close"
            );
        }
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.stats().groups_matched, 4);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn bridging_query_merges_components_and_migrates() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        co.submit_sql("a", &pair_sql_on("RelA", "A", "GhostA"))
            .unwrap();
        co.submit_sql("b", &pair_sql_on("RelB", "B", "GhostB"))
            .unwrap();
        let sa = co.shard_of_relation("RelA").unwrap();
        let sb = co.shard_of_relation("RelB").unwrap();
        assert_ne!(sa, sb, "fresh components start on different shards");

        // a query spanning both relations forces the components together
        let bridge = "SELECT 'C', fno INTO ANSWER RelA, 'C', fno INTO ANSWER RelB \
                      WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                      AND ('GhostC', fno) IN ANSWER RelA CHOOSE 1";
        co.submit_sql("c", bridge).unwrap();
        assert_eq!(
            co.shard_of_relation("RelA").unwrap(),
            co.shard_of_relation("RelB").unwrap(),
            "merged components co-shard"
        );
        co.check_routing_invariants().unwrap();
        assert_eq!(co.pending_count(), 3);
    }

    #[test]
    fn migration_rematches_newly_coordinable_queries() {
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // two halves of a pair on relations that start out separate:
        // X's constraint lives on RelP, its head on RelQ and vice versa,
        // so neither can match until the components merge... which their
        // own signatures already force. Use disjoint relations instead:
        // a pending pair split across components cannot exist by
        // construction (signatures overlap ⇒ same component), so the
        // rematch path is exercised through a bridge that *completes* a
        // match: X waits on RelA; the bridge has heads on RelA and RelB
        // and waits on X's head relation.
        let x = "SELECT 'X', fno INTO ANSWER RelA \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('Y', fno) IN ANSWER RelB CHOOSE 1";
        let sub_x = co.submit_sql("x", x).unwrap();
        let Submission::Pending(ticket_x) = sub_x else {
            panic!("x waits")
        };
        // RelA and RelB are already one component (X touches both), so
        // add an unrelated pending on RelC to create a second component
        co.submit_sql("noise", &pair_sql_on("RelC", "N", "GhostN"))
            .unwrap();
        // Y bridges: head on RelB (satisfies X) + constraint on RelA
        // (satisfied by X) + also touches RelC, merging all components
        let y = "SELECT 'Y', fno INTO ANSWER RelB, 'Y', fno INTO ANSWER RelC \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('X', fno) IN ANSWER RelA CHOOSE 1";
        let sub_y = co.submit_sql("y", y).unwrap();
        assert!(
            matches!(sub_y, Submission::Answered(_)),
            "merge makes the pair matchable"
        );
        ticket_x
            .receiver
            .try_recv()
            .expect("x notified after merge");
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn const_index_stays_consistent_across_submit_retract_rebalance() {
        use crate::ir::{Atom, Term};

        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // submit: X waits on RelA with a constant-name head
        let sub = co
            .submit_sql("x", &pair_sql_on("RelA", "X", "GhostX"))
            .unwrap();
        let xid = sub.id();
        co.submit_sql("m", &pair_sql_on("RelM", "M", "GhostM"))
            .unwrap();
        let shard_a = co.shard_of_relation("RelA").unwrap();
        let shard_m = co.shard_of_relation("RelM").unwrap();
        assert_ne!(shard_a, shard_m);

        // the constant-position index on X's shard finds X's head for a
        // constraint naming X, and nothing for a stranger
        let probe_x = Atom::new("RelA", vec![Term::constant("X"), Term::var("f")]);
        let probe_stranger = Atom::new("RelA", vec![Term::constant("Z"), Term::var("f")]);
        {
            let state = co.shards[shard_a].lock();
            assert_eq!(state.registry.candidates_for(&probe_x).len(), 1);
            assert!(state.registry.candidates_for(&probe_stranger).is_empty());
        }

        // rebalance: a bridge spanning RelA and RelM merges the
        // components (union-find merge path) and migrates one side
        let bridge = "SELECT 'B', fno INTO ANSWER RelA, 'B', fno INTO ANSWER RelM \
                      WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                      AND ('GhostB', fno) IN ANSWER RelA CHOOSE 1";
        co.submit_sql("b", bridge).unwrap();
        let merged = co.shard_of_relation("RelA").unwrap();
        assert_eq!(merged, co.shard_of_relation("RelM").unwrap());
        co.check_routing_invariants().unwrap();

        // after the rebalance the index travelled with the entries:
        // the merged shard finds X's head, every other shard finds none
        for (i, shard) in co.shards.iter().enumerate() {
            let state = shard.lock();
            let found = state.registry.candidates_for(&probe_x).len();
            if i == merged {
                assert_eq!(
                    found, 1,
                    "migrated head must be indexed on the merged shard"
                );
            } else {
                assert_eq!(found, 0, "no stale index entries on shard {i}");
            }
        }

        // retract: cancelling X must drop it from the index on the
        // merged shard too
        co.cancel(xid).unwrap();
        {
            let state = co.shards[merged].lock();
            assert!(state.registry.candidates_for(&probe_x).is_empty());
        }
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn repeated_merges_keep_membership_exact() {
        // chain merges: RelC0..RelC3 born separately, then bridges fold
        // them left to right; membership and routing stay consistent
        let co = ShardedCoordinator::with_config(
            flights_db(),
            ShardedConfig {
                shards: 4,
                ..Default::default()
            },
        );
        for k in 0..4 {
            co.submit_sql(
                "w",
                &pair_sql_on(&format!("RelC{k}"), &format!("W{k}"), "Ghost"),
            )
            .unwrap();
        }
        for k in 0..3 {
            let bridge = format!(
                "SELECT 'B{k}', fno INTO ANSWER RelC{k}, 'B{k}', fno INTO ANSWER RelC{next} \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('GhostB{k}', fno) IN ANSWER RelC{k} CHOOSE 1",
                next = k + 1
            );
            co.submit_sql("b", &bridge).unwrap();
            co.check_routing_invariants().unwrap();
        }
        let home = co.shard_of_relation("RelC0").unwrap();
        for k in 1..4 {
            assert_eq!(co.shard_of_relation(&format!("RelC{k}")).unwrap(), home);
        }
        // all 7 pending queries live together now
        assert_eq!(co.pending_per_shard()[home], 7);
        assert_eq!(co.pending_count(), 7);
    }

    #[test]
    fn unsafe_queries_are_rejected_and_counted() {
        let co = ShardedCoordinator::new(flights_db());
        let err = co
            .submit_sql("x", "SELECT 'X', v INTO ANSWER R CHOOSE 1")
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsafe(_)));
        assert_eq!(co.stats().rejected_unsafe, 1);
        assert_eq!(co.pending_count(), 0);
    }

    #[test]
    fn cancel_and_cancel_owner() {
        let co = ShardedCoordinator::new(flights_db());
        let s = co
            .submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("kramer", &pair_sql_on("Res2", "Kramer", "Jerry2"))
            .unwrap();
        co.submit_sql("elaine", &pair_sql_on("Res3", "Elaine", "Ghost"))
            .unwrap();
        co.cancel(s.id()).unwrap();
        assert!(matches!(co.cancel(s.id()), Err(CoreError::UnknownQuery(_))));
        assert_eq!(co.cancel_owner("kramer"), 1);
        assert_eq!(co.pending_count(), 1);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn retry_all_matches_after_data_arrives() {
        let db = Database::new();
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        )
        .unwrap();
        let co = ShardedCoordinator::new(db.clone());
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert!(co.retry_all().unwrap().is_empty());
        run_sql(&db, "INSERT INTO Flights VALUES (122, 'Paris')").unwrap();
        assert_eq!(co.retry_all().unwrap().len(), 2);
        assert_eq!(co.pending_count(), 0);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn apply_hook_runs_in_the_match_transaction() {
        let db = flights_db();
        run_sql(&db, "CREATE TABLE Log (qid INT)").unwrap();
        let co = ShardedCoordinator::new(db.clone());
        co.set_apply_hook(Arc::new(|txn, m| {
            for &qid in &m.members {
                txn.insert(
                    "Log",
                    Tuple::new(vec![youtopia_storage::Value::Int(qid.0 as i64)]),
                )?;
            }
            Ok(())
        }));
        co.submit_sql("kramer", &pair_sql_on("Reservation", "Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql_on("Reservation", "Jerry", "Kramer"))
            .unwrap();
        assert_eq!(db.read().table("Log").unwrap().len(), 2);
    }
}
