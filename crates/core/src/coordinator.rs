//! The coordinator: Youtopia's coordination component.
//!
//! This is the public face of the crate. It owns the pending-query
//! registry, runs the matcher on every arrival, applies matched groups
//! atomically to the database (answer tuples are inserted into real
//! answer-relation tables inside one storage transaction, alongside any
//! application side effects registered through the apply hook), and
//! notifies waiting submitters through channels — the "Facebook
//! message" of the demo.
//!
//! Locking protocol: the coordinator's internal state sits behind one
//! mutex, so submissions and matching are serialized (matching runs on
//! arrival, exactly as the paper describes). **Do not call
//! [`Coordinator::submit_sql`] while holding a
//! [`youtopia_storage::ReadTransaction`] on the same database** — the
//! apply phase needs the write lock and would deadlock with your read
//! guard.
//!
//! For throughput beyond what one mutex allows, see
//! [`crate::shard::ShardedCoordinator`], which partitions this state by
//! answer-relation signature and reuses the same engine per shard.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;

use youtopia_storage::{Database, StorageResult, Transaction, Tuple, Wal};

use crate::audit::{AuditConfig, AuditSink};
use crate::compile::compile_sql;
use crate::engine::{
    match_graph_of, replay_coordination_frames, Arrival, CoordEvent, CoordinationLog, Engine,
    RegStamp, ShardState, WaitMode, Waiter,
};
use crate::error::{CoreError, CoreResult};
use crate::future::{CoordinationFuture, CoordinationOutcome, TicketShared};
use crate::ir::{EntangledQuery, QueryId};
use crate::lifecycle::{Clock, DeadlineHost, SubmitOptions, SweepSignal, SystemClock};
use crate::matcher::{GroupMatch, MatchConfig, MatchStats};
use crate::registry::Pending;
use crate::safety::{check_safety, SafetyMode};
use crate::tenant::{TenantOutcome, TenantRegistry};

/// Which matching algorithm the coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// The incremental, index-pruned matcher (the system's algorithm).
    #[default]
    Incremental,
    /// The exhaustive subset baseline (for experiments).
    Naive,
}

/// Coordinator construction options.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Safety condition enforced at submission.
    pub safety: SafetyMode,
    /// Matcher tuning (group-size bound, forward checking, randomize).
    pub match_config: MatchConfig,
    /// Use the registry's constant-position index (E10 ablation).
    pub use_const_index: bool,
    /// Which matcher runs on arrival.
    pub matcher: MatcherKind,
    /// RNG seed for the nondeterministic `CHOOSE`.
    pub seed: u64,
    /// Coordination audit trail (the `sys_audit` / `sys_tenant_latency`
    /// system relations). Disabled by default.
    pub audit: AuditConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            safety: SafetyMode::Relaxed,
            match_config: MatchConfig::default(),
            use_const_index: true,
            matcher: MatcherKind::Incremental,
            seed: 0xD3C0_FFEE,
            audit: AuditConfig::default(),
        }
    }
}

/// Cumulative system counters, exposed to the admin interface and the
/// benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemStats {
    /// Entangled queries accepted (registered or answered).
    pub submitted: u64,
    /// Queries rejected by the safety analysis.
    pub rejected_unsafe: u64,
    /// Submissions rejected by a tenant quota
    /// ([`crate::TenantRegistry`]) before registration.
    pub rejected_quota: u64,
    /// Queries answered so far.
    pub answered: u64,
    /// Groups matched so far.
    pub groups_matched: u64,
    /// Match attempts (one per arrival, plus retries).
    pub match_attempts: u64,
    /// Total time spent inside the matcher, in nanoseconds.
    pub matching_nanos: u128,
    /// Aggregated matcher work counters.
    pub match_work: MatchStats,
    /// Queries retired by deadline sweeps (`expire_due`), as opposed
    /// to answered or cancelled.
    pub expired: u64,
    /// WAL size in bytes at the time of the stats read (0 without a
    /// WAL). A log-surface gauge set by `stats()` itself — per-shard
    /// counters never carry it and [`SystemStats::merge`] never sums
    /// it.
    pub wal_bytes: u64,
    /// Bytes appended to the WAL since the last coordinator
    /// checkpoint (== `wal_bytes` until one runs). Gauge, like
    /// `wal_bytes`; sharded coordinator only.
    pub wal_bytes_since_checkpoint: u64,
    /// Milliseconds since the last coordinator checkpoint (since
    /// construction when none ran yet), by the coordinator's clock.
    /// Gauge; sharded coordinator only.
    pub checkpoint_age_millis: u64,
    /// Checkpoints triggered automatically by the WAL size threshold
    /// ([`crate::ShardedConfig::auto_checkpoint_bytes`]).
    pub auto_checkpoints: u64,
}

impl SystemStats {
    /// Accumulates `other`'s counters into `self` (used to merge
    /// per-shard stats). The log-surface gauges (`wal_bytes`,
    /// `wal_bytes_since_checkpoint`, `checkpoint_age_millis`,
    /// `auto_checkpoints`) describe the whole coordinator, not a
    /// shard, and are deliberately not summed — `stats()` sets them
    /// once after merging.
    pub fn merge(&mut self, other: &SystemStats) {
        self.submitted += other.submitted;
        self.rejected_unsafe += other.rejected_unsafe;
        self.rejected_quota += other.rejected_quota;
        self.answered += other.answered;
        self.groups_matched += other.groups_matched;
        self.match_attempts += other.match_attempts;
        self.matching_nanos += other.matching_nanos;
        self.match_work.merge(&other.match_work);
        self.expired += other.expired;
    }
}

/// What a submitter gets back when its group matches: its own answers.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchNotification {
    /// This query's id.
    pub id: QueryId,
    /// Every member of the matched group.
    pub group: Vec<QueryId>,
    /// This query's answers: one `(relation, tuple)` per head.
    pub answers: Vec<(String, Tuple)>,
}

/// Outcome of a submission.
#[derive(Debug)]
pub enum Submission {
    /// The query was answered immediately (its arrival completed a
    /// group).
    Answered(MatchNotification),
    /// The query is pending; the ticket's channel delivers the
    /// notification when a later arrival completes a group.
    Pending(Ticket),
}

impl Submission {
    /// The query id in either case.
    pub fn id(&self) -> QueryId {
        match self {
            Submission::Answered(n) => n.id,
            Submission::Pending(t) => t.id,
        }
    }

    /// The notification if already answered.
    pub fn answered(self) -> Option<MatchNotification> {
        match self {
            Submission::Answered(n) => Some(n),
            Submission::Pending(_) => None,
        }
    }
}

/// Handle to a pending query.
#[derive(Debug)]
pub struct Ticket {
    /// The pending query's id (usable with
    /// [`Coordinator::cancel`]).
    pub id: QueryId,
    /// Receives the notification when the query is answered.
    pub receiver: Receiver<MatchNotification>,
}

/// One potential-satisfaction edge of the match graph: `from`'s
/// constraint could be satisfied by `to`'s head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEdge {
    /// The constrained (waiting) query.
    pub from: QueryId,
    /// Rendering of the constraint atom.
    pub constraint: String,
    /// The query whose head could satisfy it.
    pub to: QueryId,
    /// Rendering of that head atom.
    pub head: String,
}

/// The admin interface's view of matcher state (§3.2): which pending
/// queries could entangle with which.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatchGraph {
    /// Potential-satisfaction edges.
    pub edges: Vec<MatchEdge>,
    /// Constraints with no possible provider right now:
    /// `(query, constraint index, rendered atom)` — the reason those
    /// queries wait.
    pub dangling: Vec<(QueryId, usize, String)>,
}

/// A row of the admin interface's pending-query view.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingInfo {
    /// Query id.
    pub id: QueryId,
    /// Submitting user.
    pub owner: String,
    /// Original SQL text.
    pub sql: String,
    /// Rendered IR (heads / predicates / constraints).
    pub ir: String,
    /// Submission sequence number.
    pub seq: u64,
    /// Absolute deadline in clock milliseconds, when the submission
    /// carried one.
    pub deadline: Option<u64>,
}

/// Application side effects applied atomically with a match (e.g. the
/// travel site decrements seat counts and inserts reservation rows).
pub type ApplyHook =
    Box<dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()> + Send + 'static>;

/// What a coordinator recovery replayed and rebuilt (diagnostics; also
/// the measured quantity of the `recovery_replay` bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Coordination events decoded from the log.
    pub events_replayed: usize,
    /// Registrations that survived (pending at the crash) and were
    /// restored into the registry.
    pub restored_pending: usize,
    /// Groups matched by the post-restore matching sweep (arrivals that
    /// were logged but whose match had not committed before the crash).
    pub rematched_groups: u64,
    /// Restored queries whose logged deadline was already past due at
    /// recovery time and were expired immediately (their expiry is
    /// logged like any sweep's).
    pub expired_at_recovery: usize,
    /// Candidate triggers discarded by the post-restore matching
    /// sweep's index pruning (from the matcher's work counters).
    pub triggers_pruned: u64,
    /// Wall-clock duration of the post-restore matching sweep, in
    /// microseconds.
    pub sweep_micros: u64,
}

struct State {
    shard: ShardState,
    next_id: u64,
    seq: u64,
    apply_hook: Option<ApplyHook>,
}

/// The coordination component (paper, Figure 2).
pub struct Coordinator {
    engine: Engine,
    state: Mutex<State>,
    /// Notified (outside the state lock) whenever a deadline-carrying
    /// query registers, so a [`crate::DeadlineSweeper`] re-derives its
    /// wakeup time.
    sweep_signal: Arc<SweepSignal>,
    /// Optional per-tenant admission control, consulted on every
    /// submission before a query id is allocated.
    tenants: Mutex<Option<Arc<TenantRegistry>>>,
}

impl Coordinator {
    /// Creates a coordinator over `db` with custom options.
    pub fn with_config(db: Database, config: CoordinatorConfig) -> Coordinator {
        Coordinator::with_config_clock(db, config, Arc::new(SystemClock))
    }

    /// Like [`Coordinator::with_config`], but with an explicit clock for
    /// the audit sink's timestamps (tests inject a [`MockClock`]).
    pub fn with_config_clock(
        db: Database,
        config: CoordinatorConfig,
        clock: Arc<dyn Clock>,
    ) -> Coordinator {
        let audit = config
            .audit
            .enabled
            .then(|| Arc::new(AuditSink::new(db.clone(), config.audit, clock)));
        Coordinator {
            state: Mutex::new(State {
                shard: ShardState::new(config.use_const_index, config.seed),
                next_id: 1,
                seq: 0,
                apply_hook: None,
            }),
            sweep_signal: Arc::new(SweepSignal::new()),
            tenants: Mutex::new(None),
            engine: Engine { db, config, audit },
        }
    }

    /// Creates a coordinator with default options.
    pub fn new(db: Database) -> Coordinator {
        Coordinator::with_config(db, CoordinatorConfig::default())
    }

    /// The underlying database handle.
    pub fn db(&self) -> &Database {
        &self.engine.db
    }

    /// The active configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.engine.config
    }

    /// Registers the application side-effect hook, run inside the same
    /// transaction that inserts a match's answer tuples.
    pub fn set_apply_hook(&self, hook: ApplyHook) {
        self.state.lock().apply_hook = Some(hook);
    }

    /// Installs per-tenant admission control: every later submission is
    /// checked against its tenant's quotas before registration, and
    /// every termination updates the tenant's ledger. Queries already
    /// pending (e.g. after [`Coordinator::recover`]) are adopted into
    /// their tenants' in-flight counts without quota checks.
    pub fn set_tenant_registry(&self, registry: Arc<TenantRegistry>) {
        {
            let state = self.state.lock();
            for p in state.shard.registry.iter() {
                registry.adopt(&p.owner, p.id, p.deadline);
            }
        }
        *self.tenants.lock() = Some(registry);
    }

    /// The installed tenant registry, if any.
    pub fn tenant_registry(&self) -> Option<Arc<TenantRegistry>> {
        self.tenants.lock().clone()
    }

    /// Submits an entangled query given as SQL text.
    pub fn submit_sql(&self, owner: &str, sql: &str) -> CoreResult<Submission> {
        self.submit_sql_with(owner, sql, SubmitOptions::default())
    }

    /// [`Coordinator::submit_sql`] with per-submission options (e.g. a
    /// deadline).
    pub fn submit_sql_with(
        &self,
        owner: &str,
        sql: &str,
        opts: SubmitOptions,
    ) -> CoreResult<Submission> {
        let compiled = compile_sql(sql)?;
        self.submit_with(owner, compiled, opts)
    }

    /// Submits a compiled entangled query.
    pub fn submit(&self, owner: &str, query: EntangledQuery) -> CoreResult<Submission> {
        self.submit_with(owner, query, SubmitOptions::default())
    }

    /// [`Coordinator::submit`] with per-submission options (e.g. a
    /// deadline, logged with the registration and enforced by
    /// `expire_due` sweeps).
    pub fn submit_with(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
    ) -> CoreResult<Submission> {
        self.submit_mode(owner, query, opts, WaitMode::Sync)
            .map(Arrival::into_sync)
    }

    /// Submits an entangled query given as SQL text, returning a
    /// [`CoordinationFuture`] instead of a blocking ticket.
    pub fn submit_sql_async(&self, owner: &str, sql: &str) -> CoreResult<CoordinationFuture> {
        self.submit_sql_async_with(owner, sql, SubmitOptions::default())
    }

    /// [`Coordinator::submit_sql_async`] with per-submission options.
    pub fn submit_sql_async_with(
        &self,
        owner: &str,
        sql: &str,
        opts: SubmitOptions,
    ) -> CoreResult<CoordinationFuture> {
        let compiled = compile_sql(sql)?;
        self.submit_async_with(owner, compiled, opts)
    }

    /// Submits a compiled entangled query asynchronously: identical
    /// registration, logging and matching as [`Coordinator::submit`],
    /// but the returned handle is a poll-based future whose waker fires
    /// on match commit, cancellation or expiry — no thread needs to
    /// block per in-flight coordination. A query answered on arrival
    /// returns an already-resolved future.
    pub fn submit_async(
        &self,
        owner: &str,
        query: EntangledQuery,
    ) -> CoreResult<CoordinationFuture> {
        self.submit_async_with(owner, query, SubmitOptions::default())
    }

    /// [`Coordinator::submit_async`] with per-submission options.
    pub fn submit_async_with(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
    ) -> CoreResult<CoordinationFuture> {
        self.submit_mode(owner, query, opts, WaitMode::Async)
            .map(Arrival::into_async)
    }

    fn submit_mode(
        &self,
        owner: &str,
        query: EntangledQuery,
        opts: SubmitOptions,
        mode: WaitMode,
    ) -> CoreResult<Arrival> {
        let tenants = self.tenants.lock().clone();
        let result = {
            let state = &mut *self.state.lock();
            if let Err(e) = check_safety(&query, self.engine.config.safety) {
                state.shard.stats.rejected_unsafe += 1;
                return Err(e);
            }
            // admission control runs before the query id is allocated
            // so a quota rejection leaves no trace in the id space or
            // the log; the reservation it makes is released (as
            // `aborted`) if the registration never becomes durable
            let admission = match &tenants {
                Some(reg) => match reg.admit(owner, opts.deadline) {
                    Ok(admission) => Some(admission),
                    Err(e) => {
                        state.shard.stats.rejected_quota += 1;
                        return Err(e);
                    }
                },
                None => None,
            };
            let qid = QueryId(state.next_id);
            state.next_id += 1;
            state.seq += 1;
            // log-before-ack: the registration (deadline included) must
            // be durable before the submission can be acknowledged (or
            // matched) — one commit group through the WAL's pipelined
            // group-commit writer
            let registered = CoordEvent::QueryRegistered {
                owner: owner.to_string(),
                sql: query.sql.clone(),
                qid,
                seq: state.seq,
                deadline: opts.deadline,
                stamp: self.engine.audit_now().map(|at| RegStamp { at, shard: 0 }),
            };
            self.engine
                .db
                .log_event(&registered)
                .map_err(CoreError::Storage)?;
            // the audit submit row exists before any terminal row this
            // very arrival could produce (a match observes below)
            self.engine.observe(&registered);
            let pending = Pending {
                id: qid,
                owner: owner.to_string(),
                query: query.namespaced(qid),
                seq: state.seq,
                deadline: opts.deadline,
            };
            // the registration is durable: bind the reservation to its id
            if let (Some(reg), Some(admission)) = (&tenants, admission) {
                reg.track(admission, qid);
            }
            let hook = state
                .apply_hook
                .as_ref()
                .map(|h| h.as_ref() as &dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>);
            let result = self
                .engine
                .process_arrival_mode(&mut state.shard, pending, hook, mode);
            self.engine.flush_audit(&mut state.shard);
            if let Some(reg) = &tenants {
                // the answered log carries every member of any group the
                // arrival completed (the trigger included)
                reg.finish_all(&state.shard.answered_log, TenantOutcome::Answered);
            }
            // the answered log only feeds the sharded coordinator's router
            state.shard.answered_log.clear();
            result
        };
        if opts.deadline.is_some() {
            // outside the state lock: the sweeper re-reads the registry
            // min, which the lock release above made visible
            self.sweep_signal.notify();
        }
        result
    }

    /// Cancels a pending query ("a query whose postcondition is not
    /// satisfied ... waits for an opportunity to retry" — until the user
    /// gives up).
    pub fn cancel(&self, qid: QueryId) -> CoreResult<()> {
        let mut state = self.state.lock();
        if state.shard.registry.get(qid).is_none() {
            return Err(CoreError::UnknownQuery(qid.0));
        }
        // log-before-ack: the cancellation is durable before the entry
        // disappears from the registry
        let cancelled = CoordEvent::QueryCancelled {
            qid,
            at: self.engine.audit_now(),
        };
        self.engine
            .db
            .log_event(&cancelled)
            .map_err(CoreError::Storage)?;
        self.engine.observe(&cancelled);
        state.shard.registry.remove(qid);
        if let Some(waiter) = state.shard.waiters.remove(&qid) {
            // a parked future must resolve, not hang forever
            waiter.resolve_terminal(CoordinationOutcome::Cancelled);
        }
        drop(state);
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish(qid, TenantOutcome::Cancelled);
        }
        Ok(())
    }

    /// Cancels every pending query belonging to `owner` (the user
    /// logged out / gave up). Returns how many were withdrawn (0 when
    /// the durable log rejects the write — nothing is removed that was
    /// not logged first).
    pub fn cancel_owner(&self, owner: &str) -> usize {
        let state = &mut *self.state.lock();
        let victims: Vec<QueryId> = state
            .shard
            .registry
            .iter()
            .filter(|p| p.owner == owner)
            .map(|p| p.id)
            .collect();
        let at = self.engine.audit_now();
        let cancelled = self.engine.retire_ids(
            &mut state.shard,
            &victims,
            |qid| CoordEvent::QueryCancelled { qid, at },
            &CoordinationOutcome::Cancelled,
        );
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&cancelled, TenantOutcome::Cancelled);
        }
        cancelled.len()
    }

    /// Expires pending queries whose submission sequence number is
    /// older than `min_seq` — the legacy caller-driven sweep, now a
    /// seq-selection over the same lifecycle helper as
    /// [`Coordinator::expire_due`]. Returns the expired ids (empty
    /// when the durable log rejects the write — nothing is removed
    /// that was not logged first).
    pub fn expire_before(&self, min_seq: u64) -> Vec<QueryId> {
        let state = &mut *self.state.lock();
        let victims: Vec<QueryId> = state
            .shard
            .registry
            .iter()
            .filter(|p| p.seq < min_seq)
            .map(|p| p.id)
            .collect();
        let at = self.engine.audit_now();
        let expired = self.engine.retire_ids(
            &mut state.shard,
            &victims,
            |qid| CoordEvent::QueryExpired { qid, at },
            &CoordinationOutcome::Expired,
        );
        state.shard.stats.expired += expired.len() as u64;
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&expired, TenantOutcome::Expired);
        }
        expired
    }

    /// Expires every pending query whose deadline
    /// ([`SubmitOptions::deadline`]) is at or before `now_millis` —
    /// the clock-driven sweep a [`crate::DeadlineSweeper`] runs in the
    /// background. Selection is a range scan of the registry's
    /// deadline index; each expiry is logged before the removal, and
    /// parked waiters resolve [`CoordinationOutcome::Expired`].
    /// Returns the expired ids.
    pub fn expire_due(&self, now_millis: u64) -> Vec<QueryId> {
        let state = &mut *self.state.lock();
        let due = state.shard.registry.due_before(now_millis);
        let at = self.engine.audit_now();
        let expired = self.engine.retire_ids(
            &mut state.shard,
            &due,
            |qid| CoordEvent::QueryExpired { qid, at },
            &CoordinationOutcome::Expired,
        );
        state.shard.stats.expired += expired.len() as u64;
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&expired, TenantOutcome::Expired);
        }
        expired
    }

    /// The earliest deadline of any pending query (the sweeper's
    /// wakeup hint), or `None` when nothing carries one.
    pub fn next_deadline(&self) -> Option<u64> {
        self.state.lock().shard.registry.min_deadline()
    }

    /// Re-issues tickets for `owner`'s still-pending queries after a
    /// reconnect (waiter channels do not survive a crash; the pending
    /// queries themselves do). Any previous ticket for the same query
    /// stops receiving notifications.
    pub fn reattach(&self, owner: &str) -> Vec<Ticket> {
        let state = &mut *self.state.lock();
        let mut tickets = Vec::new();
        let ids: Vec<QueryId> = state
            .shard
            .registry
            .iter()
            .filter(|p| p.owner == owner)
            .map(|p| p.id)
            .collect();
        for qid in ids {
            let (tx, rx) = unbounded();
            if let Some(old) = state.shard.waiters.insert(qid, Waiter::Channel(tx)) {
                old.resolve_terminal(CoordinationOutcome::Superseded);
            }
            tickets.push(Ticket {
                id: qid,
                receiver: rx,
            });
        }
        tickets
    }

    /// [`Coordinator::reattach`], async flavor: hands the reconnecting
    /// owner a live [`CoordinationFuture`] per still-pending query —
    /// including queries restored by [`Coordinator::recover`], whose
    /// pre-crash waiters died with the process. Any previous handle for
    /// the same query resolves
    /// [`CoordinationOutcome::Superseded`].
    pub fn reattach_async(&self, owner: &str) -> Vec<CoordinationFuture> {
        let state = &mut *self.state.lock();
        let mut futures = Vec::new();
        let ids: Vec<QueryId> = state
            .shard
            .registry
            .iter()
            .filter(|p| p.owner == owner)
            .map(|p| p.id)
            .collect();
        for qid in ids {
            let shared = std::sync::Arc::new(TicketShared::default());
            let waiter = Waiter::Future(std::sync::Arc::clone(&shared));
            if let Some(old) = state.shard.waiters.insert(qid, waiter) {
                old.resolve_terminal(CoordinationOutcome::Superseded);
            }
            futures.push(CoordinationFuture::new(qid, shared));
        }
        futures.sort_by_key(|f| f.id().0);
        futures
    }

    /// Rebuilds a coordinator (database **and** pending-query state)
    /// from a WAL: replays the storage ops into a fresh database,
    /// folds the coordination frames into the surviving pending set,
    /// re-compiles the surviving SQL, and re-runs matching for
    /// arrivals whose match had not committed before the crash. The
    /// rebuilt coordinator keeps logging to the same WAL.
    ///
    /// The apply hook is `None` during the recovery sweep; use
    /// [`Coordinator::recover_with_hook`] when matches must run
    /// application side effects.
    pub fn recover(
        wal: Wal,
        config: CoordinatorConfig,
    ) -> CoreResult<(Coordinator, RecoveryReport)> {
        Self::recover_with(wal, config, None, &SystemClock)
    }

    /// [`Coordinator::recover`] with an apply hook installed *before*
    /// the post-restore matching sweep runs.
    pub fn recover_with_hook(
        wal: Wal,
        config: CoordinatorConfig,
        hook: Option<ApplyHook>,
    ) -> CoreResult<(Coordinator, RecoveryReport)> {
        Self::recover_with(wal, config, hook, &SystemClock)
    }

    /// The full-control recovery entry point: apply hook plus an
    /// injected [`Clock`]. Deadlines are rebuilt from the log and any
    /// restored query already past due *by that clock* is expired
    /// immediately — under a [`crate::MockClock`] a test recovers "at"
    /// an exact instant, so crashed and uncrashed runs expire at
    /// identical times.
    pub fn recover_with(
        wal: Wal,
        config: CoordinatorConfig,
        hook: Option<ApplyHook>,
        clock: &dyn Clock,
    ) -> CoreResult<(Coordinator, RecoveryReport)> {
        let (db, frames) = Database::recover_full(wal).map_err(CoreError::Storage)?;
        let replayed = replay_coordination_frames(&frames)?;
        let co = Coordinator::with_config(db, config);
        // the audit relations are transient (never checkpointed), so
        // they rebuild from the coordination frames — before the retry
        // sweep, whose matches are then observed live like any other
        if let Some(audit) = &co.engine.audit {
            audit.rebuild_from_frames(&frames);
        }
        let mut report = RecoveryReport {
            events_replayed: replayed.events,
            restored_pending: replayed.survivors.len(),
            ..RecoveryReport::default()
        };
        {
            let state = &mut *co.state.lock();
            state.next_id = replayed.max_qid + 1;
            state.seq = replayed.max_seq;
            state.apply_hook = hook;
            for survivor in replayed.survivors {
                // the SQL compiled when it was first submitted; a
                // failure here means the log (or the compiler) changed
                // underneath us, which recovery must not paper over
                let query = compile_sql(&survivor.sql)?;
                state.shard.registry.insert(Pending {
                    id: survivor.qid,
                    owner: survivor.owner,
                    query: query.namespaced(survivor.qid),
                    seq: survivor.seq,
                    deadline: survivor.deadline,
                });
                state.shard.stats.submitted += 1;
            }
        }
        // arrivals that were logged but not matched before the crash:
        // their match (if any) fires now, and is logged normally
        let sweep_started = std::time::Instant::now();
        co.retry_all()?;
        report.sweep_micros = sweep_started.elapsed().as_micros() as u64;
        let swept = co.stats();
        report.rematched_groups = swept.groups_matched;
        report.triggers_pruned = swept.match_work.triggers_pruned;
        // deadlines that lapsed while the coordinator was down expire
        // now, before any client reattaches to a dead query
        report.expired_at_recovery = co.expire_due(clock.now_millis()).len();
        Ok((co, report))
    }

    /// The current submission sequence number (pairs with
    /// [`Coordinator::expire_before`]).
    pub fn current_seq(&self) -> u64 {
        self.state.lock().seq
    }

    /// Retries matching for every pending query (useful after database
    /// updates add new flights/hotels). Returns the notifications of all
    /// queries answered by the sweep.
    pub fn retry_all(&self) -> CoreResult<Vec<MatchNotification>> {
        let state = &mut *self.state.lock();
        let hook = state
            .apply_hook
            .as_ref()
            .map(|h| h.as_ref() as &dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>);
        let result = self.engine.retry_all(&mut state.shard, hook);
        self.engine.flush_audit(&mut state.shard);
        if let Some(reg) = self.tenants.lock().clone() {
            reg.finish_all(&state.shard.answered_log, TenantOutcome::Answered);
        }
        state.shard.answered_log.clear();
        result
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.state.lock().shard.registry.len()
    }

    /// Snapshot of the pending queries for the admin interface.
    pub fn pending_snapshot(&self) -> Vec<PendingInfo> {
        let state = self.state.lock();
        state
            .shard
            .registry
            .iter()
            .map(|p| PendingInfo {
                id: p.id,
                owner: p.owner.clone(),
                sql: p.query.sql.clone(),
                ir: p.query.to_string(),
                seq: p.seq,
                deadline: p.deadline,
            })
            .collect()
    }

    /// Cumulative statistics (plus the WAL-size gauge when the
    /// database is durable). `match_work` carries the staged-pipeline
    /// counters — candidates scanned, index-pruned, triggers pruned,
    /// buffer-pool hits/misses — merged across every match attempt.
    pub fn stats(&self) -> SystemStats {
        let mut stats = self.state.lock().shard.stats;
        stats.wal_bytes = self.engine.db.wal_len().unwrap_or(0);
        stats.wal_bytes_since_checkpoint = stats.wal_bytes;
        stats
    }

    /// The current *match graph*: for every pending query's positive
    /// answer constraint, which pending heads could satisfy it
    /// (candidate via the registry index + pairwise unifiable). This is
    /// the "state created by the matching algorithms" the paper's
    /// admin interface visualizes (§3.2); dangling constraints (no
    /// edges) show exactly why a query is still waiting.
    pub fn match_graph(&self) -> MatchGraph {
        match_graph_of(&self.state.lock().shard.registry)
    }

    /// Reads the current content of an answer relation (empty when no
    /// match has touched it yet).
    pub fn answers(&self, relation: &str) -> Vec<Tuple> {
        self.engine.answers(relation)
    }
}

impl DeadlineHost for Coordinator {
    fn next_deadline_millis(&self) -> Option<u64> {
        self.next_deadline()
    }

    fn expire_due(&self, now_millis: u64) -> Vec<QueryId> {
        Coordinator::expire_due(self, now_millis)
    }

    fn sweep_signal(&self) -> Arc<SweepSignal> {
        Arc::clone(&self.sweep_signal)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use youtopia_exec::run_sql;
    use youtopia_storage::Value;

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
             (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn pair_sql(me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
        )
    }

    #[test]
    fn paper_walkthrough_end_to_end() {
        let co = Coordinator::new(flights_db());
        // Kramer submits; his constraint cannot be satisfied yet.
        let kramer = co
            .submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let Submission::Pending(ticket) = kramer else {
            panic!("kramer must wait")
        };
        assert_eq!(co.pending_count(), 1);

        // Jerry submits the symmetric query: both answered at once.
        let jerry = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let Submission::Answered(jn) = jerry else {
            panic!("jerry completes the group")
        };
        let kn = ticket.receiver.try_recv().expect("kramer is notified");

        assert_eq!(jn.group, kn.group);
        assert_eq!(jn.answers[0].0, "Reservation");
        let j_fno = &jn.answers[0].1.values()[1];
        let k_fno = &kn.answers[0].1.values()[1];
        assert_eq!(j_fno, k_fno);
        assert!([122i64, 123, 134].contains(&j_fno.as_int().unwrap()));

        // the answer relation now holds both tuples
        assert_eq!(co.answers("Reservation").len(), 2);
        assert_eq!(co.pending_count(), 0);

        let stats = co.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.answered, 2);
        assert_eq!(stats.groups_matched, 1);
    }

    #[test]
    fn unsafe_queries_are_rejected_and_counted() {
        let co = Coordinator::new(flights_db());
        let err = co
            .submit_sql("x", "SELECT 'X', v INTO ANSWER R CHOOSE 1")
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsafe(_)));
        assert_eq!(co.stats().rejected_unsafe, 1);
        assert_eq!(co.pending_count(), 0);
    }

    #[test]
    fn strict_mode_rejects_constraint_bound_vars() {
        let config = CoordinatorConfig {
            safety: SafetyMode::Strict,
            ..Default::default()
        };
        let co = Coordinator::with_config(flights_db(), config);
        let err = co
            .submit_sql(
                "k",
                "SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R CHOOSE 1",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsafe(_)));
    }

    #[test]
    fn cancel_removes_pending_query() {
        let co = Coordinator::new(flights_db());
        let s = co
            .submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let id = s.id();
        co.cancel(id).unwrap();
        assert_eq!(co.pending_count(), 0);
        assert!(matches!(co.cancel(id), Err(CoreError::UnknownQuery(_))));
        // Jerry now waits forever — no partner
        let s2 = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(s2, Submission::Pending(_)));
    }

    #[test]
    fn retry_all_matches_after_data_arrives() {
        let db = Database::new();
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        )
        .unwrap();
        let co = Coordinator::new(db.clone());
        // no Paris flights yet: the pair cannot ground
        let t1 = co
            .submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let t2 = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(t1, Submission::Pending(_)));
        assert!(matches!(t2, Submission::Pending(_)));
        assert!(co.retry_all().unwrap().is_empty());

        run_sql(&db, "INSERT INTO Flights VALUES (122, 'Paris')").unwrap();
        let notifications = co.retry_all().unwrap();
        assert_eq!(notifications.len(), 2);
        assert_eq!(co.pending_count(), 0);
    }

    #[test]
    fn pending_snapshot_shows_sql_and_ir() {
        let co = Coordinator::new(flights_db());
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let snap = co.pending_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].owner, "kramer");
        assert!(snap[0].sql.contains("INTO ANSWER Reservation"));
        assert!(snap[0].ir.contains("Reservation('Kramer'"));
    }

    #[test]
    fn apply_hook_runs_in_the_match_transaction() {
        let db = flights_db();
        run_sql(&db, "CREATE TABLE Log (qid INT)").unwrap();
        let co = Coordinator::new(db.clone());
        co.set_apply_hook(Box::new(|txn, m| {
            for &qid in &m.members {
                txn.insert("Log", Tuple::new(vec![Value::Int(qid.0 as i64)]))?;
            }
            Ok(())
        }));
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let read = db.read();
        assert_eq!(read.table("Log").unwrap().len(), 2);
    }

    #[test]
    fn failing_hook_reinstates_the_group() {
        let db = flights_db();
        let co = Coordinator::new(db.clone());
        co.set_apply_hook(Box::new(|_, _| {
            Err(youtopia_storage::StorageError::Internal("no seats".into()))
        }));
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let err = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap_err();
        assert!(matches!(err, CoreError::Storage(_)));
        // both queries are still pending; no answers were written
        assert_eq!(co.pending_count(), 2);
        assert!(co.answers("Reservation").is_empty());
        assert_eq!(co.stats().groups_matched, 0);
    }

    #[test]
    fn pre_created_answer_table_is_reused() {
        let db = flights_db();
        run_sql(&db, "CREATE TABLE Reservation (traveler STRING, fno INT)").unwrap();
        let co = Coordinator::new(db.clone());
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let read = db.read();
        let t = read.table("Reservation").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().columns()[0].name, "traveler");
    }

    #[test]
    fn naive_matcher_config_works_end_to_end() {
        let config = CoordinatorConfig {
            matcher: MatcherKind::Naive,
            ..Default::default()
        };
        let co = Coordinator::with_config(flights_db(), config);
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let s = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(s, Submission::Answered(_)));
        assert!(co.stats().match_work.subsets_tested > 0);
    }

    #[test]
    fn concurrent_submissions_from_threads() {
        let co = std::sync::Arc::new(Coordinator::new(flights_db()));
        let mut handles = Vec::new();
        for pair in 0..8 {
            for side in 0..2 {
                let co = co.clone();
                handles.push(std::thread::spawn(move || {
                    let (me, friend) = if side == 0 {
                        (format!("L{pair}"), format!("R{pair}"))
                    } else {
                        (format!("R{pair}"), format!("L{pair}"))
                    };
                    let sql = format!(
                        "SELECT '{me}', fno INTO ANSWER Reservation \
                         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                         AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
                    );
                    match co.submit_sql(&me, &sql).unwrap() {
                        Submission::Answered(n) => n,
                        Submission::Pending(t) => t
                            .receiver
                            .recv_timeout(std::time::Duration::from_secs(5))
                            .unwrap(),
                    }
                }));
            }
        }
        let notifications: Vec<MatchNotification> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(notifications.len(), 16);
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.stats().groups_matched, 8);
        // each pair shares a flight
        let by_id: HashMap<QueryId, &MatchNotification> =
            notifications.iter().map(|n| (n.id, n)).collect();
        for n in &notifications {
            assert_eq!(n.group.len(), 2);
            let partner = n.group.iter().find(|&&g| g != n.id).unwrap();
            let pn = by_id[partner];
            assert_eq!(n.answers[0].1.values()[1], pn.answers[0].1.values()[1]);
        }
    }

    #[test]
    fn cancel_owner_withdraws_all_of_a_users_requests() {
        let co = Coordinator::new(flights_db());
        co.submit_sql("kramer", &pair_sql("Kramer", "Ghost1"))
            .unwrap();
        co.submit_sql("kramer", &pair_sql("Kramer", "Ghost2"))
            .unwrap();
        co.submit_sql("elaine", &pair_sql("Elaine", "Ghost3"))
            .unwrap();
        assert_eq!(co.cancel_owner("kramer"), 2);
        assert_eq!(co.pending_count(), 1);
        assert_eq!(co.cancel_owner("kramer"), 0);
    }

    #[test]
    fn expire_before_sweeps_old_requests() {
        let co = Coordinator::new(flights_db());
        co.submit_sql("a", &pair_sql("A", "GhostA")).unwrap();
        co.submit_sql("b", &pair_sql("B", "GhostB")).unwrap();
        let cutoff = co.current_seq(); // == 2
        co.submit_sql("c", &pair_sql("C", "GhostC")).unwrap();
        let expired = co.expire_before(cutoff);
        assert_eq!(expired.len(), 1, "only the first submission predates seq 2");
        assert_eq!(co.pending_count(), 2);
        // expiring everything
        let expired = co.expire_before(u64::MAX);
        assert_eq!(expired.len(), 2);
        assert_eq!(co.pending_count(), 0);
    }

    fn flights_db_wal() -> Database {
        let db = Database::with_wal(youtopia_storage::Wal::in_memory());
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
             (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    #[test]
    fn recover_restores_pending_and_completes_the_pair() {
        let db = flights_db_wal();
        let co = Coordinator::new(db.clone());
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let bytes = db.wal_bytes().unwrap();
        drop(co); // "kill" the process; only the log survives

        let (co2, report) = Coordinator::recover(
            youtopia_storage::Wal::from_bytes(bytes),
            CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(report.restored_pending, 1);
        assert_eq!(co2.pending_count(), 1);
        let snap = co2.pending_snapshot();
        assert_eq!(snap[0].owner, "kramer");

        // the reconnecting owner gets a fresh ticket, and the pair
        // completes exactly as it would have without the crash
        let tickets = co2.reattach("kramer");
        assert_eq!(tickets.len(), 1);
        let jerry = co2
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        assert!(matches!(jerry, Submission::Answered(_)));
        tickets[0]
            .receiver
            .try_recv()
            .expect("reattached waiter is notified");
        assert_eq!(co2.answers("Reservation").len(), 2);
    }

    #[test]
    fn recover_drops_matched_and_cancelled_queries() {
        let db = flights_db_wal();
        let co = Coordinator::new(db.clone());
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap(); // matches
        let c = co.submit_sql("a", &pair_sql("A", "GhostA")).unwrap();
        co.cancel(c.id()).unwrap();
        co.submit_sql("b", &pair_sql("B", "GhostB")).unwrap(); // survives
        co.expire_before(0); // no-op sweep, logs nothing harmful
        let seq_before = co.current_seq();
        let bytes = db.wal_bytes().unwrap();
        drop(co);

        let (co2, report) = Coordinator::recover(
            youtopia_storage::Wal::from_bytes(bytes),
            CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(report.restored_pending, 1);
        let snap = co2.pending_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].owner, "b");
        // answers from the pre-crash match were replayed from storage
        assert_eq!(co2.answers("Reservation").len(), 2);
        // id/seq allocation resumes after the watermark
        assert_eq!(co2.current_seq(), seq_before);
        let next = co2.submit_sql("c", &pair_sql("C", "GhostC")).unwrap();
        assert!(next.id().0 > snap[0].id.0);
    }

    #[test]
    fn recover_rematches_logged_but_unmatched_arrivals() {
        // craft a log whose registrations form a completable pair that
        // never matched (the crash hit between the registration commits
        // and the match apply)
        let db = flights_db_wal();
        for (qid, owner, friend, seq) in [(1, "Kramer", "Jerry", 1), (2, "Jerry", "Kramer", 2)] {
            db.append_coordination(
                &CoordEvent::QueryRegistered {
                    owner: owner.to_lowercase(),
                    sql: pair_sql(owner, friend),
                    qid: QueryId(qid),
                    seq,
                    deadline: None,
                    stamp: None,
                }
                .encode(),
            )
            .unwrap();
        }
        let bytes = db.wal_bytes().unwrap();
        drop(db);

        let (co, report) = Coordinator::recover(
            youtopia_storage::Wal::from_bytes(bytes),
            CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(report.restored_pending, 2);
        assert_eq!(report.rematched_groups, 1, "the sweep completes the pair");
        assert_eq!(co.pending_count(), 0);
        assert_eq!(co.answers("Reservation").len(), 2);
    }

    #[test]
    fn async_pair_resolves_both_futures() {
        let co = Coordinator::new(flights_db());
        let mut kramer = co
            .submit_sql_async("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        assert!(!kramer.is_complete());
        assert!(kramer.try_take().is_none(), "in flight: nothing to take");
        let mut jerry = co
            .submit_sql_async("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        // jerry completed the group on arrival; kramer's waker fired
        let jn = jerry.try_take().unwrap().answered().expect("answered");
        let kn = kramer.try_take().unwrap().answered().expect("answered");
        assert_eq!(jn.group, kn.group);
        assert_eq!(
            jn.answers[0].1.values()[1],
            kn.answers[0].1.values()[1],
            "coordinated pair shares its flight"
        );
        assert_eq!(co.pending_count(), 0);
    }

    /// Regression (async-submission PR, satellite 1): `cancel` on a
    /// query with a parked future waiter must wake it with the terminal
    /// `Cancelled` outcome — not leave the future pending forever.
    #[test]
    fn cancel_wakes_parked_future_with_cancelled() {
        let co = Coordinator::new(flights_db());
        let mut f = co
            .submit_sql_async("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        co.cancel(f.id()).unwrap();
        assert_eq!(
            f.wait_timeout(std::time::Duration::from_secs(5)),
            Some(crate::future::CoordinationOutcome::Cancelled),
            "cancel must resolve the parked future"
        );
        // cancel_owner takes the same path
        let mut g = co
            .submit_sql_async("elaine", &pair_sql("Elaine", "Ghost"))
            .unwrap();
        assert_eq!(co.cancel_owner("elaine"), 1);
        assert_eq!(
            g.try_take(),
            Some(crate::future::CoordinationOutcome::Cancelled)
        );
    }

    /// Regression (async-submission PR, satellite 1): `expire_before`
    /// must wake a parked future waiter with `Expired`.
    #[test]
    fn expire_wakes_parked_future_with_expired() {
        let co = Coordinator::new(flights_db());
        let mut f = co.submit_sql_async("a", &pair_sql("A", "GhostA")).unwrap();
        let expired = co.expire_before(u64::MAX);
        assert_eq!(expired, vec![f.id()]);
        assert_eq!(
            f.wait_timeout(std::time::Duration::from_secs(5)),
            Some(crate::future::CoordinationOutcome::Expired),
            "expiry must resolve the parked future"
        );
    }

    #[test]
    fn reattach_supersedes_previous_future() {
        let co = Coordinator::new(flights_db());
        let mut old = co
            .submit_sql_async("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let mut fresh = co.reattach_async("kramer");
        assert_eq!(fresh.len(), 1);
        assert_eq!(
            old.try_take(),
            Some(crate::future::CoordinationOutcome::Superseded),
            "the replaced handle resolves instead of hanging"
        );
        // the fresh future receives the answer
        co.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let outcome = fresh[0].try_take().unwrap();
        assert!(outcome.answered().is_some());
        // a sync reattach supersedes an async handle too
        let mut h = co.submit_sql_async("b", &pair_sql("B", "GhostB")).unwrap();
        let tickets = co.reattach("b");
        assert_eq!(tickets.len(), 1);
        assert_eq!(
            h.try_take(),
            Some(crate::future::CoordinationOutcome::Superseded)
        );
    }

    #[test]
    fn recover_then_reattach_async_resumes_the_future() {
        let db = flights_db_wal();
        let co = Coordinator::new(db.clone());
        let f = co
            .submit_sql_async("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        assert!(!f.is_complete());
        let bytes = db.wal_bytes().unwrap();
        drop(f); // the front-end dies with its futures
        drop(co);

        let (co2, report) = Coordinator::recover(
            youtopia_storage::Wal::from_bytes(bytes),
            CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(report.restored_pending, 1);
        let mut futures = co2.reattach_async("kramer");
        assert_eq!(futures.len(), 1);
        co2.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let outcome = futures[0]
            .wait_timeout(std::time::Duration::from_secs(5))
            .expect("reattached future resolves");
        assert!(outcome.answered().is_some());
    }

    /// Deadline-lifecycle PR: `expire_due` retires exactly the pending
    /// queries whose deadline has passed, resolves their futures with
    /// `Expired`, and leaves deadline-less queries alone.
    #[test]
    fn expire_due_sweeps_past_deadlines_only() {
        use crate::lifecycle::SubmitOptions;

        let co = Coordinator::new(flights_db());
        let mut early = co
            .submit_sql_async_with(
                "a",
                &pair_sql("A", "GhostA"),
                SubmitOptions::with_deadline(100),
            )
            .unwrap();
        co.submit_sql_with(
            "b",
            &pair_sql("B", "GhostB"),
            SubmitOptions::with_deadline(200),
        )
        .unwrap();
        co.submit_sql("c", &pair_sql("C", "GhostC")).unwrap();
        assert_eq!(co.next_deadline(), Some(100));

        assert!(co.expire_due(99).is_empty(), "nothing due yet");
        let expired = co.expire_due(150);
        assert_eq!(expired, vec![early.id()]);
        assert_eq!(
            early.try_take(),
            Some(crate::future::CoordinationOutcome::Expired)
        );
        assert_eq!(co.next_deadline(), Some(200));
        assert_eq!(co.expire_due(1_000).len(), 1);
        assert_eq!(co.pending_count(), 1, "deadline-less query survives");
        assert_eq!(co.next_deadline(), None);
        assert_eq!(co.stats().expired, 2);
    }

    /// A deadline logged at submission survives kill + recover, and a
    /// deadline already past due at recovery time is expired before
    /// any client can reattach to it.
    #[test]
    fn recovery_restores_and_enforces_deadlines() {
        use crate::lifecycle::{MockClock, SubmitOptions};

        let db = flights_db_wal();
        let co = Coordinator::new(db.clone());
        co.submit_sql_with(
            "a",
            &pair_sql("A", "GhostA"),
            SubmitOptions::with_deadline(100),
        )
        .unwrap();
        co.submit_sql_with(
            "b",
            &pair_sql("B", "GhostB"),
            SubmitOptions::with_deadline(5_000),
        )
        .unwrap();
        let bytes = db.wal_bytes().unwrap();
        drop(co);

        // recover "at" t=900: a's deadline (100) lapsed while down
        let clock = MockClock::new(900);
        let (co2, report) = Coordinator::recover_with(
            youtopia_storage::Wal::from_bytes(bytes),
            CoordinatorConfig::default(),
            None,
            &clock,
        )
        .unwrap();
        assert_eq!(report.restored_pending, 2);
        assert_eq!(report.expired_at_recovery, 1);
        let snap = co2.pending_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].owner, "b");
        assert_eq!(snap[0].deadline, Some(5_000), "deadline rebuilt from log");
        // the recovery-time expiry was logged: a second recovery agrees
        let bytes2 = co2.db().wal_bytes().unwrap();
        drop(co2);
        let (co3, report3) = Coordinator::recover_with(
            youtopia_storage::Wal::from_bytes(bytes2),
            CoordinatorConfig::default(),
            None,
            &clock,
        )
        .unwrap();
        assert_eq!(report3.restored_pending, 1);
        assert_eq!(report3.expired_at_recovery, 0);
        assert_eq!(co3.pending_count(), 1);
    }

    #[test]
    fn matching_time_is_recorded() {
        let co = Coordinator::new(flights_db());
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        co.submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap();
        let stats = co.stats();
        assert!(stats.matching_nanos > 0);
        assert_eq!(stats.match_attempts, 2);
    }
}
