//! Unification of terms, tuples and atoms over a substitution.
//!
//! The matcher unifies answer-constraint atoms against candidate head
//! atoms while accumulating a [`Subst`]: a union-find over variables
//! where each class may carry at most one constant value. Instead of
//! cloning the structure at search branch points, the matcher takes a
//! [`Subst::mark`] before speculative unifications and rolls back with
//! [`Subst::undo_to`] on backtrack — every mutation is recorded in an
//! undo journal, so a branch costs a few journal entries rather than a
//! full copy of both maps.

use std::collections::HashMap;

use youtopia_storage::Value;

use crate::ir::{Atom, Term, Var};

/// One reversible mutation, recorded by `bind`/`union` so `undo_to` can
/// restore the exact prior state.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// `bind` inserted a fresh constant at this root.
    Bound(Var),
    /// `union` linked `ra` under `rb`; both classes' prior constants
    /// are restored on rollback.
    Linked {
        ra: Var,
        va: Option<Value>,
        rb: Var,
        vb: Option<Value>,
    },
}

/// A rollback point returned by [`Subst::mark`]; consumed by
/// [`Subst::undo_to`]. Marks are positions in the undo journal and must
/// be unwound innermost-first (LIFO), like the search stack that
/// produced them.
#[derive(Debug, Clone, Copy)]
pub struct SubstMark(usize);

/// A substitution: equivalence classes of variables, each optionally
/// bound to a constant.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    /// Union-find parent pointers (absent = self-root).
    parent: HashMap<Var, Var>,
    /// Constant binding of a *root* variable.
    value: HashMap<Var, Value>,
    /// Reversal log for `undo_to`.
    journal: Vec<UndoEntry>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// A rollback point: everything recorded after it can be unwound
    /// with [`Subst::undo_to`].
    pub fn mark(&self) -> SubstMark {
        SubstMark(self.journal.len())
    }

    /// Rolls the substitution back to `mark`, reversing every
    /// `bind`/`union` performed since. Marks must be unwound LIFO.
    pub fn undo_to(&mut self, mark: SubstMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal length checked") {
                UndoEntry::Bound(root) => {
                    self.value.remove(&root);
                }
                UndoEntry::Linked { ra, va, rb, vb } => {
                    self.parent.remove(&ra);
                    match va {
                        Some(v) => {
                            self.value.insert(ra, v);
                        }
                        None => {
                            self.value.remove(&ra);
                        }
                    }
                    match vb {
                        Some(v) => {
                            self.value.insert(rb, v);
                        }
                        None => {
                            self.value.remove(&rb);
                        }
                    }
                }
            }
        }
    }

    /// Empties the substitution for pooled reuse, retaining the maps'
    /// allocated capacity.
    pub fn reset(&mut self) {
        self.parent.clear();
        self.value.clear();
        self.journal.clear();
    }

    /// Finds the root of `v`'s equivalence class (path-compressing
    /// variant without mutation: walks the chain; chains stay short).
    pub fn root(&self, v: &Var) -> Var {
        let mut cur = v.clone();
        while let Some(p) = self.parent.get(&cur) {
            cur = p.clone();
        }
        cur
    }

    /// The constant bound to `v`'s class, if any.
    pub fn lookup(&self, v: &Var) -> Option<&Value> {
        self.value.get(&self.root(v))
    }

    /// True when `v` is bound to a constant.
    pub fn is_bound(&self, v: &Var) -> bool {
        self.lookup(v).is_some()
    }

    /// Resolves a term: a bound variable becomes its constant, an
    /// unbound variable is normalized to its class root.
    pub fn resolve(&self, t: &Term) -> Term {
        match t {
            Term::Const(v) => Term::Const(v.clone()),
            Term::Var(v) => {
                let root = self.root(v);
                match self.value.get(&root) {
                    Some(val) => Term::Const(val.clone()),
                    None => Term::Var(root),
                }
            }
        }
    }

    /// Binds `v`'s class to a constant. Fails (returns `false`) when the
    /// class is already bound to a different constant.
    pub fn bind(&mut self, v: &Var, value: Value) -> bool {
        let root = self.root(v);
        match self.value.get(&root) {
            Some(existing) => existing.sql_eq(&value) || existing == &value,
            None => {
                self.value.insert(root.clone(), value);
                self.journal.push(UndoEntry::Bound(root));
                true
            }
        }
    }

    /// Merges the classes of `a` and `b`. Fails when both classes carry
    /// conflicting constants.
    pub fn union(&mut self, a: &Var, b: &Var) -> bool {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra == rb {
            return true;
        }
        let va = self.value.get(&ra).cloned();
        let vb = self.value.get(&rb).cloned();
        match (va, vb) {
            (Some(x), Some(y)) if !(x.sql_eq(&y) || x == y) => false,
            (va, vb) => {
                // rb becomes the root of the merged class
                self.parent.insert(ra.clone(), rb.clone());
                if let Some(x) = va.clone().or(vb.clone()) {
                    self.value.insert(rb.clone(), x);
                } else {
                    self.value.remove(&rb);
                }
                self.value.remove(&ra);
                self.journal.push(UndoEntry::Linked { ra, va, rb, vb });
                true
            }
        }
    }

    /// Unifies two terms under the current substitution.
    pub fn unify_terms(&mut self, a: &Term, b: &Term) -> bool {
        match (self.resolve(a), self.resolve(b)) {
            (Term::Const(x), Term::Const(y)) => x.sql_eq(&y) || x == y,
            (Term::Const(x), Term::Var(v)) | (Term::Var(v), Term::Const(x)) => self.bind(&v, x),
            (Term::Var(v), Term::Var(w)) => self.union(&v, &w),
        }
    }

    /// Unifies two equal-length tuples of terms.
    pub fn unify_tuples(&mut self, a: &[Term], b: &[Term]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b).all(|(x, y)| self.unify_terms(x, y))
    }

    /// Unifies two atoms (same relation, same arity, unifiable terms).
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        a.compatible_with(b) && self.unify_tuples(&a.terms, &b.terms)
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            relation: atom.relation.clone(),
            terms: atom.terms.iter().map(|t| self.resolve(t)).collect(),
        }
    }

    /// Grounds an atom to values; `None` if any term is still unbound.
    pub fn ground_atom(&self, atom: &Atom) -> Option<Vec<Value>> {
        atom.terms
            .iter()
            .map(|t| match self.resolve(t) {
                Term::Const(v) => Some(v),
                Term::Var(_) => None,
            })
            .collect()
    }

    /// Grounds a tuple of terms; `None` if any is unbound.
    pub fn ground_tuple(&self, terms: &[Term]) -> Option<Vec<Value>> {
        terms
            .iter()
            .map(|t| match self.resolve(t) {
                Term::Const(v) => Some(v),
                Term::Var(_) => None,
            })
            .collect()
    }

    /// Number of variable classes tracked (diagnostics).
    pub fn tracked_vars(&self) -> usize {
        let mut roots: std::collections::HashSet<Var> = std::collections::HashSet::new();
        for v in self.parent.keys() {
            roots.insert(self.root(v));
        }
        for v in self.value.keys() {
            roots.insert(self.root(v));
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn bind_and_lookup() {
        let mut s = Subst::new();
        assert!(s.bind(&v("x"), Value::Int(1)));
        assert_eq!(s.lookup(&v("x")), Some(&Value::Int(1)));
        assert!(s.bind(&v("x"), Value::Int(1))); // idempotent
        assert!(!s.bind(&v("x"), Value::Int(2))); // conflict
    }

    #[test]
    fn union_propagates_values_both_directions() {
        let mut s = Subst::new();
        assert!(s.bind(&v("x"), Value::Int(5)));
        assert!(s.union(&v("x"), &v("y")));
        assert_eq!(s.lookup(&v("y")), Some(&Value::Int(5)));

        let mut s2 = Subst::new();
        assert!(s2.union(&v("a"), &v("b")));
        assert!(s2.bind(&v("a"), Value::from("Paris")));
        assert_eq!(s2.lookup(&v("b")), Some(&Value::from("Paris")));
    }

    #[test]
    fn union_conflict_detected() {
        let mut s = Subst::new();
        s.bind(&v("x"), Value::Int(1));
        s.bind(&v("y"), Value::Int(2));
        assert!(!s.union(&v("x"), &v("y")));
    }

    #[test]
    fn union_same_value_ok() {
        let mut s = Subst::new();
        s.bind(&v("x"), Value::Int(1));
        s.bind(&v("y"), Value::Int(1));
        assert!(s.union(&v("x"), &v("y")));
    }

    #[test]
    fn transitive_union() {
        let mut s = Subst::new();
        assert!(s.union(&v("a"), &v("b")));
        assert!(s.union(&v("b"), &v("c")));
        assert!(s.bind(&v("c"), Value::Int(9)));
        assert_eq!(s.lookup(&v("a")), Some(&Value::Int(9)));
        assert_eq!(s.root(&v("a")), s.root(&v("c")));
    }

    #[test]
    fn unify_terms_cases() {
        let mut s = Subst::new();
        // const-const
        assert!(s.unify_terms(&Term::constant(1i64), &Term::constant(1i64)));
        assert!(!s.unify_terms(&Term::constant(1i64), &Term::constant(2i64)));
        // numeric bridging
        assert!(s.unify_terms(&Term::constant(1i64), &Term::constant(1.0)));
        // var-const
        assert!(s.unify_terms(&Term::var("x"), &Term::constant("Paris")));
        assert_eq!(s.lookup(&v("x")), Some(&Value::from("Paris")));
        // var-var then const flows
        assert!(s.unify_terms(&Term::var("y"), &Term::var("z")));
        assert!(s.unify_terms(&Term::var("z"), &Term::constant(3i64)));
        assert_eq!(s.lookup(&v("y")), Some(&Value::Int(3)));
    }

    #[test]
    fn unify_the_papers_example() {
        // Kramer's constraint: Reservation('Jerry', ?k.fno)
        // Jerry's head:        Reservation('Jerry', ?j.fno)
        let constraint = Atom::new(
            "Reservation",
            vec![Term::constant("Jerry"), Term::var("k.fno")],
        );
        let head = Atom::new(
            "Reservation",
            vec![Term::constant("Jerry"), Term::var("j.fno")],
        );
        let mut s = Subst::new();
        assert!(s.unify_atoms(&constraint, &head));
        // the two fno variables are now the same class
        assert!(s.bind(&v("k.fno"), Value::Int(122)));
        assert_eq!(s.lookup(&v("j.fno")), Some(&Value::Int(122)));
    }

    #[test]
    fn unify_rejects_mismatched_atoms() {
        let a = Atom::new("R", vec![Term::var("x")]);
        let b = Atom::new("S", vec![Term::var("y")]);
        let c = Atom::new("R", vec![Term::var("x"), Term::var("y")]);
        let mut s = Subst::new();
        assert!(!s.unify_atoms(&a, &b));
        assert!(!s.unify_atoms(&a, &c));
        // constant clash
        let d = Atom::new("R", vec![Term::constant("Kramer")]);
        let e = Atom::new("R", vec![Term::constant("Jerry")]);
        assert!(!s.unify_atoms(&d, &e));
    }

    #[test]
    fn resolve_and_ground() {
        let mut s = Subst::new();
        s.bind(&v("x"), Value::Int(1));
        let atom = Atom::new(
            "R",
            vec![Term::var("x"), Term::var("y"), Term::constant(0i64)],
        );
        let applied = s.apply_atom(&atom);
        assert_eq!(applied.terms[0], Term::constant(1i64));
        assert!(matches!(applied.terms[1], Term::Var(_)));
        assert!(s.ground_atom(&atom).is_none());
        s.bind(&v("y"), Value::Int(2));
        assert_eq!(
            s.ground_atom(&atom),
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(0)])
        );
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut s = Subst::new();
        s.bind(&v("x"), Value::Int(1));
        let snapshot = s.clone();
        s.bind(&v("y"), Value::Int(2));
        assert!(snapshot.lookup(&v("y")).is_none());
        assert_eq!(snapshot.lookup(&v("x")), Some(&Value::Int(1)));
    }

    #[test]
    fn undo_restores_bind_and_union() {
        let mut s = Subst::new();
        assert!(s.bind(&v("x"), Value::Int(1)));
        let mark = s.mark();
        assert!(s.bind(&v("y"), Value::Int(2)));
        assert!(s.union(&v("x"), &v("z")));
        assert!(s.union(&v("z"), &v("w")));
        assert_eq!(s.lookup(&v("w")), Some(&Value::Int(1)));
        s.undo_to(mark);
        // everything after the mark is gone...
        assert!(s.lookup(&v("y")).is_none());
        assert_ne!(s.root(&v("x")), s.root(&v("z")));
        assert_ne!(s.root(&v("z")), s.root(&v("w")));
        // ...and everything before it survives
        assert_eq!(s.lookup(&v("x")), Some(&Value::Int(1)));
    }

    #[test]
    fn undo_restores_union_carried_values() {
        // union moves `ra`'s constant onto `rb`; rollback must move it
        // back without leaking the value onto the other class.
        let mut s = Subst::new();
        assert!(s.bind(&v("a"), Value::from("Paris")));
        let mark = s.mark();
        assert!(s.union(&v("a"), &v("b")));
        assert_eq!(s.lookup(&v("b")), Some(&Value::from("Paris")));
        s.undo_to(mark);
        assert_eq!(s.lookup(&v("a")), Some(&Value::from("Paris")));
        assert!(s.lookup(&v("b")).is_none());
    }

    #[test]
    fn nested_marks_unwind_lifo() {
        let mut s = Subst::new();
        let outer = s.mark();
        assert!(s.bind(&v("x"), Value::Int(1)));
        let inner = s.mark();
        assert!(s.bind(&v("y"), Value::Int(2)));
        s.undo_to(inner);
        assert!(s.lookup(&v("y")).is_none());
        assert_eq!(s.lookup(&v("x")), Some(&Value::Int(1)));
        // a failed bind journals nothing, so undo stays exact
        assert!(!s.bind(&v("x"), Value::Int(9)));
        s.undo_to(outer);
        assert!(s.lookup(&v("x")).is_none());
        assert_eq!(s.tracked_vars(), 0);
    }

    #[test]
    fn reset_clears_for_reuse() {
        let mut s = Subst::new();
        s.bind(&v("x"), Value::Int(1));
        s.union(&v("x"), &v("y"));
        s.reset();
        assert!(s.lookup(&v("x")).is_none());
        assert_eq!(s.tracked_vars(), 0);
        assert_eq!(s.mark().0, 0);
    }

    #[test]
    fn tracked_vars_counts_classes() {
        let mut s = Subst::new();
        s.union(&v("a"), &v("b"));
        s.bind(&v("c"), Value::Int(1));
        assert_eq!(s.tracked_vars(), 2);
    }
}
