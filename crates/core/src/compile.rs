//! Compilation of parsed entangled queries ([`EntangledSelect`]) into
//! the coordination IR ([`EntangledQuery`]).
//!
//! The lowering classifies each top-level `WHERE` conjunct:
//!
//! * `(...) [NOT] IN ANSWER R`      → an answer constraint;
//! * `(...) [NOT] IN (SELECT ...)`  → a membership predicate;
//! * anything else                  → a residual filter over variables.
//!
//! Free (unqualified, unbound) identifiers are coordination variables.
//! Answer-relation references may only appear as top-level conjuncts —
//! nesting them under `OR`/`NOT` would require disjunctive coordination,
//! which the paper's system (and this one) does not support.

use youtopia_sql::{parse_statement, EntangledSelect, Expr, Statement};

use crate::error::{CoreError, CoreResult};
use crate::ir::{AnswerConstraint, Atom, EntangledQuery, Filter, Membership, Term, Var};

/// Parses SQL text and compiles it; errors if the statement is not an
/// entangled query.
pub fn compile_sql(sql: &str) -> CoreResult<EntangledQuery> {
    let stmt = parse_statement(sql).map_err(|e| CoreError::Parse(e.to_string()))?;
    match stmt {
        Statement::Entangled(ent) => compile(&ent, sql),
        _ => Err(CoreError::NotEntangled),
    }
}

/// Compiles a parsed entangled query. `sql` is kept verbatim for the
/// admin interface.
pub fn compile(ent: &EntangledSelect, sql: &str) -> CoreResult<EntangledQuery> {
    if ent.heads.is_empty() {
        return Err(CoreError::Compile(
            "entangled query has no INTO ANSWER head".into(),
        ));
    }
    if ent.choose != 1 {
        return Err(CoreError::Compile(format!(
            "CHOOSE {} is not supported: this implementation answers each query with \
             exactly one coordinated tuple (CHOOSE 1), as in the paper's demonstration",
            ent.choose
        )));
    }

    let mut heads = Vec::new();
    for head in &ent.heads {
        if head.exprs.is_empty() {
            return Err(CoreError::Compile(
                "entangled head has an empty tuple".into(),
            ));
        }
        let terms = terms_from_exprs(&head.exprs, "head")?;
        for relation in &head.relations {
            heads.push(Atom::new(relation.clone(), terms.clone()));
        }
    }

    let mut memberships = Vec::new();
    let mut filters = Vec::new();
    let mut constraints = Vec::new();

    if let Some(where_clause) = &ent.where_clause {
        for conjunct in where_clause.conjuncts() {
            match conjunct {
                Expr::InAnswer {
                    exprs,
                    relation,
                    negated,
                } => {
                    let terms = terms_from_exprs(exprs, "answer constraint")?;
                    constraints.push(AnswerConstraint {
                        atom: Atom::new(relation.clone(), terms),
                        negated: *negated,
                    });
                }
                Expr::InSubquery {
                    exprs,
                    query,
                    negated,
                } => {
                    let terms = terms_from_exprs(exprs, "membership predicate")?;
                    memberships.push(Membership {
                        terms,
                        select: (**query).clone(),
                        negated: *negated,
                    });
                }
                other => {
                    check_no_nested_coordination(other)?;
                    let vars = collect_vars(other)?;
                    filters.push(Filter {
                        expr: other.clone(),
                        vars,
                    });
                }
            }
        }
    }

    Ok(EntangledQuery {
        heads,
        memberships,
        filters,
        constraints,
        choose: ent.choose,
        sql: sql.to_string(),
    })
}

/// Converts head / constraint tuple expressions into terms: literals and
/// free identifiers only.
fn terms_from_exprs(exprs: &[Expr], position: &str) -> CoreResult<Vec<Term>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Literal(v) => Ok(Term::Const(v.clone())),
            Expr::Column { table: None, name } => Ok(Term::Var(Var::new(name.clone()))),
            Expr::Column {
                table: Some(t),
                name,
            } => Err(CoreError::Compile(format!(
                "qualified reference '{t}.{name}' in an entangled {position}: entangled \
                 queries have no FROM clause, use bare variables"
            ))),
            other => Err(CoreError::Compile(format!(
                "expression '{other}' in an entangled {position}: only constants and \
                 variables are allowed"
            ))),
        })
        .collect()
}

/// Rejects `IN ANSWER` / `IN (SELECT ...)` nested below the top-level
/// conjunction.
fn check_no_nested_coordination(expr: &Expr) -> CoreResult<()> {
    let nested = find_nested(expr);
    match nested {
        Some(kind) => Err(CoreError::Compile(format!(
            "{kind} must be a top-level conjunct of the WHERE clause (disjunctive or \
             negated coordination is not supported)"
        ))),
        None => Ok(()),
    }
}

fn find_nested(expr: &Expr) -> Option<&'static str> {
    match expr {
        Expr::InAnswer { .. } => Some("an answer constraint (IN ANSWER)"),
        Expr::InSubquery { .. } | Expr::Exists { .. } => {
            Some("a membership predicate (IN (SELECT ...))")
        }
        Expr::Unary { expr, .. } => find_nested(expr),
        Expr::Binary { left, right, .. } => find_nested(left).or_else(|| find_nested(right)),
        Expr::IsNull { expr, .. } => find_nested(expr),
        Expr::InList { expr, list, .. } => {
            find_nested(expr).or_else(|| list.iter().find_map(find_nested))
        }
        Expr::Between {
            expr, low, high, ..
        } => find_nested(expr)
            .or_else(|| find_nested(low))
            .or_else(|| find_nested(high)),
        Expr::Like { expr, pattern, .. } => find_nested(expr).or_else(|| find_nested(pattern)),
        Expr::Function { args, .. } => args.iter().find_map(find_nested),
        Expr::Tuple(list) => list.iter().find_map(find_nested),
        Expr::Literal(_) | Expr::Column { .. } => None,
    }
}

/// Collects the variables (free identifiers) of a filter expression.
fn collect_vars(expr: &Expr) -> CoreResult<Vec<Var>> {
    let mut out = Vec::new();
    collect_vars_into(expr, &mut out)?;
    out.dedup();
    Ok(out)
}

fn collect_vars_into(expr: &Expr, out: &mut Vec<Var>) -> CoreResult<()> {
    match expr {
        Expr::Column { table: None, name } => {
            let v = Var::new(name.clone());
            if !out.contains(&v) {
                out.push(v);
            }
            Ok(())
        }
        Expr::Column {
            table: Some(t),
            name,
        } => Err(CoreError::Compile(format!(
            "qualified reference '{t}.{name}' in an entangled filter"
        ))),
        Expr::Literal(_) => Ok(()),
        Expr::Unary { expr, .. } => collect_vars_into(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_vars_into(left, out)?;
            collect_vars_into(right, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_vars_into(a, out)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } => collect_vars_into(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_vars_into(expr, out)?;
            for e in list {
                collect_vars_into(e, out)?;
            }
            Ok(())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_vars_into(expr, out)?;
            collect_vars_into(low, out)?;
            collect_vars_into(high, out)
        }
        Expr::Like { expr, pattern, .. } => {
            collect_vars_into(expr, out)?;
            collect_vars_into(pattern, out)
        }
        Expr::InSubquery { .. } | Expr::InAnswer { .. } | Expr::Exists { .. } | Expr::Tuple(_) => {
            Err(CoreError::Internal(
                "nested coordination should have been rejected earlier".into(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    const KRAMER: &str = "SELECT 'Kramer', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
         AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1";

    #[test]
    fn compiles_the_papers_kramer_query() {
        let q = compile_sql(KRAMER).unwrap();
        assert_eq!(q.heads.len(), 1);
        assert_eq!(q.heads[0].relation, "Reservation");
        assert_eq!(q.heads[0].terms[0], Term::Const(Value::from("Kramer")));
        assert_eq!(q.heads[0].terms[1], Term::var("fno"));
        assert_eq!(q.memberships.len(), 1);
        assert_eq!(q.memberships[0].terms, vec![Term::var("fno")]);
        assert!(!q.memberships[0].negated);
        assert_eq!(q.constraints.len(), 1);
        assert_eq!(
            q.constraints[0].atom,
            Atom::new(
                "Reservation",
                vec![Term::constant("Jerry"), Term::var("fno")]
            )
        );
        assert!(q.filters.is_empty());
        assert_eq!(q.choose, 1);
        assert_eq!(q.sql, KRAMER);
    }

    #[test]
    fn multi_head_flight_and_hotel() {
        let q = compile_sql(
            "SELECT 'Jerry', fno INTO ANSWER Res, 'Jerry', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights) AND hid IN (SELECT hid FROM Hotels) \
             AND ('Kramer', fno) IN ANSWER Res AND ('Kramer', hid) IN ANSWER HotelRes \
             CHOOSE 1",
        )
        .unwrap();
        assert_eq!(q.heads.len(), 2);
        assert_eq!(q.memberships.len(), 2);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.all_vars(), vec![Var::new("fno"), Var::new("hid")]);
    }

    #[test]
    fn same_tuple_into_two_relations() {
        let q = compile_sql(
            "SELECT 'K', x INTO ANSWER R1, ANSWER R2 \
                             WHERE x IN (SELECT a FROM t) CHOOSE 1",
        )
        .unwrap();
        assert_eq!(q.heads.len(), 2);
        assert_eq!(q.heads[0].relation, "R1");
        assert_eq!(q.heads[1].relation, "R2");
        assert_eq!(q.heads[0].terms, q.heads[1].terms);
    }

    #[test]
    fn filters_are_separated() {
        let q = compile_sql(
            "SELECT 'K', fno, price INTO ANSWER R \
             WHERE (fno, price) IN (SELECT fno, price FROM Flights) \
             AND price < 500 AND ('J', fno) IN ANSWER R CHOOSE 1",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].vars, vec![Var::new("price")]);
        assert_eq!(q.filters[0].expr.to_string(), "price < 500");
    }

    #[test]
    fn negated_constraint_and_membership() {
        let q = compile_sql(
            "SELECT 'K', x INTO ANSWER R \
             WHERE x IN (SELECT a FROM t) AND x NOT IN (SELECT b FROM u) \
             AND ('J', x) NOT IN ANSWER R CHOOSE 1",
        )
        .unwrap();
        assert_eq!(q.memberships.len(), 2);
        assert!(!q.memberships[0].negated);
        assert!(q.memberships[1].negated);
        assert!(q.constraints[0].negated);
    }

    #[test]
    fn choose_other_than_one_rejected() {
        let err = compile_sql("SELECT 'K', x INTO ANSWER R CHOOSE 2").unwrap_err();
        assert!(matches!(err, CoreError::Compile(msg) if msg.contains("CHOOSE 2")));
        let err = compile_sql("SELECT 'K', x INTO ANSWER R CHOOSE 0").unwrap_err();
        assert!(matches!(err, CoreError::Compile(_)));
    }

    #[test]
    fn non_entangled_rejected() {
        assert!(matches!(
            compile_sql("SELECT 1"),
            Err(CoreError::NotEntangled)
        ));
        assert!(matches!(
            compile_sql("INSERT INTO t VALUES (1)"),
            Err(CoreError::NotEntangled)
        ));
        assert!(matches!(compile_sql("SELEC"), Err(CoreError::Parse(_))));
    }

    #[test]
    fn qualified_refs_rejected() {
        let err = compile_sql("SELECT 'K', t.x INTO ANSWER R CHOOSE 1").unwrap_err();
        assert!(matches!(err, CoreError::Compile(msg) if msg.contains("t.x")));
        let err = compile_sql("SELECT 'K', x INTO ANSWER R WHERE t.y = 1 CHOOSE 1").unwrap_err();
        assert!(matches!(err, CoreError::Compile(_)));
    }

    #[test]
    fn computed_head_expressions_rejected() {
        let err = compile_sql("SELECT x + 1 INTO ANSWER R CHOOSE 1").unwrap_err();
        assert!(matches!(err, CoreError::Compile(msg) if msg.contains("constants and")));
    }

    #[test]
    fn nested_coordination_rejected() {
        // IN ANSWER under OR
        let err = compile_sql(
            "SELECT 'K', x INTO ANSWER R \
             WHERE x = 1 OR ('J', x) IN ANSWER R CHOOSE 1",
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Compile(msg) if msg.contains("top-level")));
        // subquery under NOT
        let err = compile_sql(
            "SELECT 'K', x INTO ANSWER R \
             WHERE NOT (x IN (SELECT a FROM t) AND x = 2) CHOOSE 1",
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Compile(_)));
    }

    #[test]
    fn filter_with_multiple_vars() {
        let q = compile_sql("SELECT 'K', x, y INTO ANSWER R WHERE x <> y AND x < y + 2 CHOOSE 1")
            .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0].vars, vec![Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn scalar_in_list_is_a_filter() {
        let q = compile_sql("SELECT 'K', x INTO ANSWER R WHERE x IN (1, 2, 3) CHOOSE 1").unwrap();
        assert!(q.memberships.is_empty());
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].vars, vec![Var::new("x")]);
    }
}
