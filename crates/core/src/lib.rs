//! # youtopia-core
//!
//! The coordination component of the Youtopia reproduction — the
//! primary contribution of *Coordination through Querying in the
//! Youtopia System* (SIGMOD 2011 demonstration).
//!
//! Entangled queries "can only be answered in conjunction with other
//! entangled queries posed by other users"; the system "evaluates sets
//! of such queries jointly in order to ensure coordinated answers".
//! This crate provides exactly that machinery:
//!
//! * [`mod@compile`] — lowers parsed entangled SQL into the IR ([`ir`]);
//! * [`safety`] — the range-restriction analysis that keeps matching
//!   tractable (after the companion technical paper);
//! * [`registry`] — the pending-query store with a constant-position
//!   candidate index;
//! * [`matcher`] — the incremental group-matching algorithm plus the
//!   exhaustive baseline, sharing a CSP-style grounding phase;
//! * [`coordinator`] — the public facade: submit / wait / notify /
//!   atomic application of matches to the database.
//!
//! ## The paper's walkthrough, end to end
//!
//! ```
//! use youtopia_storage::Database;
//! use youtopia_exec::run_sql;
//! use youtopia_core::{Coordinator, Submission};
//!
//! let db = Database::new();
//! run_sql(&db, "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)").unwrap();
//! run_sql(&db, "INSERT INTO Flights VALUES (122,'Paris'), (123,'Paris'), \
//!               (134,'Paris'), (136,'Rome')").unwrap();
//!
//! let co = Coordinator::new(db);
//! // Kramer's query waits: nobody satisfies its postcondition yet.
//! let kramer = co.submit_sql("kramer",
//!     "SELECT 'Kramer', fno INTO ANSWER Reservation \
//!      WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
//!      AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1").unwrap();
//! let Submission::Pending(ticket) = kramer else { panic!() };
//!
//! // Jerry's symmetric query arrives: both are answered jointly.
//! let jerry = co.submit_sql("jerry",
//!     "SELECT 'Jerry', fno INTO ANSWER Reservation \
//!      WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
//!      AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1").unwrap();
//! let jerry = jerry.answered().expect("group completed");
//! let kramer = ticket.receiver.try_recv().expect("kramer notified");
//!
//! // Same (nondeterministically chosen) Paris flight for both.
//! assert_eq!(jerry.answers[0].1.values()[1], kramer.answers[0].1.values()[1]);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod compile;
pub mod coordinator;
pub mod engine;
pub mod error;
pub mod future;
pub mod ir;
pub mod lifecycle;
pub mod matcher;
pub mod registry;
pub mod safety;
pub mod shard;
pub mod tenant;
pub mod unify;

pub use audit::{
    latency_bucket, latency_histogram, tenant_audit, AuditConfig, AuditRecord, LatencyBucket,
    AUDIT_TABLE, LATENCY_TABLE,
};
pub use compile::{compile, compile_sql};
pub use coordinator::{
    ApplyHook, Coordinator, CoordinatorConfig, MatchEdge, MatchGraph, MatchNotification,
    MatcherKind, PendingInfo, RecoveryReport, Submission, SystemStats, Ticket,
};
pub use engine::{CoordEvent, CoordinationLog, RegStamp};
pub use error::{CoreError, CoreResult};
pub use future::{CoordinationFuture, CoordinationOutcome, WaiterSet};
pub use ir::{AnswerConstraint, Atom, EntangledQuery, Filter, Membership, QueryId, Term, Var};
pub use lifecycle::{
    Clock, DeadlineHost, DeadlineSweeper, MockClock, SubmitOptions, SweepSignal, SystemClock,
};
pub use matcher::{GroupMatch, MatchConfig, MatchStats};
pub use registry::{CandidateScan, HeadRef, Pending, Registry};
pub use safety::{check_safety, is_self_contained, SafetyMode};
pub use shard::{BatchOutcome, CheckpointPolicy, ShardedConfig, ShardedCoordinator};
pub use tenant::{tenant_of, TenantOutcome, TenantQuotas, TenantRegistry, TenantStats};
pub use unify::Subst;
