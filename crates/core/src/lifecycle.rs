//! The deadline-driven query lifecycle: clocks, the sweep signal, and
//! the background [`DeadlineSweeper`].
//!
//! The paper's entangled queries are standing registrations — "a query
//! whose postcondition is not satisfied ... waits for an opportunity to
//! retry" — but a serving system must bound that wait in time. This
//! module makes wall-clock time a first-class axis of the coordination
//! lifecycle instead of an external poke:
//!
//! * a submission may carry an absolute **deadline**
//!   ([`SubmitOptions::deadline`], milliseconds in the domain of the
//!   system's [`Clock`]);
//! * deadlines are durable — they ride the registration's WAL frame
//!   (the v2 [`crate::CoordEvent::QueryRegistered`] encoding), survive
//!   checkpoints, and are rebuilt by recovery;
//! * both coordinators expose `expire_due(now)`, a sweep that retires
//!   every pending query whose deadline has passed, logging each
//!   expiry before the removal (log-before-ack, like every other
//!   registry mutation) and resolving parked waiters — sync tickets
//!   disconnect, futures resolve [`crate::CoordinationOutcome::Expired`];
//! * the [`DeadlineSweeper`] drives those sweeps from a background
//!   thread, waking only when the earliest deadline is due (a
//!   min-deadline hint per shard keeps the idle cost at zero).
//!
//! # Clock injection
//!
//! Time is injected through the [`Clock`] trait so the test suite never
//! sleeps on the wall clock: [`SystemClock`] is real time (milliseconds
//! since the UNIX epoch), [`MockClock`] is a test clock whose
//! [`MockClock::advance`] both moves time and pokes the sweeper through
//! the same [`SweepSignal`] a real registration would. A sweeper on a
//! mock clock parks indefinitely between signals; a sweeper on the
//! system clock parks with a timeout to the next due deadline.
//!
//! # Wakeup protocol
//!
//! The sweeper loops: sweep (`expire_due(now)`), read the earliest
//! remaining deadline, then wait on the host's [`SweepSignal`] — with a
//! timeout to that deadline under a real clock, indefinitely under a
//! mock clock or when nothing carries a deadline. The signal's
//! generation counter is snapshotted *before* the sweep, so a deadline
//! registered while the sweeper was sweeping makes the wait return
//! immediately instead of being missed. Registrations notify the
//! signal only when they carry a deadline (and after the shard lock is
//! released, so the sweeper's next read sees the published hint); see
//! `docs/lifecycle.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::ir::QueryId;

/// Per-submission options. Today this carries the optional deadline;
/// the plain `submit*` signatures are thin wrappers passing
/// `SubmitOptions::default()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Absolute deadline in milliseconds (in the coordinator clock's
    /// domain — UNIX-epoch milliseconds under [`SystemClock`]). A
    /// pending query past its deadline is retired by the next
    /// `expire_due` sweep: the expiry is logged, the registry entry
    /// removed, and the waiter resolved with
    /// [`crate::CoordinationOutcome::Expired`]. `None` (the default)
    /// means the query waits forever, exactly as before.
    pub deadline: Option<u64>,
}

impl SubmitOptions {
    /// Options carrying an absolute deadline.
    pub fn with_deadline(deadline_millis: u64) -> SubmitOptions {
        SubmitOptions {
            deadline: Some(deadline_millis),
        }
    }
}

/// A source of milliseconds, injectable so deadline tests are
/// deterministic (no wall-clock sleeps anywhere in the suite).
pub trait Clock: Send + Sync {
    /// The current time in milliseconds.
    fn now_millis(&self) -> u64;

    /// How long a sweeper may sleep before `deadline_millis` is due.
    /// Real clocks return `Some(duration)`; mock clocks return `None`
    /// — their time only moves through an explicit advance, which
    /// notifies the sweeper itself, so sleeping on real time would be
    /// meaningless.
    fn timeout_until(&self, deadline_millis: u64) -> Option<Duration>;

    /// Hands the clock the signal a sweeper waits on, so a mock clock
    /// can wake the sweeper when its time jumps. Real clocks ignore it.
    fn attach(&self, _signal: Arc<SweepSignal>) {}
}

/// Real time: milliseconds since the UNIX epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    fn timeout_until(&self, deadline_millis: u64) -> Option<Duration> {
        Some(Duration::from_millis(
            deadline_millis.saturating_sub(self.now_millis()).max(1),
        ))
    }
}

/// A manually advanced test clock. `advance`/`set` move time and poke
/// every attached sweeper, so a test drives expiry by advancing the
/// clock and then observing the (event-driven) outcome — never by
/// sleeping.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
    signals: Mutex<Vec<Arc<SweepSignal>>>,
}

impl MockClock {
    /// A mock clock starting at `now_millis`.
    pub fn new(now_millis: u64) -> MockClock {
        MockClock {
            now: AtomicU64::new(now_millis),
            signals: Mutex::new(Vec::new()),
        }
    }

    /// Moves time forward by `delta_millis` and wakes attached
    /// sweepers.
    pub fn advance(&self, delta_millis: u64) {
        self.now.fetch_add(delta_millis, Ordering::SeqCst);
        self.tick();
    }

    /// Jumps time to `now_millis` (monotonicity is the caller's
    /// responsibility) and wakes attached sweepers.
    pub fn set(&self, now_millis: u64) {
        self.now.store(now_millis, Ordering::SeqCst);
        self.tick();
    }

    fn tick(&self) {
        let signals = self.signals.lock().unwrap_or_else(|e| e.into_inner());
        for signal in signals.iter() {
            signal.notify();
        }
    }
}

impl Clock for MockClock {
    fn now_millis(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn timeout_until(&self, _deadline_millis: u64) -> Option<Duration> {
        None // mock time never advances on its own
    }

    fn attach(&self, signal: Arc<SweepSignal>) {
        self.signals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(signal);
    }
}

#[derive(Debug)]
struct SignalState {
    generation: u64,
    shutdown: bool,
}

/// The wakeup channel between a coordinator and its sweeper: a
/// generation counter bumped by every notification (deadline-carrying
/// registration, mock-clock advance, shutdown) and the condvar the
/// sweeper sleeps on. Notifications are level-triggered through the
/// generation, so one arriving *while the sweeper is mid-sweep* makes
/// the next wait return immediately instead of being lost.
#[derive(Debug)]
pub struct SweepSignal {
    state: Mutex<SignalState>,
    condvar: Condvar,
}

impl Default for SweepSignal {
    fn default() -> Self {
        SweepSignal::new()
    }
}

impl SweepSignal {
    /// A fresh signal.
    pub fn new() -> SweepSignal {
        SweepSignal {
            state: Mutex::new(SignalState {
                generation: 0,
                shutdown: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Wakes the sweeper (something about the deadline landscape
    /// changed: an earlier deadline registered, or mock time moved).
    pub fn notify(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.generation += 1;
        drop(state);
        self.condvar.notify_all();
    }

    /// Asks the sweeper to exit its loop.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        drop(state);
        self.condvar.notify_all();
    }

    /// The current generation (snapshot before deriving the next
    /// deadline; pass to [`SweepSignal::wait_past`]).
    pub fn generation(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation
    }

    /// Blocks until the generation moves past `seen`, `timeout`
    /// elapses (`None` = wait indefinitely), or shutdown. Returns
    /// `true` when shutdown was requested.
    pub fn wait_past(&self, seen: u64, timeout: Option<Duration>) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            if state.shutdown {
                return true;
            }
            if state.generation != seen {
                return false;
            }
            match deadline {
                None => {
                    state = self.condvar.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return false; // timed out: the deadline is due
                    }
                    state = self
                        .condvar
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }
}

/// What a [`DeadlineSweeper`] needs from a coordinator. Implemented by
/// both [`crate::Coordinator`] and [`crate::ShardedCoordinator`]; the
/// methods are lock-free where the coordinator can make them so (the
/// sharded `next_deadline_millis` reads per-shard monitor atomics).
pub trait DeadlineHost: Send + Sync {
    /// The earliest deadline of any pending query, or `None` when no
    /// pending query carries one.
    fn next_deadline_millis(&self) -> Option<u64>;

    /// Retires every pending query whose deadline is at or before
    /// `now_millis` (logged before removal; waiters resolve
    /// [`crate::CoordinationOutcome::Expired`]). Returns the expired
    /// ids.
    fn expire_due(&self, now_millis: u64) -> Vec<QueryId>;

    /// The signal this coordinator notifies when a deadline-carrying
    /// query registers (the sweeper waits on it).
    fn sweep_signal(&self) -> Arc<SweepSignal>;

    /// Periodic housekeeping, called once per sweeper wakeup right
    /// after the expiry sweep: hosts refresh monitoring gauges and
    /// evaluate time-based maintenance policies (e.g.
    /// [`crate::shard::CheckpointPolicy`]) here. The default does
    /// nothing.
    fn sweep_tick(&self, _now_millis: u64) {}
}

/// A background thread that drives `expire_due` sweeps off the host's
/// min-deadline hint: it wakes when the earliest deadline is due
/// (system clock) or when the host/clock notifies it (new earlier
/// deadline, mock-clock advance), sweeps, and goes back to sleep. A
/// host with no deadlines costs the sweeper zero CPU.
///
/// Dropping the sweeper shuts the thread down and joins it.
pub struct DeadlineSweeper {
    signal: Arc<SweepSignal>,
    swept: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineSweeper {
    /// Spawns a sweeper over `host`, timed by `clock`.
    pub fn spawn(host: Arc<dyn DeadlineHost>, clock: Arc<dyn Clock>) -> DeadlineSweeper {
        let signal = host.sweep_signal();
        clock.attach(Arc::clone(&signal));
        let swept = Arc::new(AtomicU64::new(0));
        let handle = {
            let signal = Arc::clone(&signal);
            let swept = Arc::clone(&swept);
            std::thread::Builder::new()
                .name("deadline-sweeper".into())
                .spawn(move || loop {
                    // snapshot BEFORE sweeping: a deadline registered
                    // during the sweep bumps the generation and the
                    // wait below returns immediately
                    let seen = signal.generation();
                    let now = clock.now_millis();
                    let expired = host.expire_due(now);
                    swept.fetch_add(expired.len() as u64, Ordering::Relaxed);
                    host.sweep_tick(clock.now_millis());
                    let timeout = match host.next_deadline_millis() {
                        Some(d) if d <= clock.now_millis() => {
                            if expired.is_empty() {
                                // a due deadline the sweep could not
                                // retire (log-before-ack refused: e.g.
                                // the WAL write failed): back off
                                // instead of hammering the log in a
                                // hot loop; a notify still wakes us
                                // early
                                Some(Duration::from_millis(100))
                            } else {
                                // time moved during a productive
                                // sweep: sweep again without sleeping
                                continue;
                            }
                        }
                        Some(d) => clock.timeout_until(d),
                        None => None,
                    };
                    if signal.wait_past(seen, timeout) {
                        return; // shutdown
                    }
                })
                .expect("spawn deadline sweeper")
        };
        DeadlineSweeper {
            signal,
            swept,
            handle: Some(handle),
        }
    }

    /// Total queries expired by this sweeper's sweeps.
    pub fn swept(&self) -> u64 {
        self.swept.load(Ordering::Relaxed)
    }

    /// Stops the sweeper thread and joins it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.signal.shutdown();
            let _ = handle.join();
        }
    }
}

impl Drop for DeadlineSweeper {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_and_notifies() {
        let clock = MockClock::new(100);
        let signal = Arc::new(SweepSignal::new());
        clock.attach(Arc::clone(&signal));
        let before = signal.generation();
        clock.advance(50);
        assert_eq!(clock.now_millis(), 150);
        assert_ne!(signal.generation(), before);
        clock.set(1000);
        assert_eq!(clock.now_millis(), 1000);
        assert_eq!(clock.timeout_until(2000), None);
    }

    #[test]
    fn system_clock_timeout_is_bounded_below() {
        let clock = SystemClock;
        let now = clock.now_millis();
        assert!(now > 0);
        // a deadline in the past still yields a (minimal) timeout
        assert!(clock.timeout_until(0).unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn wait_past_sees_notify_and_shutdown() {
        let signal = Arc::new(SweepSignal::new());
        let seen = signal.generation();
        signal.notify();
        assert!(!signal.wait_past(seen, None), "generation moved: no wait");
        let seen = signal.generation();
        // timed wait expires without a notification
        assert!(!signal.wait_past(seen, Some(Duration::from_millis(5))));
        signal.shutdown();
        assert!(signal.wait_past(seen, None), "shutdown reported");
    }
}
