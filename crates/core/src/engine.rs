//! The shared match engine: per-registry coordination logic used by
//! both the serial [`crate::Coordinator`] and every shard of the
//! [`crate::ShardedCoordinator`] — plus the **coordination log**, the
//! durable event stream that makes both coordinators crash-recoverable.
//!
//! A [`ShardState`] is one independent matching domain: a pending-query
//! registry, the RNG that resolves `CHOOSE` nondeterminism, waiter
//! channels, and counters. The [`Engine`] owns nothing mutable — it
//! borrows a `ShardState` for each operation, so callers decide the
//! locking granularity (one global mutex for the serial coordinator,
//! one mutex per shard for the sharded one).
//!
//! # The coordination log
//!
//! Every registry mutation is recorded as a [`CoordEvent`] in the
//! storage WAL **before it is acknowledged** (the log-before-ack
//! invariant): registrations, cancellations and expirations are
//! appended through the [`CoordinationLog`] group-commit handle, and a
//! [`CoordEvent::MatchCommitted`] frame rides *inside* the storage
//! transaction that inserts the match's answer tuples, so a match and
//! its answers are exactly as durable as each other. Replaying the log
//! (`registered − (matched ∪ cancelled ∪ expired)`) reconstructs the
//! pending set; see `docs/recovery.md`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, BufMut, BytesMut};
use crossbeam::channel::{unbounded, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use youtopia_storage::codec::{get_str, get_u64, put_str};
use youtopia_storage::{
    Catalog, Column, DataType, Database, Schema, StorageError, StorageResult, Transaction, Tuple,
    Value,
};

use crate::coordinator::{
    CoordinatorConfig, MatchEdge, MatchGraph, MatchNotification, MatcherKind, Submission, Ticket,
};
use crate::error::{CoreError, CoreResult};
use crate::future::{CoordinationFuture, CoordinationOutcome, TicketShared};
use crate::ir::{Atom, QueryId, Term};
use crate::matcher::{baseline, search, GroupMatch, MatchStats};
use crate::registry::{Pending, Registry};
use crate::SystemStats;

/// The audit annotation of a registration frame: the wall-clock submit
/// time and the shard that accepted the query. Present only when the
/// audit sink is enabled ([`crate::AuditConfig`]); frames written with
/// auditing off carry no stamp and stay byte-identical to the
/// pre-audit encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegStamp {
    /// Submit time in clock milliseconds.
    pub at: u64,
    /// Shard index that accepted the query (0 for the serial
    /// coordinator).
    pub shard: u32,
}

/// One durable event of the coordination log.
///
/// Events are encoded into opaque payloads carried by the storage WAL's
/// coordination frames ([`youtopia_storage::WalRecord::Coordination`]).
/// The pending set of a crashed coordinator is exactly
/// `registered − (matched ∪ cancelled ∪ expired)` over its log.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordEvent {
    /// A pending entangled query was registered (logged before the
    /// submission is acknowledged).
    ///
    /// Three wire encodings exist: **v1** (tag 0, no deadline — every
    /// frame written before the deadline-lifecycle PR), **v2**
    /// (tag 5, carrying the absolute deadline), and **v3** (tag 6,
    /// carrying an optional deadline plus the audit [`RegStamp`]).
    /// Encoding picks the oldest tag that can represent the event, so
    /// stamp-less logs stay byte-identical to the old formats;
    /// decoding accepts all three.
    QueryRegistered {
        /// Submitting user.
        owner: String,
        /// Original SQL text (re-compiled on recovery).
        sql: String,
        /// The id the query was registered under.
        qid: QueryId,
        /// Monotonic submission sequence number.
        seq: u64,
        /// Absolute deadline in clock milliseconds, logged so a
        /// recovered coordinator still knows when the query should
        /// die (checkpoints re-emit it with the surviving
        /// registration).
        deadline: Option<u64>,
        /// Audit annotation (submit time + shard); `None` when the
        /// audit sink is disabled.
        stamp: Option<RegStamp>,
    },
    /// A pending query was cancelled by its owner.
    QueryCancelled {
        /// The withdrawn query.
        qid: QueryId,
        /// Cancellation time in clock milliseconds (tag 7 on the
        /// wire); `None` when the audit sink is disabled (tag 1,
        /// byte-identical to the pre-audit encoding).
        at: Option<u64>,
    },
    /// A pending query was expired by a deadline sweep.
    QueryExpired {
        /// The expired query.
        qid: QueryId,
        /// Expiry time in clock milliseconds (tag 8 on the wire);
        /// `None` when the audit sink is disabled (tag 2).
        at: Option<u64>,
    },
    /// A group match committed. This event is written **inside** the
    /// storage transaction that inserts `answer_writes`, so the match
    /// and its answers reach the log atomically.
    MatchCommitted {
        /// Every member of the matched group.
        qids: Vec<QueryId>,
        /// The `(relation, tuple)` answer writes of the match. Recovery
        /// rebuilds answers from the storage frames of the same
        /// transaction, so this duplicates them — deliberately: it
        /// makes the coordination log self-contained (future
        /// notification re-delivery on `reattach`, audit without
        /// storage replay), and checkpointing drops it with the rest
        /// of the matched history.
        answer_writes: Vec<(String, Tuple)>,
        /// Commit time in clock milliseconds (tag 9 on the wire);
        /// `None` when the audit sink is disabled (tag 3).
        at: Option<u64>,
    },
    /// An id/sequence watermark: ids at or below `qid` and sequence
    /// numbers at or below `seq` have been handed out. Written by
    /// coordinator checkpoints, whose compacted logs would otherwise
    /// lose the allocation high-water mark along with the matched
    /// registrations — recovery must never re-issue an id a pre-crash
    /// client may still hold.
    Watermark {
        /// Highest query id allocated so far.
        qid: QueryId,
        /// Highest submission sequence number allocated so far.
        seq: u64,
    },
}

impl CoordEvent {
    /// Serializes the event to the opaque payload stored in a WAL
    /// coordination frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            CoordEvent::QueryRegistered {
                owner,
                sql,
                qid,
                seq,
                deadline,
                stamp,
            } => {
                // oldest representable tag: v1 (tag 0) with neither
                // deadline nor stamp — byte-identical to the
                // pre-deadline format; v2 (tag 5) appends the
                // deadline; v3 (tag 6) carries a deadline-presence
                // flag plus the audit stamp
                if let Some(stamp) = stamp {
                    buf.put_u8(6);
                    put_str(&mut buf, owner);
                    put_str(&mut buf, sql);
                    buf.put_u64(qid.0);
                    buf.put_u64(*seq);
                    match deadline {
                        Some(deadline) => {
                            buf.put_u8(1);
                            buf.put_u64(*deadline);
                        }
                        None => buf.put_u8(0),
                    }
                    buf.put_u64(stamp.at);
                    buf.put_u32(stamp.shard);
                } else {
                    buf.put_u8(if deadline.is_some() { 5 } else { 0 });
                    put_str(&mut buf, owner);
                    put_str(&mut buf, sql);
                    buf.put_u64(qid.0);
                    buf.put_u64(*seq);
                    if let Some(deadline) = deadline {
                        buf.put_u64(*deadline);
                    }
                }
            }
            CoordEvent::QueryCancelled { qid, at } => {
                buf.put_u8(if at.is_some() { 7 } else { 1 });
                buf.put_u64(qid.0);
                if let Some(at) = at {
                    buf.put_u64(*at);
                }
            }
            CoordEvent::QueryExpired { qid, at } => {
                buf.put_u8(if at.is_some() { 8 } else { 2 });
                buf.put_u64(qid.0);
                if let Some(at) = at {
                    buf.put_u64(*at);
                }
            }
            CoordEvent::MatchCommitted {
                qids,
                answer_writes,
                at,
            } => {
                buf.put_u8(if at.is_some() { 9 } else { 3 });
                buf.put_u32(qids.len() as u32);
                for qid in qids {
                    buf.put_u64(qid.0);
                }
                buf.put_u32(answer_writes.len() as u32);
                for (relation, tuple) in answer_writes {
                    put_str(&mut buf, relation);
                    let enc = tuple.encode();
                    buf.put_u32(enc.len() as u32);
                    buf.put_slice(&enc);
                }
                if let Some(at) = at {
                    buf.put_u64(*at);
                }
            }
            CoordEvent::Watermark { qid, seq } => {
                buf.put_u8(4);
                buf.put_u64(qid.0);
                buf.put_u64(*seq);
            }
        }
        buf.to_vec()
    }

    /// Decodes an event from a WAL coordination payload.
    pub fn decode(mut payload: &[u8]) -> StorageResult<CoordEvent> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(StorageError::WalCorrupt("empty coordination event".into()));
        }
        let tag = buf.get_u8();
        let event = match tag {
            0 | 5 | 6 => {
                let owner = get_str(buf)?;
                let sql = get_str(buf)?;
                let qid = QueryId(get_u64(buf)?);
                let seq = get_u64(buf)?;
                let deadline = match tag {
                    5 => Some(get_u64(buf)?),
                    6 => {
                        if buf.remaining() < 1 {
                            return Err(StorageError::WalCorrupt("truncated deadline flag".into()));
                        }
                        match buf.get_u8() {
                            0 => None,
                            1 => Some(get_u64(buf)?),
                            f => {
                                return Err(StorageError::WalCorrupt(format!(
                                    "bad deadline flag {f}"
                                )))
                            }
                        }
                    }
                    _ => None, // v1 frame: registered before deadlines existed
                };
                let stamp = if tag == 6 {
                    let at = get_u64(buf)?;
                    if buf.remaining() < 4 {
                        return Err(StorageError::WalCorrupt("truncated shard".into()));
                    }
                    Some(RegStamp {
                        at,
                        shard: buf.get_u32(),
                    })
                } else {
                    None
                };
                CoordEvent::QueryRegistered {
                    owner,
                    sql,
                    qid,
                    seq,
                    deadline,
                    stamp,
                }
            }
            1 | 7 => CoordEvent::QueryCancelled {
                qid: QueryId(get_u64(buf)?),
                at: if tag == 7 { Some(get_u64(buf)?) } else { None },
            },
            2 | 8 => CoordEvent::QueryExpired {
                qid: QueryId(get_u64(buf)?),
                at: if tag == 8 { Some(get_u64(buf)?) } else { None },
            },
            3 | 9 => {
                if buf.remaining() < 4 {
                    return Err(StorageError::WalCorrupt("truncated member count".into()));
                }
                let n = buf.get_u32() as usize;
                let mut qids = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    qids.push(QueryId(get_u64(buf)?));
                }
                if buf.remaining() < 4 {
                    return Err(StorageError::WalCorrupt("truncated answer count".into()));
                }
                let n = buf.get_u32() as usize;
                let mut answer_writes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let relation = get_str(buf)?;
                    if buf.remaining() < 4 {
                        return Err(StorageError::WalCorrupt("truncated tuple length".into()));
                    }
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return Err(StorageError::WalCorrupt("truncated tuple body".into()));
                    }
                    let tuple = Tuple::decode(&buf[..len])?;
                    buf.advance(len);
                    answer_writes.push((relation, tuple));
                }
                CoordEvent::MatchCommitted {
                    qids,
                    answer_writes,
                    at: if tag == 9 { Some(get_u64(buf)?) } else { None },
                }
            }
            4 => CoordEvent::Watermark {
                qid: QueryId(get_u64(buf)?),
                seq: get_u64(buf)?,
            },
            t => {
                return Err(StorageError::WalCorrupt(format!(
                    "unknown coordination event tag {t}"
                )))
            }
        };
        if buf.has_remaining() {
            return Err(StorageError::WalCorrupt(
                "trailing bytes in coordination event".into(),
            ));
        }
        Ok(event)
    }
}

/// A durable sink for coordination events — the handle the
/// coordinators log through. Implemented by
/// [`youtopia_storage::Database`], which submits events to its
/// pipelined group-commit writer as one marker-delimited commit
/// group per call and blocks until the group is synced; concurrent
/// callers (shards draining in parallel, both coordinator flavors)
/// share the writer's one-fsync-per-quantum discipline instead of
/// paying a sync each. A database without a WAL accepts and drops
/// events, so non-durable deployments pay nothing.
pub trait CoordinationLog {
    /// Durably appends one event (one commit group).
    fn log_event(&self, event: &CoordEvent) -> StorageResult<()>;

    /// Durably appends a batch of events as **one** commit group —
    /// the batch-submission fast path: the whole bucket becomes
    /// durable atomically with respect to crash replay.
    fn log_events(&self, events: &[CoordEvent]) -> StorageResult<()>;
}

impl CoordinationLog for Database {
    fn log_event(&self, event: &CoordEvent) -> StorageResult<()> {
        self.append_coordination(&event.encode())
    }

    fn log_events(&self, events: &[CoordEvent]) -> StorageResult<()> {
        let payloads: Vec<Vec<u8>> = events.iter().map(CoordEvent::encode).collect();
        self.append_coordination_batch(&payloads)
    }
}

/// One registration that survived log replay (never matched, cancelled
/// or expired before the crash).
pub(crate) struct Survivor {
    pub qid: QueryId,
    pub owner: String,
    pub sql: String,
    pub seq: u64,
    /// The logged deadline — recovery restores it into the registry
    /// and immediately expires anything already past due.
    pub deadline: Option<u64>,
}

/// The digest of a replayed coordination log: the registrations that
/// survive (were never matched, cancelled or expired), plus the
/// id/sequence watermarks to restart allocation from.
pub(crate) struct ReplayedLog {
    /// Surviving registrations in submission (seq) order.
    pub survivors: Vec<Survivor>,
    /// Highest query id seen anywhere in the log (0 when empty).
    pub max_qid: u64,
    /// Highest sequence number seen (0 when empty).
    pub max_seq: u64,
    /// Total events decoded.
    pub events: usize,
}

/// Folds a log's coordination payloads into the surviving pending set.
/// Order-insensitive with respect to removal events: a
/// `MatchCommitted`/`QueryCancelled`/`QueryExpired` retires its qid
/// whether it appears before or after the registration frame (batch
/// group-commit may reorder registrations relative to another bucket's
/// match commits).
pub(crate) fn replay_coordination_frames(frames: &[Vec<u8>]) -> CoreResult<ReplayedLog> {
    use std::collections::{BTreeMap, HashSet};
    let mut registered: BTreeMap<u64, (String, String, u64, Option<u64>)> = BTreeMap::new();
    let mut removed: HashSet<u64> = HashSet::new();
    let mut max_qid = 0u64;
    let mut max_seq = 0u64;
    let mut events = 0usize;
    for payload in frames {
        let event = CoordEvent::decode(payload).map_err(CoreError::Storage)?;
        events += 1;
        match event {
            CoordEvent::QueryRegistered {
                owner,
                sql,
                qid,
                seq,
                deadline,
                ..
            } => {
                max_qid = max_qid.max(qid.0);
                max_seq = max_seq.max(seq);
                registered.insert(qid.0, (owner, sql, seq, deadline));
            }
            CoordEvent::QueryCancelled { qid, .. } | CoordEvent::QueryExpired { qid, .. } => {
                max_qid = max_qid.max(qid.0);
                removed.insert(qid.0);
            }
            CoordEvent::MatchCommitted { qids, .. } => {
                for qid in qids {
                    max_qid = max_qid.max(qid.0);
                    removed.insert(qid.0);
                }
            }
            CoordEvent::Watermark { qid, seq } => {
                max_qid = max_qid.max(qid.0);
                max_seq = max_seq.max(seq);
            }
        }
    }
    let mut survivors: Vec<Survivor> = registered
        .into_iter()
        .filter(|(qid, _)| !removed.contains(qid))
        .map(|(qid, (owner, sql, seq, deadline))| Survivor {
            qid: QueryId(qid),
            owner,
            sql,
            seq,
            deadline,
        })
        .collect();
    survivors.sort_by_key(|s| s.seq);
    Ok(ReplayedLog {
        survivors,
        max_qid,
        max_seq,
        events,
    })
}

/// A borrowed apply hook: side effects executed inside the match's
/// storage transaction. The serial coordinator stores a `Box`, the
/// sharded coordinator an `Arc` shared by all shards; both lend the
/// engine a plain `&dyn Fn`.
pub(crate) type HookRef<'a> =
    Option<&'a dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>>;

/// How a submission wants to be notified when it terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitMode {
    /// Blocking ticket channel ([`Ticket`]): the original API.
    Sync,
    /// Parked waker ([`CoordinationFuture`]): the async API.
    Async,
}

/// One parked waiter of a pending query. A match commit *answers* it;
/// cancellation, expiry and supersession *resolve* it with the matching
/// terminal outcome — every code path that removes a pending query must
/// consume its waiter through one of those two methods, never drop it
/// silently (a silently dropped future waiter would leave the future
/// pending forever).
#[derive(Debug)]
pub(crate) enum Waiter {
    /// The sync ticket's channel. Terminal outcomes other than an
    /// answer just drop the sender: the blocked receiver observes the
    /// disconnect, exactly as before the async API existed.
    Channel(Sender<MatchNotification>),
    /// The async future's completion slot.
    Future(Arc<TicketShared>),
}

impl Waiter {
    /// Delivers a match notification.
    pub(crate) fn notify_answered(self, n: MatchNotification) {
        match self {
            // the receiver may have been dropped
            Waiter::Channel(tx) => drop(tx.send(n)),
            Waiter::Future(shared) => shared.complete(CoordinationOutcome::Answered(n)),
        }
    }

    /// Resolves the waiter with a non-answer terminal outcome
    /// (cancelled / expired / superseded).
    pub(crate) fn resolve_terminal(self, outcome: CoordinationOutcome) {
        match self {
            Waiter::Channel(_) => {} // dropping the sender disconnects the ticket
            Waiter::Future(shared) => shared.complete(outcome),
        }
    }
}

/// Outcome of a mode-parameterized arrival: the sync [`Submission`] or
/// the async [`CoordinationFuture`], remembering whether the query was
/// left pending at creation time (the sharded coordinator's placement
/// healing keys off that).
pub(crate) enum Arrival {
    /// Sync submission outcome.
    Sync(Submission),
    /// Async submission outcome.
    Async {
        /// The future handed to the submitter.
        future: CoordinationFuture,
        /// Whether the query was registered as pending (vs answered on
        /// arrival).
        pending: bool,
    },
}

impl Arrival {
    /// Whether the arrival left the query pending.
    pub(crate) fn is_pending(&self) -> bool {
        match self {
            Arrival::Sync(s) => matches!(s, Submission::Pending(_)),
            Arrival::Async { pending, .. } => *pending,
        }
    }

    /// Unwraps the sync variant (callers pass `WaitMode::Sync`).
    pub(crate) fn into_sync(self) -> Submission {
        match self {
            Arrival::Sync(s) => s,
            Arrival::Async { .. } => unreachable!("sync arrival produced an async outcome"),
        }
    }

    /// Unwraps the async variant (callers pass `WaitMode::Async`).
    pub(crate) fn into_async(self) -> CoordinationFuture {
        match self {
            Arrival::Async { future, .. } => future,
            Arrival::Sync(_) => unreachable!("async arrival produced a sync outcome"),
        }
    }
}

/// One independent matching domain (the whole system for the serial
/// coordinator; one shard for the sharded coordinator).
pub(crate) struct ShardState {
    /// Pending queries of this domain.
    pub registry: Registry,
    /// Resolves `CHOOSE` nondeterminism for this domain.
    pub rng: StdRng,
    /// Counters local to this domain (merge across shards for totals).
    pub stats: SystemStats,
    /// Parked waiters (ticket channels or future wakers) of this
    /// domain's pending queries.
    pub waiters: HashMap<QueryId, Waiter>,
    /// Queries answered (removed) since the owner last drained this
    /// log. The sharded coordinator uses it to retire router
    /// memberships; the serial coordinator clears it after each call.
    pub answered_log: Vec<QueryId>,
    /// Match-commit audit events buffered under the shard lock; the
    /// owner flushes them in one storage transaction before releasing
    /// the lock, so a cascade of matches costs one audit transaction
    /// instead of one per group.
    pub audit_pending: Vec<CoordEvent>,
}

impl ShardState {
    pub(crate) fn new(use_const_index: bool, seed: u64) -> ShardState {
        let registry = if use_const_index {
            Registry::new()
        } else {
            Registry::without_const_index()
        };
        ShardState {
            registry,
            rng: StdRng::seed_from_u64(seed),
            stats: SystemStats::default(),
            waiters: HashMap::new(),
            answered_log: Vec::new(),
            audit_pending: Vec::new(),
        }
    }
}

/// The stateless core: configuration + database handle. All mutation
/// goes through an explicitly borrowed [`ShardState`].
pub(crate) struct Engine {
    pub db: Database,
    pub config: CoordinatorConfig,
    /// The audit sink, when enabled: stamps coordination events with
    /// wall-clock times and mirrors them into the `sys_audit` /
    /// `sys_tenant_latency` system relations.
    pub audit: Option<Arc<crate::audit::AuditSink>>,
}

impl Engine {
    /// The current audit timestamp, or `None` when auditing is off —
    /// events built with this stamp encode to the pre-audit byte
    /// format exactly when the sink is disabled.
    pub(crate) fn audit_now(&self) -> Option<u64> {
        self.audit.as_ref().map(|a| a.now())
    }

    /// Mirrors one logged event into the audit relations (no-op when
    /// auditing is off).
    pub(crate) fn observe(&self, event: &CoordEvent) {
        if let Some(audit) = &self.audit {
            audit.observe(event);
        }
    }

    /// Mirrors a batch of logged events into the audit relations (one
    /// storage transaction for the whole batch).
    pub(crate) fn observe_all(&self, events: &[CoordEvent]) {
        if let Some(audit) = &self.audit {
            audit.observe_batch(events);
        }
    }

    /// Writes the shard's buffered match-commit audit events in one
    /// batch. Owners call this before releasing the shard lock so
    /// reads that follow the lock observe their own audit rows.
    pub(crate) fn flush_audit(&self, state: &mut ShardState) {
        if state.audit_pending.is_empty() {
            return;
        }
        let events = std::mem::take(&mut state.audit_pending);
        self.observe_all(&events);
    }
}

impl Engine {
    /// Registers an arrived (already safety-checked, namespaced)
    /// pending query and runs arrival-driven matching, cascading
    /// through freshly committed answers until quiescent. `mode` picks
    /// the notification style: a pending query parks either a ticket
    /// channel or a future's completion slot in the waiter table. The
    /// waiter is registered under the caller's lock on `state`, so a
    /// completion racing in from another arrival can never miss it.
    pub(crate) fn process_arrival_mode(
        &self,
        state: &mut ShardState,
        pending: Pending,
        hook: HookRef,
        mode: WaitMode,
    ) -> CoreResult<Arrival> {
        let qid = pending.id;
        state.registry.insert(pending);
        state.stats.submitted += 1;

        match self.try_match(state, qid)? {
            Some(m) => {
                let fresh: Vec<(String, Tuple)> = m.all_answers().cloned().collect();
                let mut my_notification = None;
                for n in self.apply_and_notify(state, m, hook)? {
                    if n.id == qid {
                        my_notification = Some(n);
                    }
                }
                let n = my_notification.ok_or_else(|| {
                    CoreError::Internal("trigger missing from its own match".into())
                })?;
                // Newly committed answers may satisfy pending queries'
                // postconditions ("the system-wide answer relation"):
                // cascade until quiescent.
                self.cascade(state, fresh, hook)?;
                Ok(match mode {
                    WaitMode::Sync => Arrival::Sync(Submission::Answered(n)),
                    WaitMode::Async => Arrival::Async {
                        future: CoordinationFuture::ready(qid, CoordinationOutcome::Answered(n)),
                        pending: false,
                    },
                })
            }
            None => Ok(match mode {
                WaitMode::Sync => {
                    let (tx, rx) = unbounded();
                    state.waiters.insert(qid, Waiter::Channel(tx));
                    Arrival::Sync(Submission::Pending(Ticket {
                        id: qid,
                        receiver: rx,
                    }))
                }
                WaitMode::Async => {
                    let shared = Arc::new(TicketShared::default());
                    state
                        .waiters
                        .insert(qid, Waiter::Future(Arc::clone(&shared)));
                    Arrival::Async {
                        future: CoordinationFuture::new(qid, shared),
                        pending: true,
                    }
                }
            }),
        }
    }

    /// Re-runs matching for pending queries whose positive constraints
    /// could unify with freshly committed answer tuples, repeating until
    /// no further matches fire. Cheap pre-filter: a constraint is only
    /// retried when template unification against a fresh tuple succeeds.
    /// Apply failures (e.g. inventory races) leave the group pending and
    /// do not abort the cascade.
    pub(crate) fn cascade(
        &self,
        state: &mut ShardState,
        mut fresh: Vec<(String, Tuple)>,
        hook: HookRef,
    ) -> CoreResult<()> {
        if !self.config.match_config.use_committed_answers {
            return Ok(());
        }
        while !fresh.is_empty() {
            let triggers: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| {
                    p.query.constraints.iter().filter(|c| !c.negated).any(|c| {
                        fresh.iter().any(|(rel, tuple)| {
                            c.atom.relation.eq_ignore_ascii_case(rel)
                                && c.atom.arity() == tuple.arity()
                                && {
                                    let mut s = crate::unify::Subst::new();
                                    c.atom.terms.iter().zip(tuple.values()).all(|(t, v)| {
                                        s.unify_terms(t, &crate::ir::Term::Const(v.clone()))
                                    })
                                }
                        })
                    })
                })
                .map(|p| p.id)
                .collect();
            fresh.clear();
            for qid in triggers {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this round
                }
                if let Some(m) = self.try_match(state, qid)? {
                    let new_tuples: Vec<(String, Tuple)> = m.all_answers().cloned().collect();
                    match self.apply_and_notify(state, m, hook) {
                        Ok(_) => fresh.extend(new_tuples),
                        Err(CoreError::Storage(_)) => {
                            // group reinstated by apply_and_notify; it
                            // stays pending (e.g. inventory exhausted)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the configured matcher for `trigger`. Callers hold the
    /// state's lock; the database is read-locked only for the matching
    /// itself.
    pub(crate) fn try_match(
        &self,
        state: &mut ShardState,
        trigger: QueryId,
    ) -> CoreResult<Option<GroupMatch>> {
        state.stats.match_attempts += 1;
        let started = Instant::now();
        let result = {
            let read = self.db.read();
            let mut work = MatchStats::default();
            let r = match self.config.matcher {
                MatcherKind::Incremental => search::match_query(
                    &state.registry,
                    read.catalog(),
                    trigger,
                    &self.config.match_config,
                    &mut state.rng,
                    &mut work,
                ),
                MatcherKind::Naive => baseline::match_query_naive(
                    &state.registry,
                    read.catalog(),
                    trigger,
                    &self.config.match_config,
                    &mut state.rng,
                    &mut work,
                ),
            };
            state.stats.match_work.merge(&work);
            r
        };
        state.stats.matching_nanos += started.elapsed().as_nanos();
        result
    }

    /// Removes the matched queries, applies the match to the database
    /// (answer-relation inserts + apply hook, one transaction), and
    /// builds per-member notifications. On apply failure the members are
    /// re-registered and the error propagates.
    pub(crate) fn apply_and_notify(
        &self,
        state: &mut ShardState,
        m: GroupMatch,
        hook: HookRef,
    ) -> CoreResult<Vec<MatchNotification>> {
        let mut removed = Vec::with_capacity(m.members.len());
        for &qid in &m.members {
            let pending = state
                .registry
                .remove(qid)
                .ok_or_else(|| CoreError::Internal(format!("matched query {qid} vanished")))?;
            removed.push(pending);
        }

        let commit_event = CoordEvent::MatchCommitted {
            qids: m.members.clone(),
            answer_writes: m.all_answers().cloned().collect(),
            at: self.audit_now(),
        };
        let apply_result = (|| -> StorageResult<()> {
            let mut txn = self.db.begin();
            for (relation, tuple) in m.all_answers() {
                ensure_answer_table(&mut txn, relation, tuple)?;
                txn.insert(relation, tuple.clone())?;
            }
            if let Some(hook) = hook {
                hook(&mut txn, &m)?;
            }
            // the match commit rides the same transaction as its answer
            // writes: both reach the WAL atomically, or neither does
            txn.log_coordination(commit_event.encode())?;
            txn.commit()
        })();

        if let Err(e) = apply_result {
            // put the group back; it stays pending
            for pending in removed {
                state.registry.insert(pending);
            }
            return Err(CoreError::Storage(e));
        }
        if self.audit.is_some() {
            // deferred: the caller flushes the whole drain's commit
            // events in one audit transaction before releasing the
            // shard lock (the ledger is transient and rebuilt from the
            // WAL, so a crash between commit and flush loses nothing)
            state.audit_pending.push(commit_event);
        }

        state.stats.groups_matched += 1;
        state.stats.answered += m.members.len() as u64;
        state.answered_log.extend_from_slice(&m.members);

        let group = m.members.clone();
        let mut notifications = Vec::with_capacity(group.len());
        for &qid in &m.members {
            let n = MatchNotification {
                id: qid,
                group: group.clone(),
                answers: m.answers.get(&qid).cloned().unwrap_or_default(),
            };
            if let Some(waiter) = state.waiters.remove(&qid) {
                waiter.notify_answered(n.clone());
            }
            notifications.push(n);
        }
        Ok(notifications)
    }

    /// Retries matching for every pending query of this domain until a
    /// full sweep fires no match. Returns the notifications of all
    /// queries answered by the sweep.
    ///
    /// Index-first pruning: before each round the candidate index and a
    /// value-keyed probe of the committed answer relations identify
    /// provably-unmatchable triggers, which are skipped without ever
    /// taking the db read lock. The skip set is recomputed after every
    /// fired match (a commit can make a skipped trigger viable), so a
    /// skipped `try_match` is always one that would have returned
    /// `None` — the sweep's outcome is bit-identical to the unpruned
    /// sweep.
    pub(crate) fn retry_all(
        &self,
        state: &mut ShardState,
        hook: HookRef,
    ) -> CoreResult<Vec<MatchNotification>> {
        let mut notifications = Vec::new();
        loop {
            let pending_ids: Vec<QueryId> = state.registry.iter().map(|p| p.id).collect();
            let mut skip = self.prunable_triggers(state);
            let mut matched_any = false;
            for qid in pending_ids {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this sweep
                }
                if skip.contains(&qid) {
                    state.stats.match_work.triggers_pruned += 1;
                    continue;
                }
                if let Some(m) = self.try_match(state, qid)? {
                    notifications.extend(self.apply_and_notify(state, m, hook)?);
                    matched_any = true;
                    skip = self.prunable_triggers(state);
                }
            }
            if !matched_any {
                return Ok(notifications);
            }
        }
    }

    /// The pending queries that provably cannot match right now: some
    /// positive obligation has neither a pending candidate head
    /// (candidate-index emptiness — a superset of the unifiable heads)
    /// nor a committed tuple compatible with its constants
    /// ([`CommittedProbe`]). Sound for both matchers: every positive
    /// constraint needs *some* provider, and both tests only report
    /// "no" when no provider can exist.
    pub(crate) fn prunable_triggers(&self, state: &ShardState) -> HashSet<QueryId> {
        let mut out = HashSet::new();
        if !state.registry.uses_const_index() {
            return out; // index ablation: sweep every trigger
        }
        let use_committed = self.config.match_config.use_committed_answers;
        let read = self.db.read();
        let probe = if use_committed {
            let rels = state.registry.iter().flat_map(|p| {
                p.query
                    .constraints
                    .iter()
                    .filter(|c| !c.negated)
                    .map(|c| c.atom.relation.as_str())
            });
            Some(CommittedProbe::build(read.catalog(), rels))
        } else {
            None
        };
        for p in state.registry.iter() {
            let unmatchable = p.query.constraints.iter().filter(|c| !c.negated).any(|c| {
                !state.registry.has_candidates(&c.atom)
                    && probe.as_ref().is_none_or(|pr| !pr.may_satisfy(&c.atom))
            });
            if unmatchable {
                out.insert(p.id);
            }
        }
        out
    }

    /// The shared lifecycle retirement path: durably logs `event(qid)`
    /// for every id (one group commit), then removes each from the
    /// registry and resolves its parked waiter with `outcome` — sync
    /// tickets disconnect, futures resolve the terminal outcome.
    /// Log-before-ack: when the log write fails, *nothing* is removed
    /// and the result is empty. Returns the ids actually retired (ids
    /// no longer pending are skipped silently, so callers may race
    /// matches without double-delivery — the registry removal under
    /// the caller's lock is the arbiter).
    ///
    /// Every bulk removal — seq-based `expire_before`, owner-wide
    /// `cancel_owner`, deadline-driven `expire_due` — is built on this
    /// one helper on both coordinators.
    pub(crate) fn retire_ids(
        &self,
        state: &mut ShardState,
        ids: &[QueryId],
        event: impl Fn(QueryId) -> CoordEvent,
        outcome: &CoordinationOutcome,
    ) -> Vec<QueryId> {
        if ids.is_empty() {
            return Vec::new();
        }
        let events: Vec<CoordEvent> = ids.iter().map(|&qid| event(qid)).collect();
        if self.db.log_events(&events).is_err() {
            return Vec::new(); // unlogged removals never happen
        }
        let mut retired = Vec::with_capacity(ids.len());
        for &qid in ids {
            if state.registry.remove(qid).is_none() {
                continue; // already answered/removed under this lock
            }
            if let Some(waiter) = state.waiters.remove(&qid) {
                waiter.resolve_terminal(outcome.clone());
            }
            retired.push(qid);
        }
        // the sink's open-entry map arbitrates ids that were already
        // answered (their entry is gone), so observing the whole batch
        // mirrors exactly what log replay would rebuild
        self.observe_all(&events);
        retired
    }
}

impl Engine {
    /// Reads the current content of an answer relation (empty when no
    /// match has touched it yet, or the table does not exist).
    pub(crate) fn answers(&self, relation: &str) -> Vec<Tuple> {
        let read = self.db.read();
        match read.table(relation) {
            Ok(t) => t.scan().map(|(_, tuple)| tuple.clone()).collect(),
            Err(_) => Vec::new(),
        }
    }
}

/// The potential-satisfaction edges and dangling constraints of one
/// registry — the per-domain slice of the admin interface's match
/// graph (§3.2).
pub(crate) fn match_graph_of(registry: &Registry) -> MatchGraph {
    let mut edges = Vec::new();
    let mut dangling = Vec::new();
    for pending in registry.iter() {
        for (cidx, constraint) in pending.query.constraints.iter().enumerate() {
            if constraint.negated {
                continue;
            }
            let mut found = false;
            for href in registry.candidates_for(&constraint.atom) {
                let Some(head) = registry.head(href) else {
                    continue;
                };
                let mut s = crate::unify::Subst::new();
                if s.unify_atoms(&constraint.atom, head) {
                    edges.push(MatchEdge {
                        from: pending.id,
                        constraint: constraint.atom.to_string(),
                        to: href.qid,
                        head: head.to_string(),
                    });
                    found = true;
                }
            }
            if !found {
                dangling.push((pending.id, cidx, constraint.atom.to_string()));
            }
        }
    }
    MatchGraph { edges, dangling }
}

/// Value-keyed summary of the committed tuples of a set of relations,
/// used by the re-match sweep to refute "a committed tuple could
/// satisfy this constraint" without rescanning tables per trigger.
///
/// Per relation it records the arities seen and, per position, the set
/// of stored values *expanded* through [`numeric_keys`] so that the
/// `Int`/`Float` bridge of [`Value::sql_eq`] is captured by plain hash
/// lookups. Both the stored values and the probed constant are
/// expanded, which makes the per-position test a superset of
/// unify-equality (`sql_eq || ==`): the probe may say "maybe" for a
/// tuple that does not unify, but never "no" for one that does.
pub(crate) struct CommittedProbe {
    relations: HashMap<String, RelationProbe>,
}

#[derive(Default)]
struct RelationProbe {
    arities: HashSet<usize>,
    by_pos: HashMap<usize, HashSet<Value>>,
}

/// Hash keys equivalent to `v` under SQL numeric bridging. Integral
/// floats round-trip through `i64` so `Int(3)`, `Float(3.0)`, and
/// `Float(-0.0)`/`Float(0.0)` all share a key.
fn numeric_keys(v: &Value) -> Vec<Value> {
    match v {
        Value::Int(i) => vec![Value::Int(*i), Value::Float(*i as f64)],
        Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            vec![
                Value::Float(*f),
                Value::Int(*f as i64),
                Value::Float((*f as i64) as f64),
            ]
        }
        other => vec![other.clone()],
    }
}

impl CommittedProbe {
    /// Scans each named relation once (missing tables are simply absent,
    /// so every probe against them answers "no tuple").
    pub(crate) fn build<'a>(
        catalog: &Catalog,
        rels: impl IntoIterator<Item = &'a str>,
    ) -> CommittedProbe {
        let mut relations: HashMap<String, RelationProbe> = HashMap::new();
        for rel in rels {
            let key = rel.to_ascii_lowercase();
            if relations.contains_key(&key) {
                continue;
            }
            let Ok(table) = catalog.table(rel) else {
                continue;
            };
            let probe = relations.entry(key).or_default();
            for (_, tuple) in table.scan() {
                let values = tuple.values();
                probe.arities.insert(values.len());
                for (pos, v) in values.iter().enumerate() {
                    probe.by_pos.entry(pos).or_default().extend(numeric_keys(v));
                }
            }
        }
        CommittedProbe { relations }
    }

    /// Whether some committed tuple *might* unify with `atom`: the
    /// relation has a tuple of matching arity whose every
    /// constant-constrained position holds a bridged-equal value.
    /// Positions are tested independently, so this is an
    /// over-approximation — exactly what soundness of pruning needs.
    pub(crate) fn may_satisfy(&self, atom: &Atom) -> bool {
        let Some(probe) = self.relations.get(&atom.relation.to_ascii_lowercase()) else {
            return false;
        };
        if !probe.arities.contains(&atom.terms.len()) {
            return false;
        }
        atom.terms.iter().enumerate().all(|(pos, term)| match term {
            Term::Const(v) => probe
                .by_pos
                .get(&pos)
                .is_some_and(|set| numeric_keys(v).iter().any(|k| set.contains(k))),
            _ => true,
        })
    }
}

/// Creates the answer-relation table on first use. Columns are named
/// `c0..cN-1`, typed from the first inserted tuple, all nullable (answer
/// relations are system tables; applications may pre-create them with
/// richer schemas, in which case only the arity must agree).
pub(crate) fn ensure_answer_table(
    txn: &mut Transaction,
    relation: &str,
    first: &Tuple,
) -> StorageResult<()> {
    if txn.catalog().has_table(relation) {
        return Ok(());
    }
    let columns: Vec<Column> = first
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| Column {
            name: format!("c{i}"),
            ty: v.data_type().unwrap_or(DataType::Str),
            nullable: true,
        })
        .collect();
    txn.create_table(relation, Schema::new(columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    fn sample_events() -> Vec<CoordEvent> {
        vec![
            CoordEvent::QueryRegistered {
                owner: "kramer".into(),
                sql: "SELECT 'K', fno INTO ANSWER R CHOOSE 1".into(),
                qid: QueryId(7),
                seq: 3,
                deadline: None,
                stamp: None,
            },
            CoordEvent::QueryRegistered {
                owner: "newman".into(),
                sql: "SELECT 'N', fno INTO ANSWER R CHOOSE 1".into(),
                qid: QueryId(8),
                seq: 4,
                deadline: Some(1_234_567),
                stamp: None,
            },
            // v3 (tag 6) audit-stamped registrations, with and without
            // a deadline
            CoordEvent::QueryRegistered {
                owner: "elaine".into(),
                sql: "SELECT 'E', fno INTO ANSWER R CHOOSE 1".into(),
                qid: QueryId(9),
                seq: 5,
                deadline: Some(2_000_000),
                stamp: Some(RegStamp {
                    at: 1_999_000,
                    shard: 3,
                }),
            },
            CoordEvent::QueryRegistered {
                owner: "george".into(),
                sql: "SELECT 'G', fno INTO ANSWER R CHOOSE 1".into(),
                qid: QueryId(10),
                seq: 6,
                deadline: None,
                stamp: Some(RegStamp { at: 77, shard: 0 }),
            },
            CoordEvent::QueryCancelled {
                qid: QueryId(7),
                at: None,
            },
            CoordEvent::QueryCancelled {
                qid: QueryId(7),
                at: Some(123),
            },
            CoordEvent::QueryExpired {
                qid: QueryId(9),
                at: None,
            },
            CoordEvent::QueryExpired {
                qid: QueryId(9),
                at: Some(456),
            },
            CoordEvent::MatchCommitted {
                qids: vec![QueryId(1), QueryId(2)],
                answer_writes: vec![
                    (
                        "Reservation".into(),
                        Tuple::new(vec![Value::from("Kramer"), Value::Int(122)]),
                    ),
                    (
                        "Reservation".into(),
                        Tuple::new(vec![Value::from("Jerry"), Value::Int(122)]),
                    ),
                ],
                at: None,
            },
            CoordEvent::MatchCommitted {
                qids: vec![QueryId(3)],
                answer_writes: vec![(
                    "Reservation".into(),
                    Tuple::new(vec![Value::from("Elaine"), Value::Int(9)]),
                )],
                at: Some(789),
            },
            CoordEvent::Watermark {
                qid: QueryId(42),
                seq: 17,
            },
        ]
    }

    #[test]
    fn coord_events_roundtrip() {
        for event in sample_events() {
            let decoded = CoordEvent::decode(&event.encode()).unwrap();
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn coord_event_decode_rejects_garbage() {
        assert!(CoordEvent::decode(&[]).is_err());
        assert!(CoordEvent::decode(&[250]).is_err());
        // truncations of every valid event fail cleanly, never panic
        for event in sample_events() {
            let bytes = event.encode();
            for cut in 0..bytes.len() {
                assert!(
                    CoordEvent::decode(&bytes[..cut]).is_err(),
                    "truncated event decoded"
                );
            }
            // trailing garbage is rejected too
            let mut extended = bytes.clone();
            extended.push(0);
            assert!(CoordEvent::decode(&extended).is_err());
        }
    }

    #[test]
    fn replay_folds_out_matched_cancelled_expired() {
        let reg = |qid: u64, seq: u64| CoordEvent::QueryRegistered {
            owner: format!("u{qid}"),
            sql: format!("q{qid}"),
            qid: QueryId(qid),
            seq,
            deadline: qid.is_multiple_of(2).then_some(qid * 100),
            stamp: None,
        };
        let frames: Vec<Vec<u8>> = [
            reg(1, 1),
            reg(2, 2),
            reg(3, 3),
            reg(4, 4),
            CoordEvent::MatchCommitted {
                qids: vec![QueryId(1), QueryId(3)],
                answer_writes: Vec::new(),
                at: None,
            },
            CoordEvent::QueryCancelled {
                qid: QueryId(2),
                at: None,
            },
            reg(5, 5),
            CoordEvent::QueryExpired {
                qid: QueryId(4),
                at: None,
            },
        ]
        .iter()
        .map(CoordEvent::encode)
        .collect();
        let replayed = replay_coordination_frames(&frames).unwrap();
        assert_eq!(replayed.events, 8);
        assert_eq!(replayed.max_qid, 5);
        assert_eq!(replayed.max_seq, 5);
        let ids: Vec<u64> = replayed.survivors.iter().map(|s| s.qid.0).collect();
        assert_eq!(ids, vec![5]);
        assert_eq!(replayed.survivors[0].deadline, None);
    }

    #[test]
    fn replay_restores_logged_deadlines() {
        let frames: Vec<Vec<u8>> = [
            CoordEvent::QueryRegistered {
                owner: "a".into(),
                sql: "qa".into(),
                qid: QueryId(1),
                seq: 1,
                deadline: Some(500),
                stamp: None,
            },
            CoordEvent::QueryRegistered {
                owner: "b".into(),
                sql: "qb".into(),
                qid: QueryId(2),
                seq: 2,
                deadline: None,
                stamp: None,
            },
        ]
        .iter()
        .map(CoordEvent::encode)
        .collect();
        let replayed = replay_coordination_frames(&frames).unwrap();
        assert_eq!(replayed.survivors.len(), 2);
        assert_eq!(replayed.survivors[0].deadline, Some(500));
        assert_eq!(replayed.survivors[1].deadline, None);
    }

    #[test]
    fn deadline_less_encoding_is_byte_identical_to_v1() {
        // v1 layout: tag 0, owner, sql, qid, seq — a deadline-less
        // registration must still produce exactly these bytes, so old
        // logs and new deadline-free logs are indistinguishable
        let event = CoordEvent::QueryRegistered {
            owner: "k".into(),
            sql: "q".into(),
            qid: QueryId(7),
            seq: 3,
            deadline: None,
            stamp: None,
        };
        let mut v1 = BytesMut::new();
        v1.put_u8(0);
        put_str(&mut v1, "k");
        put_str(&mut v1, "q");
        v1.put_u64(7);
        v1.put_u64(3);
        assert_eq!(event.encode(), v1.to_vec());
        // and hand-built v1 bytes decode with deadline = None
        assert_eq!(CoordEvent::decode(&v1).unwrap(), event);
    }

    #[test]
    fn stamp_less_terminal_encodings_are_byte_identical_to_pre_audit() {
        // cancel / expire / match frames without an audit timestamp
        // must keep the exact pre-audit layouts (tags 1/2/3)
        let cancel = CoordEvent::QueryCancelled {
            qid: QueryId(7),
            at: None,
        };
        let mut old = BytesMut::new();
        old.put_u8(1);
        old.put_u64(7);
        assert_eq!(cancel.encode(), old.to_vec());

        let expire = CoordEvent::QueryExpired {
            qid: QueryId(8),
            at: None,
        };
        let mut old = BytesMut::new();
        old.put_u8(2);
        old.put_u64(8);
        assert_eq!(expire.encode(), old.to_vec());

        let commit = CoordEvent::MatchCommitted {
            qids: vec![QueryId(1)],
            answer_writes: Vec::new(),
            at: None,
        };
        let mut old = BytesMut::new();
        old.put_u8(3);
        old.put_u32(1);
        old.put_u64(1);
        old.put_u32(0);
        assert_eq!(commit.encode(), old.to_vec());
    }

    #[test]
    fn stamped_frames_replay_like_unstamped_ones() {
        // the audit stamp is invisible to pending-set replay: the same
        // survivors fall out whether frames carry stamps or not
        let frames: Vec<Vec<u8>> = [
            CoordEvent::QueryRegistered {
                owner: "a".into(),
                sql: "qa".into(),
                qid: QueryId(1),
                seq: 1,
                deadline: Some(500),
                stamp: Some(RegStamp { at: 100, shard: 2 }),
            },
            CoordEvent::QueryRegistered {
                owner: "b".into(),
                sql: "qb".into(),
                qid: QueryId(2),
                seq: 2,
                deadline: None,
                stamp: Some(RegStamp { at: 101, shard: 0 }),
            },
            CoordEvent::QueryCancelled {
                qid: QueryId(2),
                at: Some(150),
            },
        ]
        .iter()
        .map(CoordEvent::encode)
        .collect();
        let replayed = replay_coordination_frames(&frames).unwrap();
        assert_eq!(replayed.survivors.len(), 1);
        assert_eq!(replayed.survivors[0].qid, QueryId(1));
        assert_eq!(replayed.survivors[0].deadline, Some(500));
    }

    #[test]
    fn watermark_raises_allocation_floors_without_registering() {
        let frames: Vec<Vec<u8>> = [
            CoordEvent::Watermark {
                qid: QueryId(90),
                seq: 70,
            },
            CoordEvent::QueryRegistered {
                owner: "a".into(),
                sql: "q".into(),
                qid: QueryId(3),
                seq: 2,
                deadline: None,
                stamp: None,
            },
        ]
        .iter()
        .map(CoordEvent::encode)
        .collect();
        let replayed = replay_coordination_frames(&frames).unwrap();
        assert_eq!(replayed.max_qid, 90);
        assert_eq!(replayed.max_seq, 70);
        assert_eq!(replayed.survivors.len(), 1);
    }

    #[test]
    fn replay_is_order_insensitive_for_removals() {
        // a batch group-commit can reorder registrations relative to
        // another bucket's match commit: removal-before-registration
        // must still retire the query
        let frames: Vec<Vec<u8>> = [
            CoordEvent::MatchCommitted {
                qids: vec![QueryId(2)],
                answer_writes: Vec::new(),
                at: None,
            },
            CoordEvent::QueryRegistered {
                owner: "a".into(),
                sql: "q".into(),
                qid: QueryId(2),
                seq: 1,
                deadline: None,
                stamp: None,
            },
        ]
        .iter()
        .map(CoordEvent::encode)
        .collect();
        let replayed = replay_coordination_frames(&frames).unwrap();
        assert!(replayed.survivors.is_empty());
    }
}
