//! The shared match engine: per-registry coordination logic used by
//! both the serial [`crate::Coordinator`] and every shard of the
//! [`crate::ShardedCoordinator`].
//!
//! A [`ShardState`] is one independent matching domain: a pending-query
//! registry, the RNG that resolves `CHOOSE` nondeterminism, waiter
//! channels, and counters. The [`Engine`] owns nothing mutable — it
//! borrows a `ShardState` for each operation, so callers decide the
//! locking granularity (one global mutex for the serial coordinator,
//! one mutex per shard for the sharded one).

use std::collections::HashMap;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use youtopia_storage::{Column, DataType, Database, Schema, StorageResult, Transaction, Tuple};

use crate::coordinator::{
    CoordinatorConfig, MatchEdge, MatchGraph, MatchNotification, MatcherKind, Submission, Ticket,
};
use crate::error::{CoreError, CoreResult};
use crate::ir::QueryId;
use crate::matcher::{baseline, search, GroupMatch, MatchStats};
use crate::registry::{Pending, Registry};
use crate::SystemStats;

/// A borrowed apply hook: side effects executed inside the match's
/// storage transaction. The serial coordinator stores a `Box`, the
/// sharded coordinator an `Arc` shared by all shards; both lend the
/// engine a plain `&dyn Fn`.
pub(crate) type HookRef<'a> =
    Option<&'a dyn Fn(&mut Transaction, &GroupMatch) -> StorageResult<()>>;

/// One independent matching domain (the whole system for the serial
/// coordinator; one shard for the sharded coordinator).
pub(crate) struct ShardState {
    /// Pending queries of this domain.
    pub registry: Registry,
    /// Resolves `CHOOSE` nondeterminism for this domain.
    pub rng: StdRng,
    /// Counters local to this domain (merge across shards for totals).
    pub stats: SystemStats,
    /// Notification channels of this domain's pending queries.
    pub waiters: HashMap<QueryId, Sender<MatchNotification>>,
    /// Queries answered (removed) since the owner last drained this
    /// log. The sharded coordinator uses it to retire router
    /// memberships; the serial coordinator clears it after each call.
    pub answered_log: Vec<QueryId>,
}

impl ShardState {
    pub(crate) fn new(use_const_index: bool, seed: u64) -> ShardState {
        let registry = if use_const_index {
            Registry::new()
        } else {
            Registry::without_const_index()
        };
        ShardState {
            registry,
            rng: StdRng::seed_from_u64(seed),
            stats: SystemStats::default(),
            waiters: HashMap::new(),
            answered_log: Vec::new(),
        }
    }
}

/// The stateless core: configuration + database handle. All mutation
/// goes through an explicitly borrowed [`ShardState`].
pub(crate) struct Engine {
    pub db: Database,
    pub config: CoordinatorConfig,
}

impl Engine {
    /// Registers an arrived (already safety-checked, namespaced)
    /// pending query and runs arrival-driven matching, cascading
    /// through freshly committed answers until quiescent.
    pub(crate) fn process_arrival(
        &self,
        state: &mut ShardState,
        pending: Pending,
        hook: HookRef,
    ) -> CoreResult<Submission> {
        let qid = pending.id;
        state.registry.insert(pending);
        state.stats.submitted += 1;

        match self.try_match(state, qid)? {
            Some(m) => {
                let fresh: Vec<(String, Tuple)> = m.all_answers().cloned().collect();
                let mut my_notification = None;
                for n in self.apply_and_notify(state, m, hook)? {
                    if n.id == qid {
                        my_notification = Some(n);
                    }
                }
                let n = my_notification.ok_or_else(|| {
                    CoreError::Internal("trigger missing from its own match".into())
                })?;
                // Newly committed answers may satisfy pending queries'
                // postconditions ("the system-wide answer relation"):
                // cascade until quiescent.
                self.cascade(state, fresh, hook)?;
                Ok(Submission::Answered(n))
            }
            None => {
                let (tx, rx) = unbounded();
                state.waiters.insert(qid, tx);
                Ok(Submission::Pending(Ticket {
                    id: qid,
                    receiver: rx,
                }))
            }
        }
    }

    /// Re-runs matching for pending queries whose positive constraints
    /// could unify with freshly committed answer tuples, repeating until
    /// no further matches fire. Cheap pre-filter: a constraint is only
    /// retried when template unification against a fresh tuple succeeds.
    /// Apply failures (e.g. inventory races) leave the group pending and
    /// do not abort the cascade.
    pub(crate) fn cascade(
        &self,
        state: &mut ShardState,
        mut fresh: Vec<(String, Tuple)>,
        hook: HookRef,
    ) -> CoreResult<()> {
        if !self.config.match_config.use_committed_answers {
            return Ok(());
        }
        while !fresh.is_empty() {
            let triggers: Vec<QueryId> = state
                .registry
                .iter()
                .filter(|p| {
                    p.query.constraints.iter().filter(|c| !c.negated).any(|c| {
                        fresh.iter().any(|(rel, tuple)| {
                            c.atom.relation.eq_ignore_ascii_case(rel)
                                && c.atom.arity() == tuple.arity()
                                && {
                                    let mut s = crate::unify::Subst::new();
                                    c.atom.terms.iter().zip(tuple.values()).all(|(t, v)| {
                                        s.unify_terms(t, &crate::ir::Term::Const(v.clone()))
                                    })
                                }
                        })
                    })
                })
                .map(|p| p.id)
                .collect();
            fresh.clear();
            for qid in triggers {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this round
                }
                if let Some(m) = self.try_match(state, qid)? {
                    let new_tuples: Vec<(String, Tuple)> = m.all_answers().cloned().collect();
                    match self.apply_and_notify(state, m, hook) {
                        Ok(_) => fresh.extend(new_tuples),
                        Err(CoreError::Storage(_)) => {
                            // group reinstated by apply_and_notify; it
                            // stays pending (e.g. inventory exhausted)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the configured matcher for `trigger`. Callers hold the
    /// state's lock; the database is read-locked only for the matching
    /// itself.
    pub(crate) fn try_match(
        &self,
        state: &mut ShardState,
        trigger: QueryId,
    ) -> CoreResult<Option<GroupMatch>> {
        state.stats.match_attempts += 1;
        let started = Instant::now();
        let result = {
            let read = self.db.read();
            let mut work = MatchStats::default();
            let r = match self.config.matcher {
                MatcherKind::Incremental => search::match_query(
                    &state.registry,
                    read.catalog(),
                    trigger,
                    &self.config.match_config,
                    &mut state.rng,
                    &mut work,
                ),
                MatcherKind::Naive => baseline::match_query_naive(
                    &state.registry,
                    read.catalog(),
                    trigger,
                    &self.config.match_config,
                    &mut state.rng,
                    &mut work,
                ),
            };
            state.stats.match_work.merge(&work);
            r
        };
        state.stats.matching_nanos += started.elapsed().as_nanos();
        result
    }

    /// Removes the matched queries, applies the match to the database
    /// (answer-relation inserts + apply hook, one transaction), and
    /// builds per-member notifications. On apply failure the members are
    /// re-registered and the error propagates.
    pub(crate) fn apply_and_notify(
        &self,
        state: &mut ShardState,
        m: GroupMatch,
        hook: HookRef,
    ) -> CoreResult<Vec<MatchNotification>> {
        let mut removed = Vec::with_capacity(m.members.len());
        for &qid in &m.members {
            let pending = state
                .registry
                .remove(qid)
                .ok_or_else(|| CoreError::Internal(format!("matched query {qid} vanished")))?;
            removed.push(pending);
        }

        let apply_result = (|| -> StorageResult<()> {
            let mut txn = self.db.begin();
            for (relation, tuple) in m.all_answers() {
                ensure_answer_table(&mut txn, relation, tuple)?;
                txn.insert(relation, tuple.clone())?;
            }
            if let Some(hook) = hook {
                hook(&mut txn, &m)?;
            }
            txn.commit()
        })();

        if let Err(e) = apply_result {
            // put the group back; it stays pending
            for pending in removed {
                state.registry.insert(pending);
            }
            return Err(CoreError::Storage(e));
        }

        state.stats.groups_matched += 1;
        state.stats.answered += m.members.len() as u64;
        state.answered_log.extend_from_slice(&m.members);

        let group = m.members.clone();
        let mut notifications = Vec::with_capacity(group.len());
        for &qid in &m.members {
            let n = MatchNotification {
                id: qid,
                group: group.clone(),
                answers: m.answers.get(&qid).cloned().unwrap_or_default(),
            };
            if let Some(tx) = state.waiters.remove(&qid) {
                let _ = tx.send(n.clone()); // receiver may have been dropped
            }
            notifications.push(n);
        }
        Ok(notifications)
    }

    /// Retries matching for every pending query of this domain until a
    /// full sweep fires no match. Returns the notifications of all
    /// queries answered by the sweep.
    pub(crate) fn retry_all(
        &self,
        state: &mut ShardState,
        hook: HookRef,
    ) -> CoreResult<Vec<MatchNotification>> {
        let mut notifications = Vec::new();
        loop {
            let pending_ids: Vec<QueryId> = state.registry.iter().map(|p| p.id).collect();
            let mut matched_any = false;
            for qid in pending_ids {
                if state.registry.get(qid).is_none() {
                    continue; // answered earlier in this sweep
                }
                if let Some(m) = self.try_match(state, qid)? {
                    notifications.extend(self.apply_and_notify(state, m, hook)?);
                    matched_any = true;
                }
            }
            if !matched_any {
                return Ok(notifications);
            }
        }
    }
}

impl Engine {
    /// Reads the current content of an answer relation (empty when no
    /// match has touched it yet, or the table does not exist).
    pub(crate) fn answers(&self, relation: &str) -> Vec<Tuple> {
        let read = self.db.read();
        match read.table(relation) {
            Ok(t) => t.scan().map(|(_, tuple)| tuple.clone()).collect(),
            Err(_) => Vec::new(),
        }
    }
}

/// The potential-satisfaction edges and dangling constraints of one
/// registry — the per-domain slice of the admin interface's match
/// graph (§3.2).
pub(crate) fn match_graph_of(registry: &Registry) -> MatchGraph {
    let mut edges = Vec::new();
    let mut dangling = Vec::new();
    for pending in registry.iter() {
        for (cidx, constraint) in pending.query.constraints.iter().enumerate() {
            if constraint.negated {
                continue;
            }
            let mut found = false;
            for href in registry.candidates_for(&constraint.atom) {
                let Some(head) = registry.head(href) else {
                    continue;
                };
                let mut s = crate::unify::Subst::new();
                if s.unify_atoms(&constraint.atom, head) {
                    edges.push(MatchEdge {
                        from: pending.id,
                        constraint: constraint.atom.to_string(),
                        to: href.qid,
                        head: head.to_string(),
                    });
                    found = true;
                }
            }
            if !found {
                dangling.push((pending.id, cidx, constraint.atom.to_string()));
            }
        }
    }
    MatchGraph { edges, dangling }
}

/// Creates the answer-relation table on first use. Columns are named
/// `c0..cN-1`, typed from the first inserted tuple, all nullable (answer
/// relations are system tables; applications may pre-create them with
/// richer schemas, in which case only the arity must agree).
pub(crate) fn ensure_answer_table(
    txn: &mut Transaction,
    relation: &str,
    first: &Tuple,
) -> StorageResult<()> {
    if txn.catalog().has_table(relation) {
        return Ok(());
    }
    let columns: Vec<Column> = first
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| Column {
            name: format!("c{i}"),
            ty: v.data_type().unwrap_or(DataType::Str),
            nullable: true,
        })
        .collect();
    txn.create_table(relation, Schema::new(columns))
}
